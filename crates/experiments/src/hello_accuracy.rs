//! EXT4 — the HELLO-rate/view-accuracy trade (paper Section 3.5.1).
//!
//! The paper argues the HELLO frequency must be at least the per-node link
//! generation rate — its lower bound for `f_hello`. This experiment runs
//! the real soft-timer protocol at several beacon intervals and measures
//! how the protocol's neighbor view degrades as the beacon rate drops
//! below the link dynamics, quantifying what the bound actually buys.

use crate::harness::{build_world, default_shards, Scenario, StackDriver};
use manet_sim::hello::HelloProtocol;
use manet_sim::{Channel, LossModel, QuietCtx};
use manet_stack::{HelloDriver, NoClustering, NoRouting, ProtocolStack};
use manet_util::stats::Summary;
use manet_util::table::{fmt_sig, Table};

/// One row: beacon interval vs view accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HelloRow {
    /// Beacon interval, seconds.
    pub interval: f64,
    /// HELLO rate per node (1/interval).
    pub hello_rate: f64,
    /// Paper's lower bound: the per-node link generation rate.
    pub link_gen_rate: f64,
    /// Mean fraction of true neighbor relations missing from views.
    pub missing_fraction: f64,
    /// Mean stale entries per true relation.
    pub stale_fraction: f64,
}

/// Sweeps the beacon interval on the default scenario.
pub fn sweep(scenario: &Scenario, measure: f64) -> Vec<HelloRow> {
    [0.5, 1.0, 2.0, 5.0, 10.0, 20.0]
        .into_iter()
        .map(|interval| {
            let world = build_world(scenario, 0.25, 0x4E11);
            // Timeout at the conventional 3 beacon periods; the explicit
            // driver beacons over an ideal channel (accuracy only, no loss).
            let hello = HelloProtocol::new(world.node_count(), interval, 3.0 * interval);
            let ideal = || Channel::new(LossModel::Ideal, 0);
            let stack = ProtocolStack::new(
                world,
                NoClustering,
                NoRouting,
                HelloDriver::explicit(hello, ideal()),
                ideal(),
                ideal(),
            );
            let mut stack = StackDriver::with_shards(stack, default_shards())
                .expect("--shards layout incompatible with the scenario radius");
            let mut quiet = QuietCtx::new();
            stack.world_mut().run_for(30.0, &mut quiet.ctx());
            stack.world_mut().begin_measurement();
            let mut missing = Summary::new();
            let mut stale = Summary::new();
            let ticks = (measure / stack.world().dt()) as usize;
            for _ in 0..ticks {
                stack.tick(&mut quiet.ctx());
                let hello = stack.hello().expect("explicit driver attached");
                let acc = hello.accuracy(stack.world().topology());
                missing.push(acc.missing_fraction());
                stale.push(acc.stale_fraction());
            }
            let world = stack.world();
            let n = world.node_count();
            let t = world.measured_time();
            HelloRow {
                interval,
                hello_rate: 1.0 / interval,
                link_gen_rate: world.counters().per_node_link_generation_rate(n, t),
                missing_fraction: missing.mean(),
                stale_fraction: stale.mean(),
            }
        })
        .collect()
}

/// Renders the accuracy table.
pub fn table(rows: &[HelloRow]) -> Table {
    let mut t = Table::new([
        "interval [s]",
        "hello rate",
        "link gen rate (bound)",
        "missing frac",
        "stale frac",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.interval, 3),
            fmt_sig(r.hello_rate, 3),
            fmt_sig(r.link_gen_rate, 3),
            fmt_sig(r.missing_fraction, 3),
            fmt_sig(r.stale_fraction, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_degrades_as_beacons_slow() {
        let scenario = Scenario {
            nodes: 120,
            side: 600.0,
            radius: 100.0,
            ..Scenario::default()
        };
        let rows = sweep(&scenario, 60.0);
        assert_eq!(rows.len(), 6);
        // Monotone-ish degradation: the slowest beacon misses far more
        // than the fastest.
        let fast = rows.first().unwrap();
        let slow = rows.last().unwrap();
        assert!(
            slow.missing_fraction > 2.0 * fast.missing_fraction + 0.001,
            "fast {fast:?} vs slow {slow:?}"
        );
        assert!(slow.stale_fraction > fast.stale_fraction);
        // Fast beaconing keeps views nearly perfect.
        assert!(fast.missing_fraction < 0.05, "{fast:?}");
    }
}
