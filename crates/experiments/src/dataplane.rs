//! EXT5 — the data plane over the hybrid stack: reachability parity with
//! flat routing, hierarchical path stretch, and discovery cost.
//!
//! The paper's overhead bounds buy a routing hierarchy; this experiment
//! measures what the hierarchy costs the *data* path: packets routed via
//! heads and gateways take longer routes than the flat shortest path
//! (stretch ≥ 1), in exchange for the flat baseline's control traffic.

use crate::harness::{build_world, Scenario, WorldDriver};
use manet_cluster::{Clustering, LowestId};
use manet_routing::forwarding::HybridForwarder;
use manet_sim::{NodeId, QuietCtx};
use manet_util::stats::Summary;
use manet_util::table::{fmt_sig, Table};
use manet_util::Rng;

/// One row of the stretch experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchRow {
    /// Transmission range as a fraction of the side.
    pub r_over_a: f64,
    /// Fraction of sampled pairs delivered by the hybrid plane (equals
    /// flat reachability — checked).
    pub delivery: f64,
    /// Mean hop-count stretch over delivered inter-cluster pairs.
    pub mean_stretch: f64,
    /// Worst observed stretch.
    pub max_stretch: f64,
    /// Mean RREQ messages per inter-cluster packet (discovery cost).
    pub mean_rreq: f64,
}

/// Samples `pairs` random source/destination pairs per range point on the
/// default scenario's steady-state snapshots.
pub fn stretch_sweep(scenario: &Scenario, pairs: usize) -> Vec<StretchRow> {
    [0.08, 0.12, 0.18, 0.25]
        .into_iter()
        .map(|frac| {
            let scenario = Scenario {
                radius: frac * scenario.side,
                ..*scenario
            };
            let mut world = WorldDriver::new(build_world(&scenario, 0.5, 0xDA7A));
            let mut clustering = Clustering::form(LowestId, world.topology());
            // Let the structure reach steady state.
            let mut quiet = QuietCtx::new();
            for _ in 0..120 {
                world.step(&mut quiet.ctx());
                // stage-exempt: single-layer cluster study, not the pipeline
                clustering.maintain(world.topology(), &mut quiet.ctx());
            }
            let topo = world.topology();
            let forwarder = HybridForwarder::new(topo, &clustering);
            let mut rng = Rng::seed_from_u64(0xF10C ^ (frac * 1e4) as u64);
            let n = world.node_count() as NodeId;
            let mut delivered = 0usize;
            let mut attempted = 0usize;
            let mut stretch = Summary::new();
            let mut rreq = Summary::new();
            while attempted < pairs {
                let s = rng.u64_below(n as u64) as NodeId;
                let d = rng.u64_below(n as u64) as NodeId;
                if s == d {
                    continue;
                }
                attempted += 1;
                let flat = forwarder.shortest_hops(s, d);
                let out = forwarder.forward(s, d);
                assert_eq!(
                    flat.is_some(),
                    out.delivered(),
                    "reachability parity {s}->{d}"
                );
                if let (Some(flat_hops), Some(hops)) = (flat, out.hops()) {
                    delivered += 1;
                    if flat_hops > 0 {
                        stretch.push(hops as f64 / flat_hops as f64);
                    }
                    if out.rreq_messages > 0 {
                        rreq.push(out.rreq_messages as f64);
                    }
                }
            }
            StretchRow {
                r_over_a: frac,
                delivery: delivered as f64 / attempted as f64,
                mean_stretch: stretch.mean(),
                max_stretch: stretch.max(),
                mean_rreq: rreq.mean(),
            }
        })
        .collect()
}

/// Renders the stretch table.
pub fn table(rows: &[StretchRow]) -> Table {
    let mut t = Table::new([
        "r/a",
        "delivery (=connectivity)",
        "mean stretch",
        "max stretch",
        "mean RREQ/packet",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.r_over_a, 3),
            fmt_sig(r.delivery, 3),
            fmt_sig(r.mean_stretch, 3),
            fmt_sig(r.max_stretch, 3),
            fmt_sig(r.mean_rreq, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_is_bounded_and_delivery_tracks_connectivity() {
        let scenario = Scenario {
            nodes: 120,
            side: 600.0,
            ..Scenario::default()
        };
        let rows = stretch_sweep(&scenario, 60);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.delivery));
            if r.mean_stretch > 0.0 {
                assert!(r.mean_stretch >= 1.0, "{r:?}");
                assert!(r.mean_stretch < 3.0, "mean stretch implausible: {r:?}");
            }
        }
        // Larger range → better connectivity.
        assert!(rows.last().unwrap().delivery >= rows.first().unwrap().delivery);
    }
}
