//! Experiment harnesses reproducing every figure and table of the paper.
//!
//! Each experiment pairs the **simulator** (`manet-sim` + `manet-cluster` +
//! `manet-routing`) with the **analytical model** (`manet-model`) over the
//! same parameter sweep and emits a paper-style table (stdout) plus CSV
//! (`target/figures/`). See DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for recorded results.
//!
//! Binaries (one per paper artifact):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_vs_range` | Figure 1 — control frequencies vs `r` |
//! | `fig2_vs_velocity` | Figure 2 — control frequencies vs `v` |
//! | `fig3_vs_density` | Figure 3 — control frequencies vs `ρ` |
//! | `fig4_lid_p_approx` | Figure 4 — Eqn 16 residual & approximation |
//! | `fig5_cluster_count` | Figure 5 — cluster counts vs `N` and `r` |
//! | `theta_growth` | Section 6 — Θ-notation table |
//! | `claim_validation` | Claims 1–2 — degree & link-rate checks |
//! | `cluster_decomposition` | ABL1 — head-contact counting convention |
//! | `route_model_ablation` | ABL2 — intra-cluster link models |
//! | `mobility_sensitivity` | ABL3 — mobility-model sensitivity |
//! | `generic_p_extension` | EXT1 — model parametric in `P` (HCC/DMAC) |
//! | `flat_vs_clustered` | EXT2 — DSDV baseline vs clustered hybrid |
//! | `dhop_extension` | EXT3 — d-hop clustering (Section 7 future work) |
//! | `robustness` | ROB1 — overhead under loss + churn vs the ideal bounds |
//! | `robustness2` | ROB2 — sharded stack under interconnect chaos |
//! | `trace_report` | telemetry — summarize a `--trace-out` JSONL trace |
//!
//! Every binary additionally accepts `--trace-out <path>`: after its
//! experiment runs, a telemetry-instrumented twin of its default scenario
//! writes a JSONL event trace there (see the [`trace`] module).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod baseline;
pub mod claims;
pub mod cli;
pub mod convergence;
pub mod dataplane;
pub mod dhop_ext;
pub mod figures;
pub mod harness;
pub mod hello_accuracy;
pub mod lid_figures;
pub mod robustness;
pub mod robustness2;
pub mod spec;
pub mod stability;
pub mod theta;
pub mod trace;

use std::path::PathBuf;

/// Directory where experiment CSVs are written (`target/figures`).
pub fn figures_dir() -> PathBuf {
    // Walk up from the crate to the workspace target dir; fall back to CWD.
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    base.join("figures")
}

/// Prints a table and writes it as CSV under [`figures_dir`], reporting the
/// path written (best-effort: IO errors are printed, not fatal — the table
/// on stdout is the primary artifact).
pub fn emit(name: &str, table: &manet_util::table::Table) {
    println!("{}", table.to_ascii());
    let path = figures_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => println!("[csv] write failed ({e}); stdout table is authoritative"),
    }
}
