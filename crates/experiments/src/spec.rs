//! Library-level scenario specs: what the experiment binaries express as
//! argv, captured as a canonical JSON document the jobs plane can queue,
//! cache, and replay.
//!
//! A [`ScenarioSpec`] names a sweep kind (the paper figure or a single
//! point), the scenario geometry/kinematics, the measurement protocol,
//! the cluster policy, and the execution layout (`--shards`, workers,
//! fault plane). [`run_scenario`] drives the exact same `*_ctl`
//! measurement cores the experiment binaries use — `fig1_vs_range` run
//! as a process and a `{"kind":"fig1_vs_range"}` spec submitted to
//! `manet serve-jobs` produce identical sweep numbers for identical
//! seeds, which `tests/jobs_plane.rs` pins.
//!
//! [`ScenarioSpec::canonical`] renders the spec with every default
//! materialized, fields in a fixed order, through the deterministic
//! in-house JSON codec — so formatting variants, key reordering, and
//! omitted-default submissions all collapse to one cache key. Since a
//! seeded run is bit-identical at any shard layout or worker count, that
//! key fully determines the result bytes, and the jobs plane caches on
//! it.

use crate::figures::{sweep_with, Figure, FIG1_RADIUS_FRACS, FIG2_SPEEDS, FIG3_NODES};
use crate::harness::{
    measure_with_policy_ctl, CancelToken, Estimate, Measured, Protocol, Scenario, ShardRun,
};
use crate::robustness::{row_ctl, FaultMeasured, RobustnessRow};
use manet_cluster::{HighestConnectivity, LowestId};
use manet_geom::ShardDims;
use manet_sim::MobilityKind;
use manet_util::json::Value;
use std::fmt;

/// Which experiment a spec runs: one of the paper-figure sweeps, a single
/// scenario point, or the fault-plane robustness sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// Figure 1: frequencies vs transmission range (sweep = `r/a` fracs).
    Fig1VsRange,
    /// Figure 2: frequencies vs node speed (sweep = speeds, m/s).
    Fig2VsVelocity,
    /// Figure 3: frequencies vs density (sweep = node counts).
    Fig3VsDensity,
    /// One scenario point, no sweep.
    Single,
    /// ROB1 fault-plane rows (sweep lives in `fault.loss`).
    Robustness,
}

impl SpecKind {
    /// Every kind, for usage messages and exhaustive tests.
    pub const ALL: [SpecKind; 5] = [
        SpecKind::Fig1VsRange,
        SpecKind::Fig2VsVelocity,
        SpecKind::Fig3VsDensity,
        SpecKind::Single,
        SpecKind::Robustness,
    ];

    /// The wire name (matches the experiment binary where one exists).
    pub fn name(self) -> &'static str {
        match self {
            SpecKind::Fig1VsRange => "fig1_vs_range",
            SpecKind::Fig2VsVelocity => "fig2_vs_velocity",
            SpecKind::Fig3VsDensity => "fig3_vs_density",
            SpecKind::Single => "single",
            SpecKind::Robustness => "robustness",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<SpecKind> {
        SpecKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Cluster-head election policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Lowest-ID (the paper's primary policy; `P` measured live).
    Lid,
    /// Highest-connectivity.
    Hcc,
}

impl PolicyKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lid => "lid",
            PolicyKind::Hcc => "hcc",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        match name {
            "lid" => Some(PolicyKind::Lid),
            "hcc" => Some(PolicyKind::Hcc),
            _ => None,
        }
    }
}

/// Routing scheme. One scheme exists today; the field keeps the wire
/// format stable when inter-cluster routing lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// Intra-cluster proactive routing (the paper's scheme).
    Intra,
}

impl RouteKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        "intra"
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<RouteKind> {
        (name == "intra").then_some(RouteKind::Intra)
    }
}

/// Fault-plane options for [`SpecKind::Robustness`] specs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Stationary loss probabilities, one robustness row each.
    pub loss: Vec<f64>,
    /// Per-node crash rate, crashes/s.
    pub crash_rate: f64,
    /// Gilbert–Elliott burst loss instead of Bernoulli.
    pub burst: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            loss: vec![0.0, 0.05, 0.1, 0.2],
            crash_rate: 0.0,
            burst: false,
        }
    }
}

/// A complete, self-contained experiment description — everything a bin
/// expresses as argv, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Which experiment to run.
    pub kind: SpecKind,
    /// Node count `N` (fig3 overrides per sweep point).
    pub nodes: usize,
    /// Region side `a`, meters.
    pub side: f64,
    /// Transmission range `r`, meters (fig1 overrides per sweep point).
    pub radius: f64,
    /// Node speed `v`, m/s (fig2 overrides per sweep point).
    pub speed: f64,
    /// Direction-redraw epoch `τ`, seconds.
    pub epoch: f64,
    /// Warmup seconds before measurement.
    pub warmup: f64,
    /// Measurement window, seconds.
    pub measure: f64,
    /// Tick length, seconds.
    pub dt: f64,
    /// Replication seeds.
    pub seeds: Vec<u64>,
    /// Cluster-head election policy.
    pub policy: PolicyKind,
    /// Routing scheme.
    pub route: RouteKind,
    /// Sweep grid; meaning depends on [`ScenarioSpec::kind`] (fig1: `r/a`
    /// fractions, fig2: speeds, fig3: node counts). Empty for
    /// single/robustness.
    pub sweep: Vec<f64>,
    /// Shard layout (`None` = monolithic). Results are bit-identical
    /// either way, so this is an execution hint, not part of the outcome.
    pub shards: Option<ShardDims>,
    /// Shard worker-thread budget.
    pub workers: Option<usize>,
    /// Fault plane ([`SpecKind::Robustness`] only).
    pub fault: Option<FaultSpec>,
    /// Capture a JSONL telemetry trace of the spec's base scenario
    /// alongside the result (served from `GET /jobs/:id/trace`).
    pub trace: bool,
}

impl ScenarioSpec {
    /// The default spec for `kind`: paper-default scenario and protocol,
    /// the figure's own sweep grid, LID clustering, monolithic layout.
    pub fn preset(kind: SpecKind) -> ScenarioSpec {
        let scenario = Scenario::default();
        let protocol = Protocol::default();
        let sweep = match kind {
            SpecKind::Fig1VsRange => FIG1_RADIUS_FRACS.to_vec(),
            SpecKind::Fig2VsVelocity => FIG2_SPEEDS.to_vec(),
            SpecKind::Fig3VsDensity => FIG3_NODES.iter().map(|&n| n as f64).collect(),
            SpecKind::Single | SpecKind::Robustness => Vec::new(),
        };
        ScenarioSpec {
            kind,
            nodes: scenario.nodes,
            side: scenario.side,
            radius: scenario.radius,
            speed: scenario.speed,
            epoch: scenario.epoch,
            warmup: protocol.warmup,
            measure: protocol.measure,
            dt: protocol.dt,
            seeds: protocol.seeds,
            policy: PolicyKind::Lid,
            route: RouteKind::Intra,
            sweep,
            shards: None,
            workers: None,
            fault: (kind == SpecKind::Robustness).then(FaultSpec::default),
            trace: false,
        }
    }

    /// The base [`Scenario`] this spec describes (sweeps override one
    /// field per point).
    pub fn scenario(&self) -> Scenario {
        Scenario {
            nodes: self.nodes,
            side: self.side,
            radius: self.radius,
            speed: self.speed,
            epoch: self.epoch,
            mobility: MobilityKind::EpochRandomDirection { epoch: self.epoch },
        }
    }

    /// The measurement [`Protocol`] this spec describes.
    pub fn protocol(&self) -> Protocol {
        Protocol {
            warmup: self.warmup,
            measure: self.measure,
            seeds: self.seeds.clone(),
            dt: self.dt,
        }
    }

    /// The execution layout: `None` for the monolithic path.
    pub fn shard_run(&self) -> Option<ShardRun> {
        let mut run = ShardRun::new(self.shards?);
        if let Some(n) = self.workers {
            run = run.with_workers(n);
        }
        Some(run)
    }

    /// Every scenario this spec will measure (the base point, or one per
    /// sweep entry), used for validation and by [`run_scenario`].
    fn sweep_scenarios(&self) -> Vec<(f64, Scenario)> {
        let base = self.scenario();
        match self.kind {
            SpecKind::Fig1VsRange => self
                .sweep
                .iter()
                .map(|&frac| {
                    (
                        frac,
                        Scenario {
                            radius: frac * base.side,
                            ..base
                        },
                    )
                })
                .collect(),
            SpecKind::Fig2VsVelocity => self
                .sweep
                .iter()
                .map(|&v| (v, Scenario { speed: v, ..base }))
                .collect(),
            SpecKind::Fig3VsDensity => {
                let area = base.side * base.side;
                self.sweep
                    .iter()
                    .map(|&n| {
                        (
                            n / area,
                            Scenario {
                                nodes: n as usize,
                                ..base
                            },
                        )
                    })
                    .collect()
            }
            SpecKind::Single | SpecKind::Robustness => vec![(0.0, base)],
        }
    }

    /// Checks the spec against the constraints a bin would hit as panics,
    /// so a bad submission is a 400 instead of a dead worker.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err(format!("nodes must be >= 2, got {}", self.nodes));
        }
        if !self.side.is_finite() || self.side <= 0.0 {
            return Err(format!("side must be positive, got {}", self.side));
        }
        if !self.dt.is_finite() || self.dt <= 0.0 {
            return Err(format!("dt must be positive, got {}", self.dt));
        }
        if !self.measure.is_finite() || self.measure <= 0.0 {
            return Err(format!("measure must be positive, got {}", self.measure));
        }
        if self.warmup < 0.0 {
            return Err(format!("warmup must be >= 0, got {}", self.warmup));
        }
        if self.seeds.is_empty() {
            return Err("seeds must be non-empty".to_string());
        }
        match self.kind {
            SpecKind::Single | SpecKind::Robustness => {
                if !self.sweep.is_empty() {
                    return Err(format!(
                        "kind {:?} takes no sweep grid ({} values given)",
                        self.kind.name(),
                        self.sweep.len()
                    ));
                }
            }
            _ => {
                if self.sweep.is_empty() {
                    return Err(format!("kind {:?} needs a sweep grid", self.kind.name()));
                }
            }
        }
        if self.kind == SpecKind::Fig3VsDensity {
            for &n in &self.sweep {
                if n.fract() != 0.0 || n < 2.0 {
                    return Err(format!(
                        "fig3 sweep entries must be node counts >= 2, got {n}"
                    ));
                }
            }
        }
        match (&self.fault, self.kind) {
            (Some(_), SpecKind::Robustness) | (None, _) => {}
            (Some(_), _) => {
                return Err(format!(
                    "fault config is only valid for kind {:?}",
                    SpecKind::Robustness.name()
                ));
            }
        }
        if self.kind == SpecKind::Robustness {
            let fault = self
                .fault
                .as_ref()
                .ok_or("robustness needs a fault config")?;
            if fault.loss.is_empty() {
                return Err("fault.loss must be non-empty".to_string());
            }
            for &p in &fault.loss {
                if !(0.0..1.0).contains(&p) {
                    return Err(format!("fault.loss entries must be in [0, 1), got {p}"));
                }
                if fault.burst && p >= 0.8 {
                    return Err(format!(
                        "burst loss must stay below the bad-state loss 0.8, got {p}"
                    ));
                }
            }
            if fault.crash_rate < 0.0 {
                return Err(format!(
                    "fault.crash_rate must be >= 0, got {}",
                    fault.crash_rate
                ));
            }
        }
        let mut max_radius = 0.0f64;
        for (_, s) in self.sweep_scenarios() {
            if !(s.radius > 0.0 && s.radius < s.side) {
                return Err(format!(
                    "radius must satisfy 0 < r < side, got r={} side={}",
                    s.radius, s.side
                ));
            }
            max_radius = max_radius.max(s.radius);
        }
        if let Some(dims) = self.shards {
            let tile = (self.side / dims.kx as f64).min(self.side / dims.ky as f64);
            if tile < max_radius {
                return Err(format!(
                    "shard layout {dims}: tile width {tile} is narrower than the \
                     largest swept radius {max_radius}"
                ));
            }
        }
        if self.workers == Some(0) {
            return Err("workers must be >= 1 when set".to_string());
        }
        Ok(())
    }

    /// The spec as a JSON value with every default materialized and
    /// fields in a fixed order.
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("kind".into(), self.kind.name().into()),
            ("nodes".into(), self.nodes.into()),
            ("side".into(), self.side.into()),
            ("radius".into(), self.radius.into()),
            ("speed".into(), self.speed.into()),
            ("epoch".into(), self.epoch.into()),
            ("warmup".into(), self.warmup.into()),
            ("measure".into(), self.measure.into()),
            ("dt".into(), self.dt.into()),
            (
                "seeds".into(),
                Value::Arr(self.seeds.iter().map(|&s| s.into()).collect()),
            ),
            ("policy".into(), self.policy.name().into()),
            ("route".into(), self.route.name().into()),
            (
                "sweep".into(),
                Value::Arr(self.sweep.iter().map(|&x| x.into()).collect()),
            ),
            (
                "shards".into(),
                self.shards
                    .map_or(Value::Null, |d| d.to_string().as_str().into()),
            ),
            (
                "workers".into(),
                self.workers.map_or(Value::Null, Value::from),
            ),
        ];
        let fault = match &self.fault {
            None => Value::Null,
            Some(f) => Value::Obj(vec![
                (
                    "loss".into(),
                    Value::Arr(f.loss.iter().map(|&p| p.into()).collect()),
                ),
                ("crash_rate".into(), f.crash_rate.into()),
                ("burst".into(), f.burst.into()),
            ]),
        };
        pairs.push(("fault".into(), fault));
        pairs.push(("trace".into(), self.trace.into()));
        Value::Obj(pairs)
    }

    /// The canonical serialized form — the jobs plane's cache key. Two
    /// submissions that describe the same experiment (whatever their
    /// formatting, key order, or omitted defaults) canonicalize to the
    /// same string.
    pub fn canonical(&self) -> String {
        self.to_value().to_string()
    }

    /// Parses a spec from JSON text: `kind` selects a [`preset`], every
    /// other present key overrides it, unknown keys are rejected.
    ///
    /// [`preset`]: ScenarioSpec::preset
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed, unknown, or
    /// constraint-violating field.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, String> {
        let value = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let Value::Obj(pairs) = &value else {
            return Err("spec must be a JSON object".to_string());
        };
        let kind_name = value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("spec needs a string \"kind\"")?;
        let kind = SpecKind::from_name(kind_name).ok_or_else(|| {
            let names: Vec<&str> = SpecKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown kind {kind_name:?} (expected one of {names:?})")
        })?;
        let mut spec = ScenarioSpec::preset(kind);
        for (key, v) in pairs {
            match key.as_str() {
                "kind" => {}
                "nodes" => spec.nodes = usize_field(v, key)?,
                "side" => spec.side = f64_field(v, key)?,
                "radius" => spec.radius = f64_field(v, key)?,
                "speed" => spec.speed = f64_field(v, key)?,
                "epoch" => spec.epoch = f64_field(v, key)?,
                "warmup" => spec.warmup = f64_field(v, key)?,
                "measure" => spec.measure = f64_field(v, key)?,
                "dt" => spec.dt = f64_field(v, key)?,
                "seeds" => {
                    spec.seeds = array_field(v, key)?
                        .iter()
                        .map(|s| {
                            s.as_u64()
                                .ok_or(format!("{key:?} entries must be integers"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "policy" => {
                    let name = str_field(v, key)?;
                    spec.policy = PolicyKind::from_name(name)
                        .ok_or_else(|| format!("unknown policy {name:?} (lid | hcc)"))?;
                }
                "route" => {
                    let name = str_field(v, key)?;
                    spec.route = RouteKind::from_name(name)
                        .ok_or_else(|| format!("unknown route {name:?} (intra)"))?;
                }
                "sweep" => {
                    spec.sweep = array_field(v, key)?
                        .iter()
                        .map(|x| x.as_f64().ok_or(format!("{key:?} entries must be numbers")))
                        .collect::<Result<_, _>>()?;
                }
                "shards" => {
                    spec.shards = match v {
                        Value::Null => None,
                        _ => Some(
                            ShardDims::parse(str_field(v, key)?)
                                .map_err(|e| format!("{key:?}: {e}"))?,
                        ),
                    };
                }
                "workers" => {
                    spec.workers = match v {
                        Value::Null => None,
                        _ => Some(usize_field(v, key)?),
                    };
                }
                "fault" => {
                    spec.fault = match v {
                        Value::Null => None,
                        Value::Obj(fault_pairs) => Some(fault_field(fault_pairs)?),
                        _ => return Err("\"fault\" must be an object or null".to_string()),
                    };
                }
                "trace" => {
                    spec.trace = v
                        .as_bool()
                        .ok_or_else(|| format!("{key:?} must be a boolean"))?;
                }
                _ => return Err(format!("unknown spec key {key:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("{key:?} must be a number"))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.as_str()
        .ok_or_else(|| format!("{key:?} must be a string"))
}

fn array_field<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], String> {
    v.as_array()
        .ok_or_else(|| format!("{key:?} must be an array"))
}

fn fault_field(pairs: &[(String, Value)]) -> Result<FaultSpec, String> {
    let mut fault = FaultSpec::default();
    for (key, fv) in pairs {
        match key.as_str() {
            "loss" => {
                fault.loss = array_field(fv, key)?
                    .iter()
                    .map(|x| x.as_f64().ok_or(format!("{key:?} entries must be numbers")))
                    .collect::<Result<_, _>>()?;
            }
            "crash_rate" => fault.crash_rate = f64_field(fv, key)?,
            "burst" => {
                fault.burst = fv
                    .as_bool()
                    .ok_or_else(|| format!("{key:?} must be a boolean"))?;
            }
            _ => return Err(format!("unknown fault key {key:?}")),
        }
    }
    Ok(fault)
}

/// Why a scenario run produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cancel token fired mid-run; partial results were discarded.
    Cancelled,
    /// The spec failed validation.
    Invalid(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Cancelled => f.write_str("run cancelled"),
            RunError::Invalid(why) => write!(f, "invalid spec: {why}"),
        }
    }
}

impl std::error::Error for RunError {}

/// What [`run_scenario`] produced, by spec kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutput {
    /// A figure sweep (fig1/fig2/fig3).
    Figure(Figure),
    /// Robustness rows, one per loss probability.
    Robustness(Vec<RobustnessRow>),
    /// One measured point.
    Single(Measured),
}

/// Runs `spec` in-process through the same measurement cores the
/// experiment binaries use. Deterministic: a fixed spec produces
/// bit-identical output at any shard layout or worker count, which is
/// what makes the jobs plane's (spec, seed) cache sound.
///
/// # Errors
///
/// [`RunError::Invalid`] when the spec fails [`ScenarioSpec::validate`];
/// [`RunError::Cancelled`] when `cancel` fired mid-run.
pub fn run_scenario(
    spec: &ScenarioSpec,
    cancel: Option<&CancelToken>,
) -> Result<ScenarioOutput, RunError> {
    spec.validate().map_err(RunError::Invalid)?;
    let protocol = spec.protocol();
    let run = spec.shard_run();
    let run = run.as_ref();
    let measure_point = |s: &Scenario| -> Option<Measured> {
        match spec.policy {
            PolicyKind::Lid => measure_with_policy_ctl(s, &protocol, run, cancel, |_| LowestId),
            PolicyKind::Hcc => {
                measure_with_policy_ctl(s, &protocol, run, cancel, |_| HighestConnectivity)
            }
        }
    };
    match spec.kind {
        SpecKind::Fig1VsRange => sweep_with("r/a", spec.sweep_scenarios(), measure_point)
            .map(ScenarioOutput::Figure)
            .ok_or(RunError::Cancelled),
        SpecKind::Fig2VsVelocity => sweep_with("v [m/s]", spec.sweep_scenarios(), measure_point)
            .map(ScenarioOutput::Figure)
            .ok_or(RunError::Cancelled),
        SpecKind::Fig3VsDensity => sweep_with("rho [1/m^2]", spec.sweep_scenarios(), measure_point)
            .map(ScenarioOutput::Figure)
            .ok_or(RunError::Cancelled),
        SpecKind::Single => measure_point(&spec.scenario())
            .map(ScenarioOutput::Single)
            .ok_or(RunError::Cancelled),
        SpecKind::Robustness => {
            let fault = spec.fault.clone().unwrap_or_default();
            let scenario = spec.scenario();
            fault
                .loss
                .iter()
                .map(|&p| {
                    row_ctl(
                        &scenario,
                        &protocol,
                        p,
                        fault.crash_rate,
                        fault.burst,
                        run,
                        cancel,
                    )
                })
                .collect::<Option<Vec<_>>>()
                .map(ScenarioOutput::Robustness)
                .ok_or(RunError::Cancelled)
        }
    }
}

fn estimate_value(e: &Estimate) -> Value {
    Value::Obj(vec![
        ("mean".into(), e.mean.into()),
        ("ci95".into(), e.ci95.into()),
    ])
}

fn measured_value(m: &Measured) -> Value {
    Value::Obj(vec![
        ("f_hello".into(), estimate_value(&m.f_hello)),
        ("f_cluster".into(), estimate_value(&m.f_cluster)),
        ("f_cluster_break".into(), estimate_value(&m.f_cluster_break)),
        (
            "f_cluster_contact".into(),
            estimate_value(&m.f_cluster_contact),
        ),
        ("f_route".into(), estimate_value(&m.f_route)),
        ("f_route_entries".into(), estimate_value(&m.f_route_entries)),
        ("head_ratio".into(), estimate_value(&m.head_ratio)),
        ("mean_degree".into(), estimate_value(&m.mean_degree)),
        ("link_gen_rate".into(), estimate_value(&m.link_gen_rate)),
        (
            "link_change_rate".into(),
            estimate_value(&m.link_change_rate),
        ),
    ])
}

fn fault_measured_value(m: &FaultMeasured) -> Value {
    Value::Obj(vec![
        ("f_hello".into(), estimate_value(&m.f_hello)),
        ("f_cluster".into(), estimate_value(&m.f_cluster)),
        ("f_retransmit".into(), estimate_value(&m.f_retransmit)),
        ("f_repair".into(), estimate_value(&m.f_repair)),
        ("f_route".into(), estimate_value(&m.f_route)),
        ("f_resync".into(), estimate_value(&m.f_resync)),
        ("total".into(), estimate_value(&m.total)),
        ("lost_fraction".into(), estimate_value(&m.lost_fraction)),
        ("head_ratio".into(), estimate_value(&m.head_ratio)),
        ("violations_end".into(), estimate_value(&m.violations_end)),
    ])
}

/// Renders a run's result as the canonical JSON document the jobs plane
/// serves (and caches byte-for-byte): the spec echo plus the
/// kind-dependent payload. Deterministic — identical runs render
/// identical bytes.
pub fn result_json(spec: &ScenarioSpec, output: &ScenarioOutput) -> Value {
    let mut pairs: Vec<(String, Value)> = vec![
        ("type".into(), "result".into()),
        ("kind".into(), spec.kind.name().into()),
        ("spec".into(), spec.to_value()),
    ];
    match output {
        ScenarioOutput::Figure(fig) => {
            pairs.push(("x_label".into(), fig.x_label.into()));
            let points: Vec<Value> = fig
                .points
                .iter()
                .map(|p| {
                    Value::Obj(vec![
                        ("x".into(), p.x.into()),
                        ("sim".into(), measured_value(&p.sim)),
                        ("ana_f_hello".into(), p.ana_f_hello.into()),
                        ("ana_f_cluster".into(), p.ana_f_cluster.into()),
                        ("ana_f_route".into(), p.ana_f_route.into()),
                    ])
                })
                .collect();
            pairs.push(("points".into(), Value::Arr(points)));
            let (hello, cluster, route) = fig.agreement();
            pairs.push((
                "agreement".into(),
                Value::Obj(vec![
                    ("hello".into(), hello.into()),
                    ("cluster".into(), cluster.into()),
                    ("route".into(), route.into()),
                ]),
            ));
        }
        ScenarioOutput::Robustness(rows) => {
            let rows: Vec<Value> = rows
                .iter()
                .map(|r| {
                    Value::Obj(vec![
                        ("loss_p".into(), r.loss_p.into()),
                        ("crash_rate".into(), r.crash_rate.into()),
                        ("measured".into(), fault_measured_value(&r.measured)),
                        ("ideal_bound".into(), r.ideal_bound.into()),
                    ])
                })
                .collect();
            pairs.push(("rows".into(), Value::Arr(rows)));
        }
        ScenarioOutput::Single(m) => {
            pairs.push(("measured".into(), measured_value(m)));
        }
    }
    Value::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_single() -> ScenarioSpec {
        ScenarioSpec {
            nodes: 80,
            side: 500.0,
            radius: 100.0,
            warmup: 10.0,
            measure: 30.0,
            dt: 0.5,
            seeds: vec![7],
            ..ScenarioSpec::preset(SpecKind::Single)
        }
    }

    #[test]
    fn canonical_is_stable_across_json_formatting_variants() {
        let spec = ScenarioSpec::preset(SpecKind::Fig1VsRange);
        let canonical = spec.canonical();
        // Round-trips through the codec.
        let reparsed = ScenarioSpec::from_json(&canonical).expect("canonical form parses");
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.canonical(), canonical);
        // Omitted defaults and shuffled keys collapse to the same key.
        let sparse = ScenarioSpec::from_json(r#"{"kind": "fig1_vs_range"}"#).expect("sparse");
        assert_eq!(sparse.canonical(), canonical);
        let shuffled =
            ScenarioSpec::from_json(r#"{ "policy" : "lid" , "kind" : "fig1_vs_range" }"#)
                .expect("shuffled");
        assert_eq!(shuffled.canonical(), canonical);
        // A real override changes it.
        let other = ScenarioSpec::from_json(r#"{"kind":"fig1_vs_range","seeds":[5]}"#)
            .expect("seed override");
        assert_ne!(other.canonical(), canonical);
    }

    #[test]
    fn from_json_rejects_malformed_specs() {
        for (text, needle) in [
            ("[]", "object"),
            (r#"{"nodes":10}"#, "kind"),
            (r#"{"kind":"figX"}"#, "unknown kind"),
            (r#"{"kind":"single","bogus":1}"#, "unknown spec key"),
            (r#"{"kind":"single","nodes":1}"#, "nodes"),
            (r#"{"kind":"single","seeds":[]}"#, "seeds"),
            (r#"{"kind":"single","sweep":[0.1]}"#, "no sweep"),
            (r#"{"kind":"fig1_vs_range","sweep":[]}"#, "needs a sweep"),
            (r#"{"kind":"fig3_vs_density","sweep":[1.5]}"#, "node counts"),
            (r#"{"kind":"single","fault":{}}"#, "only valid"),
            (r#"{"kind":"single","shards":"0x2"}"#, "shards"),
            (
                r#"{"kind":"single","radius":300.0,"side":500.0,"shards":"2x2","nodes":80}"#,
                "narrower",
            ),
            (
                r#"{"kind":"robustness","fault":{"loss":[0.85],"burst":true}}"#,
                "bad-state",
            ),
        ] {
            let err = ScenarioSpec::from_json(text).expect_err(text);
            assert!(err.contains(needle), "{text}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn run_scenario_single_matches_the_bin_core_and_cancels() {
        let spec = tiny_single();
        let out = run_scenario(&spec, None).expect("uncancelled run");
        let ScenarioOutput::Single(measured) = &out else {
            panic!("single spec yields a single measurement");
        };
        let direct = crate::harness::measure_lid(&spec.scenario(), &spec.protocol());
        assert_eq!(*measured, direct);
        // The result document is byte-stable across repeat runs.
        let again = run_scenario(&spec, None).expect("second run");
        assert_eq!(
            result_json(&spec, &out).to_string(),
            result_json(&spec, &again).to_string()
        );
        // A pre-cancelled token aborts without numbers.
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(run_scenario(&spec, Some(&cancel)), Err(RunError::Cancelled));
    }

    #[test]
    fn sharded_spec_reproduces_the_monolithic_bytes() {
        let mut spec = tiny_single();
        let mono = run_scenario(&spec, None).expect("mono");
        spec.shards = ShardDims::parse("2x2").ok();
        spec.workers = Some(2);
        let sharded = run_scenario(&spec, None).expect("sharded");
        // The layout is an execution hint: identical numbers, and the
        // result bodies differ only in the spec echo.
        assert_eq!(mono, sharded);
    }
}
