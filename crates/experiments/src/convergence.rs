//! Engine validation: tick-size convergence of the time-stepped simulator.
//!
//! The simulator detects link events by diffing topologies between ticks.
//! A link that forms *and* breaks within one tick is invisible, so
//! measured event rates are biased low for coarse ticks; this experiment
//! quantifies the bias and shows convergence to the closed form as
//! `dt → 0` — the evidence that the default `dt = 0.25 s` is inside the
//! converged regime for the paper's parameter ranges.

use crate::harness::{build_world, Scenario, WorldDriver};
use manet_sim::{MobilityKind, QuietCtx};
use manet_util::table::{fmt_sig, Table};

/// One row: tick length vs measured link-change rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickRow {
    /// Tick length, seconds.
    pub dt: f64,
    /// Measured per-node total link change rate.
    pub lambda_sim: f64,
    /// Claim 2 closed form.
    pub lambda_theory: f64,
}

/// Measures the link-change rate at several tick lengths on the CV torus.
pub fn tick_convergence(measure: f64) -> Vec<TickRow> {
    let scenario = Scenario {
        nodes: 300,
        radius: 120.0,
        mobility: MobilityKind::ConstantVelocity,
        ..Scenario::default()
    };
    let model =
        manet_model::OverheadModel::new(scenario.params(), manet_model::DegreeModel::TorusExact);
    let theory = model.link_change_rate();
    [2.0, 1.0, 0.5, 0.25, 0.125]
        .into_iter()
        .map(|dt| {
            let mut world = WorldDriver::new(build_world(&scenario, dt, 0xD7C0));
            let mut quiet = QuietCtx::new();
            world.run_for(30.0, &mut quiet.ctx());
            world.begin_measurement();
            world.run_for(measure, &mut quiet.ctx());
            let n = world.node_count();
            let t = world.measured_time();
            let lambda = world.counters().per_node_link_generation_rate(n, t)
                + world.counters().per_node_link_break_rate(n, t);
            TickRow {
                dt,
                lambda_sim: lambda,
                lambda_theory: theory,
            }
        })
        .collect()
}

/// Renders the convergence table.
pub fn table(rows: &[TickRow]) -> Table {
    let mut t = Table::new(["dt [s]", "lambda sim", "lambda theory", "sim/theory"]);
    for r in rows {
        t.row([
            fmt_sig(r.dt, 3),
            fmt_sig(r.lambda_sim, 4),
            fmt_sig(r.lambda_theory, 4),
            fmt_sig(r.lambda_sim / r.lambda_theory, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_ticks_converge_to_theory() {
        let rows = tick_convergence(150.0);
        // Ratios approach 1 monotonically-ish as dt shrinks; the finest
        // tick is within a few percent.
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        let err_coarse = (first.lambda_sim / first.lambda_theory - 1.0).abs();
        let err_fine = (last.lambda_sim / last.lambda_theory - 1.0).abs();
        assert!(
            err_fine < err_coarse + 0.01,
            "coarse {err_coarse}, fine {err_fine}"
        );
        assert!(err_fine < 0.08, "fine-tick error {err_fine}");
    }
}
