//! Profiler baseline: tick-phase wall-clock timing of the default
//! 400-node scenario, written to `BENCH_telemetry.json` (committed at the
//! repo root so regressions in per-phase cost are visible in review).

use manet_experiments::harness::{Protocol, Scenario};
use manet_experiments::trace::{trace_run, TelemetryConfig};
use manet_telemetry::Phase;
use manet_util::json::Value;

fn main() {
    let scenario = Scenario::default();
    let protocol = Protocol {
        warmup: 20.0,
        measure: 60.0,
        seeds: vec![11],
        dt: 0.25,
    };
    let run = trace_run(
        &scenario,
        &protocol,
        &TelemetryConfig::in_memory("bench_telemetry"),
    )
    .expect("in-memory run performs no IO");
    println!("{}", run.profile.to_table().to_ascii());

    let mut phases = Vec::new();
    for phase in Phase::ALL {
        let Some(s) = run.profile.get(phase) else {
            continue;
        };
        phases.push(Value::Obj(vec![
            ("phase".into(), Value::from(phase.name())),
            ("ticks".into(), Value::from(s.count)),
            ("total_s".into(), Value::from(s.total)),
            ("min_s".into(), Value::from(s.min)),
            ("mean_s".into(), Value::from(s.mean)),
            ("p99_s".into(), Value::from(s.p99)),
            ("max_s".into(), Value::from(s.max)),
        ]));
    }
    let doc = Value::Obj(vec![
        ("bench".into(), Value::from("telemetry_phase_profile")),
        ("nodes".into(), Value::from(scenario.nodes)),
        ("dt".into(), Value::from(protocol.dt)),
        (
            "sim_seconds".into(),
            Value::from(protocol.warmup + protocol.measure),
        ),
        ("seed".into(), Value::from(protocol.seeds[0])),
        ("total_wall_s".into(), Value::from(run.profile.total_secs())),
        ("phases".into(), Value::Arr(phases)),
    ]);
    let path = "BENCH_telemetry.json";
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => println!("[json] {path}"),
        Err(e) => println!("[json] write failed: {e}"),
    }
}
