//! Profiler baseline: tick-phase wall-clock timing of the default
//! 400-node scenario, written to `BENCH_telemetry.json` (including the
//! live-exporter serve-on-vs-off overhead), plus the same scenario with
//! causal attribution enabled, written to `BENCH_attribution.json` (both
//! committed at the repo root so regressions in per-phase, attribution,
//! and exporter cost are visible in review).

use manet_experiments::harness::{Protocol, Scenario};
use manet_experiments::trace::{install_live_publisher, trace_run, TelemetryConfig, TraceRun};
use manet_telemetry::{MetricsServer, Phase};
use manet_util::json::Value;

fn phase_rows(run: &TraceRun) -> Vec<Value> {
    let mut phases = Vec::new();
    for phase in Phase::ALL {
        let Some(s) = run.profile.get(phase) else {
            continue;
        };
        phases.push(Value::Obj(vec![
            ("phase".into(), Value::from(phase.name())),
            ("ticks".into(), Value::from(s.count)),
            ("total_s".into(), Value::from(s.total)),
            ("min_s".into(), Value::from(s.min)),
            ("mean_s".into(), Value::from(s.mean)),
            ("p99_s".into(), Value::from(s.p99)),
            ("max_s".into(), Value::from(s.max)),
        ]));
    }
    phases
}

fn write_json(path: &str, doc: &Value) {
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => println!("[json] {path}"),
        Err(e) => println!("[json] write failed: {e}"),
    }
}

fn main() {
    let scenario = Scenario::default();
    let protocol = Protocol {
        warmup: 20.0,
        measure: 60.0,
        seeds: vec![11],
        dt: 0.25,
    };
    let run = trace_run(
        &scenario,
        &protocol,
        &TelemetryConfig::in_memory("bench_telemetry"),
    )
    .expect("in-memory run performs no IO");
    println!("{}", run.profile.to_table().to_ascii());
    let plain_wall = run.profile.total_secs();

    // The attribution-enabled twin: same scenario, same seed, with the
    // cause tracker, ledger, and audit monitors live. The overhead ratio
    // against the plain traced run is the cost of the attribution plane.
    let attr_run = trace_run(
        &scenario,
        &protocol,
        &TelemetryConfig::in_memory("bench_attribution").with_attribution(),
    )
    .expect("in-memory run performs no IO");
    println!("{}", attr_run.profile.to_table().to_ascii());
    let attr = attr_run
        .attribution
        .as_ref()
        .expect("attribution was enabled");
    let attr_wall = attr_run.profile.total_secs();
    let overhead_pct = if plain_wall > 0.0 {
        (attr_wall - plain_wall) / plain_wall * 100.0
    } else {
        0.0
    };
    println!(
        "attribution overhead: {plain_wall:.3}s -> {attr_wall:.3}s ({overhead_pct:+.1}%), \
         {} events, {} chains, audit {}",
        attr.ledger.events_seen(),
        attr.ledger.chains().len(),
        if attr.audit.is_clean() {
            "clean"
        } else {
            "VIOLATED"
        }
    );

    // The live-exporter twin: same scenario and seed with a bound
    // /metrics endpoint receiving a snapshot per tumbling window (no
    // scraper attached — this measures the publication path itself).
    // Installing the process-wide publisher is irreversible, so this run
    // comes after every serve-off measurement above.
    let server = MetricsServer::serve("127.0.0.1:0").expect("bind ephemeral port");
    assert!(install_live_publisher(server.publisher()));
    let serve_run = trace_run(
        &scenario,
        &protocol,
        &TelemetryConfig::in_memory("bench_telemetry_serve"),
    )
    .expect("in-memory run performs no IO");
    drop(server);
    let serve_wall = serve_run.profile.total_secs();
    let serve_overhead_pct = if plain_wall > 0.0 {
        (serve_wall - plain_wall) / plain_wall * 100.0
    } else {
        0.0
    };
    println!(
        "live-exporter overhead: {plain_wall:.3}s -> {serve_wall:.3}s ({serve_overhead_pct:+.1}%)"
    );

    let doc = Value::Obj(vec![
        ("bench".into(), Value::from("telemetry_phase_profile")),
        ("nodes".into(), Value::from(scenario.nodes)),
        ("dt".into(), Value::from(protocol.dt)),
        (
            "sim_seconds".into(),
            Value::from(protocol.warmup + protocol.measure),
        ),
        ("seed".into(), Value::from(protocol.seeds[0])),
        ("total_wall_s".into(), Value::from(plain_wall)),
        ("serve_wall_s".into(), Value::from(serve_wall)),
        ("serve_overhead_pct".into(), Value::from(serve_overhead_pct)),
        ("phases".into(), Value::Arr(phase_rows(&run))),
    ]);
    write_json("BENCH_telemetry.json", &doc);

    let attr_doc = Value::Obj(vec![
        ("bench".into(), Value::from("attribution_phase_profile")),
        ("nodes".into(), Value::from(scenario.nodes)),
        ("dt".into(), Value::from(protocol.dt)),
        (
            "sim_seconds".into(),
            Value::from(protocol.warmup + protocol.measure),
        ),
        ("seed".into(), Value::from(protocol.seeds[0])),
        ("total_wall_s".into(), Value::from(attr_wall)),
        ("plain_wall_s".into(), Value::from(plain_wall)),
        ("overhead_pct".into(), Value::from(overhead_pct)),
        (
            "ledger_events".into(),
            Value::from(attr.ledger.events_seen()),
        ),
        (
            "causal_chains".into(),
            Value::from(attr.ledger.chains().len()),
        ),
        (
            "audit_violations".into(),
            Value::from(attr.audit.violations.len()),
        ),
        ("audit_samples".into(), Value::from(attr.audit.samples)),
        ("phases".into(), Value::Arr(phase_rows(&attr_run))),
    ]);
    write_json("BENCH_attribution.json", &attr_doc);
}
