//! Profiler baseline: tick-phase wall-clock timing of the default
//! 400-node scenario, written to `BENCH_telemetry.json` (including the
//! live-exporter serve-on-vs-off overhead), plus the same scenario with
//! causal attribution enabled, written to `BENCH_attribution.json` (both
//! committed at the repo root so regressions in per-phase, attribution,
//! and exporter cost are visible in review).
//!
//! Each configuration runs three times and the committed overhead ratios
//! compare **medians**, with the raw per-run wall times kept alongside:
//! a single cold run is noisy enough (allocator warmup, CPU frequency
//! ramp) that one-shot ratios used to come out negative — the exporter
//! run measuring *faster* than its baseline. The serve runs come last
//! because installing the process-wide live publisher is irreversible.

use manet_experiments::harness::{Protocol, Scenario};
use manet_experiments::trace::{install_live_publisher, trace_run, TelemetryConfig, TraceRun};
use manet_telemetry::{MetricsServer, Phase};
use manet_util::json::Value;

/// Runs per configuration; medians are over these.
const RUNS: usize = 3;

fn phase_rows(run: &TraceRun) -> Vec<Value> {
    let mut phases = Vec::new();
    for phase in Phase::ALL {
        let Some(s) = run.profile.get(phase) else {
            continue;
        };
        phases.push(Value::Obj(vec![
            ("phase".into(), Value::from(phase.name())),
            ("ticks".into(), Value::from(s.count)),
            ("total_s".into(), Value::from(s.total)),
            ("min_s".into(), Value::from(s.min)),
            ("mean_s".into(), Value::from(s.mean)),
            ("p99_s".into(), Value::from(s.p99)),
            ("max_s".into(), Value::from(s.max)),
        ]));
    }
    phases
}

fn write_json(path: &str, doc: &Value) {
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => println!("[json] {path}"),
        Err(e) => println!("[json] write failed: {e}"),
    }
}

/// Runs one configuration [`RUNS`] times; returns the runs and the index
/// of the median-wall run.
fn run_many(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &TelemetryConfig,
) -> (Vec<TraceRun>, usize) {
    let runs: Vec<TraceRun> = (0..RUNS)
        .map(|_| trace_run(scenario, protocol, config).expect("in-memory run performs no IO"))
        .collect();
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| {
        runs[a]
            .profile
            .total_secs()
            .total_cmp(&runs[b].profile.total_secs())
    });
    let median = order[order.len() / 2];
    (runs, median)
}

fn walls(runs: &[TraceRun]) -> Vec<f64> {
    runs.iter().map(|r| r.profile.total_secs()).collect()
}

fn fmt_walls(walls: &[f64]) -> String {
    walls
        .iter()
        .map(|w| format!("{w:.3}s"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let scenario = Scenario::default();
    let protocol = Protocol {
        warmup: 20.0,
        measure: 60.0,
        seeds: vec![11],
        dt: 0.25,
    };

    // Serve-off configurations first: installing the live publisher below
    // is process-wide and irreversible, so every baseline must be
    // measured before it.
    let (plain_runs, plain_mid) = run_many(
        &scenario,
        &protocol,
        &TelemetryConfig::in_memory("bench_telemetry"),
    );
    let run = &plain_runs[plain_mid];
    println!("{}", run.profile.to_table().to_ascii());
    let plain_walls = walls(&plain_runs);
    let plain_wall = plain_walls[plain_mid];

    // The attribution-enabled twin: same scenario, same seed, with the
    // cause tracker, ledger, and audit monitors live. The overhead ratio
    // against the plain traced run is the cost of the attribution plane.
    let (attr_runs, attr_mid) = run_many(
        &scenario,
        &protocol,
        &TelemetryConfig::in_memory("bench_attribution").with_attribution(),
    );
    let attr_run = &attr_runs[attr_mid];
    println!("{}", attr_run.profile.to_table().to_ascii());
    let attr = attr_run
        .attribution
        .as_ref()
        .expect("attribution was enabled");
    let attr_walls = walls(&attr_runs);
    let attr_wall = attr_walls[attr_mid];
    let overhead_pct = if plain_wall > 0.0 {
        (attr_wall - plain_wall) / plain_wall * 100.0
    } else {
        0.0
    };
    println!(
        "attribution overhead (median of {RUNS}): {plain_wall:.3}s -> {attr_wall:.3}s \
         ({overhead_pct:+.1}%), {} events, {} chains, audit {}",
        attr.ledger.events_seen(),
        attr.ledger.chains().len(),
        if attr.audit.is_clean() {
            "clean"
        } else {
            "VIOLATED"
        }
    );
    println!("  plain runs: {}", fmt_walls(&plain_walls));
    println!("  attr runs:  {}", fmt_walls(&attr_walls));

    // The live-exporter twin: same scenario and seed with a bound
    // /metrics endpoint receiving a snapshot per tumbling window (no
    // scraper attached — this measures the publication path itself).
    let server = MetricsServer::serve("127.0.0.1:0").expect("bind ephemeral port");
    assert!(install_live_publisher(server.publisher()));
    let (serve_runs, serve_mid) = run_many(
        &scenario,
        &protocol,
        &TelemetryConfig::in_memory("bench_telemetry_serve"),
    );
    drop(server);
    let serve_walls = walls(&serve_runs);
    let serve_wall = serve_walls[serve_mid];
    let serve_overhead_pct = if plain_wall > 0.0 {
        (serve_wall - plain_wall) / plain_wall * 100.0
    } else {
        0.0
    };
    println!(
        "live-exporter overhead (median of {RUNS}): {plain_wall:.3}s -> {serve_wall:.3}s \
         ({serve_overhead_pct:+.1}%)"
    );
    println!("  serve runs: {}", fmt_walls(&serve_walls));

    let wall_arr = |walls: &[f64]| Value::Arr(walls.iter().map(|&w| Value::from(w)).collect());
    let doc = Value::Obj(vec![
        ("bench".into(), Value::from("telemetry_phase_profile")),
        ("nodes".into(), Value::from(scenario.nodes)),
        ("dt".into(), Value::from(protocol.dt)),
        (
            "sim_seconds".into(),
            Value::from(protocol.warmup + protocol.measure),
        ),
        ("seed".into(), Value::from(protocol.seeds[0])),
        ("runs_per_config".into(), Value::from(RUNS)),
        ("total_wall_s".into(), Value::from(plain_wall)),
        ("wall_runs_s".into(), wall_arr(&plain_walls)),
        ("serve_wall_s".into(), Value::from(serve_wall)),
        ("serve_wall_runs_s".into(), wall_arr(&serve_walls)),
        ("serve_overhead_pct".into(), Value::from(serve_overhead_pct)),
        ("phases".into(), Value::Arr(phase_rows(run))),
    ]);
    write_json("BENCH_telemetry.json", &doc);

    let attr_doc = Value::Obj(vec![
        ("bench".into(), Value::from("attribution_phase_profile")),
        ("nodes".into(), Value::from(scenario.nodes)),
        ("dt".into(), Value::from(protocol.dt)),
        (
            "sim_seconds".into(),
            Value::from(protocol.warmup + protocol.measure),
        ),
        ("seed".into(), Value::from(protocol.seeds[0])),
        ("runs_per_config".into(), Value::from(RUNS)),
        ("total_wall_s".into(), Value::from(attr_wall)),
        ("wall_runs_s".into(), wall_arr(&attr_walls)),
        ("plain_wall_s".into(), Value::from(plain_wall)),
        ("overhead_pct".into(), Value::from(overhead_pct)),
        (
            "ledger_events".into(),
            Value::from(attr.ledger.events_seen()),
        ),
        (
            "causal_chains".into(),
            Value::from(attr.ledger.chains().len()),
        ),
        (
            "audit_violations".into(),
            Value::from(attr.audit.violations.len()),
        ),
        ("audit_samples".into(), Value::from(attr.audit.samples)),
        ("phases".into(), Value::Arr(phase_rows(attr_run))),
    ]);
    write_json("BENCH_attribution.json", &attr_doc);
}
