//! Gated causal-attribution report: measured per-event unit costs vs the
//! analytic per-event decomposition, plus the runtime audit verdict.
//!
//! ```text
//! attribution_report            # default 400-node scenario, 15% gates
//! attribution_report --quick    # short 80-node run: audit + exact
//!                               # reconciliation gates only (used by
//!                               # scripts/verify.sh)
//! attribution_report --metrics-out <path>   # also write a Prometheus
//!                               # text snapshot of the run
//! ```
//!
//! The paper's overhead analysis decomposes every message class into
//! per-event costs: an EventDriven link generation costs 2 HELLO beacons,
//! a member–head break costs 1 CLUSTER message, a head contact dissolves
//! the losing cluster (`m` CLUSTER messages), and an intra-cluster link
//! change triggers one sync round (`m` ROUTE messages). The attribution
//! ledger measures those same ratios from the causal chains; this binary
//! checks that measurement and analysis agree.
//!
//! Exits non-zero when any gate fails.

use manet_experiments::harness::{Protocol, Scenario};
use manet_experiments::trace::{
    attribution_text, audit_text, init_shards_from_args, metrics_out_from_args, trace_run_sharded,
    TelemetryConfig,
};
use manet_model::overhead::OverheadModel;
use manet_model::{DegreeModel, NetworkParams};
use manet_sim::MessageKind;
use manet_telemetry::{MsgClass, RootCause};
use std::process::ExitCode;

/// Relative tolerance for the measured-vs-analytic unit-cost gates.
const UNIT_COST_TOLERANCE: f64 = 0.15;

fn main() -> ExitCode {
    let shards = init_shards_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let (scenario, protocol, label) = if quick {
        (
            Scenario {
                nodes: 80,
                side: 500.0,
                radius: 100.0,
                ..Scenario::default()
            },
            Protocol {
                warmup: 10.0,
                measure: 30.0,
                seeds: vec![7],
                dt: 0.5,
            },
            "attribution_quick",
        )
    } else {
        (Scenario::default(), Protocol::default(), "attribution")
    };

    let mut config = TelemetryConfig::in_memory(label).with_attribution();
    if let Some(path) = metrics_out_from_args() {
        println!("[attribution] metrics snapshot -> {}", path.display());
        config = config.with_metrics_out(path);
    }
    println!(
        "[attribution] {label}: N={} side={} r={} v={} warmup={} measure={} dt={} seed={}",
        scenario.nodes,
        scenario.side,
        scenario.radius,
        scenario.speed,
        protocol.warmup,
        protocol.measure,
        protocol.dt,
        protocol.seeds.first().copied().unwrap_or(1),
    );
    let run = match trace_run_sharded(&scenario, &protocol, &config, shards) {
        Ok(run) => run,
        Err(e) => {
            println!("GATE FAIL: traced run errored: {e}");
            return ExitCode::FAILURE;
        }
    };
    let attr = run.attribution.as_ref().expect("attribution was enabled");
    print!(
        "{}",
        attribution_text(&attr.ledger, &run.recorder, run.meta.nodes)
    );
    print!("{}", audit_text(&attr.audit));

    let mut ok = true;
    let mut gate = |name: &str, pass: bool, detail: String| {
        println!(
            "gate {:<34} {} {}",
            name,
            if pass { "PASS" } else { "FAIL" },
            detail
        );
        ok &= pass;
    };

    // Structural gates: always enforced.
    gate(
        "audit-clean",
        attr.audit.is_clean(),
        format!(
            "{} violations over {} samples",
            attr.audit.violations.len(),
            attr.audit.samples
        ),
    );
    gate(
        "chains-anchored",
        attr.ledger.unanchored_chains().is_empty(),
        format!("{} unanchored", attr.ledger.unanchored_chains().len()),
    );
    for (class, kind) in [
        (MsgClass::Hello, MessageKind::Hello),
        (MsgClass::Cluster, MessageKind::Cluster),
        (MsgClass::Route, MessageKind::Route),
    ] {
        let attributed = attr.ledger.attributed_total(class);
        let counted = run.counters.messages(kind);
        gate(
            &format!("ledger-reconciles-{}", class.name()),
            attributed == counted,
            format!("attributed {attributed} vs counters {counted}"),
        );
    }

    // Exact per-event identities of the protocol itself.
    if let Some(c) = attr.ledger.unit_cost(RootCause::LinkGen, MsgClass::Hello) {
        gate(
            "hello-per-link-gen",
            (c - 2.0).abs() < 1e-9,
            format!("measured {c:.3}, identity 2"),
        );
    }
    if let Some(c) = attr
        .ledger
        .unit_cost(RootCause::HeadLoss, MsgClass::Cluster)
    {
        gate(
            "cluster-per-head-loss",
            (c - 1.0).abs() < 1e-9,
            format!("measured {c:.3}, identity 1"),
        );
    }

    // Statistical gates vs the analytic decomposition: need the long
    // default run for the event statistics to converge.
    if quick {
        println!("(quick mode: skipping statistical unit-cost gates)");
    } else {
        let heads: Vec<f64> = run
            .recorder
            .cluster_count_series()
            .into_iter()
            .flatten()
            .collect();
        let mean_heads = heads.iter().sum::<f64>() / heads.len().max(1) as f64;
        let p_bar = mean_heads / run.meta.nodes as f64;
        let params = NetworkParams::new(
            scenario.nodes,
            scenario.side,
            scenario.radius,
            scenario.speed,
        )
        .expect("default scenario is a valid parameterization");
        let model = OverheadModel::new(params, DegreeModel::TorusExact);
        println!(
            "analytic frame: p\u{304}={p_bar:.4} m\u{304}={:.2} d={:.2} \u{3bb}={:.4}/s/node",
            1.0 / p_bar,
            model.expected_degree(),
            model.link_change_rate()
        );
        for (name, root, class, predicted) in [
            (
                "cluster-per-head-contact",
                RootCause::HeadContact,
                MsgClass::Cluster,
                model.contact_unit_cost(p_bar),
            ),
            (
                "route-per-intra-change",
                RootCause::IntraClusterChange,
                MsgClass::Route,
                model.route_unit_cost(p_bar),
            ),
        ] {
            match attr.ledger.unit_cost(root, class) {
                Some(measured) => {
                    let rel = (measured - predicted).abs() / predicted;
                    gate(
                        name,
                        rel <= UNIT_COST_TOLERANCE,
                        format!(
                            "measured {measured:.3} vs analytic {predicted:.3} ({:+.1}%, tol {:.0}%)",
                            (measured - predicted) / predicted * 100.0,
                            UNIT_COST_TOLERANCE * 100.0
                        ),
                    );
                }
                None => gate(name, false, "no root events observed".to_string()),
            }
        }
    }

    if ok {
        println!("ATTRIBUTION OK");
        ExitCode::SUCCESS
    } else {
        println!("ATTRIBUTION FAIL");
        ExitCode::FAILURE
    }
}
