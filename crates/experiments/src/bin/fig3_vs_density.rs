//! Reproduces Figure 3: control message frequencies vs node density.

use manet_experiments::figures::fig3;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("FIG3 — control message frequencies vs density (paper Figure 3)");
    println!("fixed: a=1000 m, r=150 m, v=10 m/s; N sweeps the density\n");
    let fig = fig3(&Protocol::default());
    manet_experiments::emit("fig3_vs_density", &fig.table());
    let (h, c, r) = fig.agreement();
    println!("RMS relative error (sim vs analysis): hello {h:.3}  cluster {c:.3}  route {r:.3}");
    manet_experiments::trace::maybe_trace_default("fig3_vs_density");
}
