//! `bench_stack` — throughput and allocation measurement for the unified
//! [`ProtocolStack`] tick pipeline (DESIGN.md §12).
//!
//! Measures full-stack ticks/sec (LID clustering + intra-cluster routing
//! over the ideal plane) at N = 400 and N = 1600 at fixed density, plus
//! the steady-state allocation count of the world's topology/diff hot
//! path under a counting global allocator (expected: zero once scratch
//! capacities have warmed up).
//!
//! ```sh
//! cargo run --release -p manet-experiments --bin bench_stack          # full, writes BENCH_stack.json
//! cargo run --release -p manet-experiments --bin bench_stack -- --quick   # smoke: stdout only
//! ```

use manet_cluster::{Clustering, LowestId};
use manet_routing::intra::IntraClusterRouting;
use manet_sim::{HelloMode, QuietCtx, SimBuilder};
use manet_stack::{ProtocolStack, StackReport};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic increment with no other side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const DT: f64 = 0.5;
const RADIUS: f64 = 150.0;
const SPEED: f64 = 10.0;
const DENSITY: f64 = 400.0 / 1e6; // nodes per m², fixed across sizes

struct Row {
    nodes: usize,
    side: f64,
    measure_ticks: usize,
    ticks_per_sec: f64,
    msgs_per_tick: f64,
    world_allocs_per_100_ticks: u64,
}

fn bench_size(nodes: usize, measure_ticks: usize, alloc_warm_ticks: usize) -> Row {
    let side = (nodes as f64 / DENSITY).sqrt();
    let build = || {
        SimBuilder::new()
            .nodes(nodes)
            .side(side)
            .radius(RADIUS)
            .speed(SPEED)
            .dt(DT)
            .seed(7)
            .hello_mode(HelloMode::EventDriven)
            .build()
    };
    let mut quiet = QuietCtx::new();

    // Full-stack throughput: LID clustering + intra-cluster routing.
    let world = build();
    let clustering = Clustering::form(LowestId, world.topology());
    let mut stack = ProtocolStack::ideal(world, clustering, IntraClusterRouting::new());
    stack.prime(&mut quiet.ctx());
    for _ in 0..100 {
        stack.tick(&mut quiet.ctx());
    }
    let mut agg = StackReport::default();
    let t0 = Instant::now();
    for _ in 0..measure_ticks {
        agg.absorb(stack.tick(&mut quiet.ctx()));
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // Steady-state allocation count of the world hot path (topology/diff),
    // the piece DESIGN.md §12 pins at zero. Fresh world and scratch so the
    // count is warm-up-order independent.
    let mut world = build();
    let mut quiet_alloc = QuietCtx::new();
    for _ in 0..alloc_warm_ticks {
        world.step(&mut quiet_alloc.ctx());
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..100 {
        world.step(&mut quiet_alloc.ctx());
    }
    let world_allocs = ALLOCS.load(Ordering::Relaxed) - before;

    Row {
        nodes,
        side,
        measure_ticks,
        ticks_per_sec: measure_ticks as f64 / elapsed,
        msgs_per_tick: agg.attempted_messages() as f64 / measure_ticks as f64,
        world_allocs_per_100_ticks: world_allocs,
    }
}

fn to_json(rows: &[Row], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"bench_stack\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"dt\": {DT}, \"radius\": {RADIUS}, \"speed\": {SPEED}, \"density_per_m2\": {DENSITY},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"side\": {:.1}, \"measure_ticks\": {}, \"ticks_per_sec\": {:.1}, \"msgs_per_tick\": {:.1}, \"world_allocs_per_100_ticks\": {}}}{}\n",
            r.nodes,
            r.side,
            r.measure_ticks,
            r.ticks_per_sec,
            r.msgs_per_tick,
            r.world_allocs_per_100_ticks,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode keeps the smoke run under a couple of seconds; the full
    // run warms the allocation probe long enough for every capacity in
    // the double-buffered scratch to settle (see tests/alloc_free.rs).
    let (ticks_400, ticks_1600, alloc_warm) = if quick {
        (200, 50, 100)
    } else {
        (2000, 500, 6000)
    };

    let rows = vec![
        bench_size(400, ticks_400, alloc_warm),
        bench_size(1600, ticks_1600, alloc_warm),
    ];
    let json = to_json(&rows, quick);
    print!("{json}");
    for r in &rows {
        eprintln!(
            "N={:>5}: {:>9.1} ticks/s  ({:.1} msgs/tick, {} world allocs/100 ticks{})",
            r.nodes,
            r.ticks_per_sec,
            r.msgs_per_tick,
            r.world_allocs_per_100_ticks,
            if quick { ", quick warmup" } else { "" }
        );
    }
    if !quick {
        std::fs::write("BENCH_stack.json", &json).expect("write BENCH_stack.json");
        eprintln!("wrote BENCH_stack.json");
    }
}
