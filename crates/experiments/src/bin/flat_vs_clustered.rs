//! EXT2 — flat DSDV baseline vs the clustered hybrid stack.

use manet_experiments::baseline::{flat_vs_clustered_sharded, table};
use manet_experiments::harness::Protocol;
use manet_experiments::trace::init_shards_from_args;

fn main() {
    let shards = init_shards_from_args();
    println!("EXT2 — flat proactive (DSDV, 10 s dumps) vs clustered hybrid, fixed density\n");
    let rows = flat_vs_clustered_sharded(&Protocol::default(), &[100, 200, 400, 800], 10.0, shards);
    manet_experiments::emit("ext2_flat_vs_clustered", &table(&rows));
    println!("Flat per-node overhead grows with N; clustered stays ~flat (paper §1).");
    manet_experiments::trace::maybe_trace_default("flat_vs_clustered");
}
