//! EXT2 — flat DSDV baseline vs the clustered hybrid stack.

use manet_experiments::baseline::{flat_vs_clustered, table};
use manet_experiments::harness::Protocol;

fn main() {
    println!("EXT2 — flat proactive (DSDV, 10 s dumps) vs clustered hybrid, fixed density\n");
    let rows = flat_vs_clustered(&Protocol::default(), &[100, 200, 400, 800], 10.0);
    manet_experiments::emit("ext2_flat_vs_clustered", &table(&rows));
    println!("Flat per-node overhead grows with N; clustered stays ~flat (paper §1).");
    manet_experiments::trace::maybe_trace_default("flat_vs_clustered");
}
