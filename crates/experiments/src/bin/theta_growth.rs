//! Verifies the Section 6 Θ-notation growth table numerically.

use manet_experiments::theta;

fn main() {
    println!("THETA — Section 6 growth exponents, fitted over two decades\n");
    let cells = theta::compute();
    manet_experiments::emit("theta_growth", &theta::table(&cells));
    let confirmed = cells.iter().filter(|c| c.confirms(0.12)).count();
    println!("{confirmed}/9 cells confirm the paper's exponents");
    manet_experiments::trace::maybe_trace_default("theta_growth");
}
