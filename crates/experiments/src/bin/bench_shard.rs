//! `bench_shard` — throughput of the sharded topology step across shard
//! layouts and population sizes (DESIGN.md §13).
//!
//! For each N at fixed density, measures the per-tick world step —
//! mobility, topology, diff, HELLO accounting — on the monolithic grid
//! path and on the ghost-margin shard plane at a sweep of layouts, plus
//! the steady-state allocation count of the sharded hot path (expected:
//! zero once per-shard capacities have warmed up). Results are honest to
//! the host: `host_cpus` and `workers` are recorded next to every
//! speedup, and on a single-core container the sharded layouts are
//! expected to track 1x1 (the determinism contract makes them
//! bit-identical, so the sweep is then a pure-overhead measurement).
//!
//! ```sh
//! cargo run --release -p manet-experiments --bin bench_shard          # full, writes BENCH_shard.json
//! cargo run --release -p manet-experiments --bin bench_shard -- --quick   # smoke: stdout only
//! ```

use manet_cluster::{Clustering, LowestId};
use manet_geom::ShardDims;
use manet_routing::intra::IntraClusterRouting;
use manet_shard::{ShardPlane, ShardedStack};
use manet_sim::{HelloMode, QuietCtx, Scratch, SimBuilder, StepCtx, World};
use manet_stack::ProtocolStack;
use manet_telemetry::{Probe, SpanLabel, SpanRecorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic increment with no other side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const DT: f64 = 0.5;
const RADIUS: f64 = 150.0;
const SPEED: f64 = 10.0;
const DENSITY: f64 = 400.0 / 1e6; // nodes per m², fixed across sizes

struct Row {
    /// `"world_step"`: mobility + topology + HELLO accounting only.
    /// `"full_stack"`: the whole canonical pipeline (Mobility → Topology →
    /// HELLO → Cluster → Route → Telemetry) through the stage traits.
    mode: &'static str,
    nodes: usize,
    side: f64,
    layout: String,
    shards: usize,
    workers: usize,
    measure_ticks: usize,
    ticks_per_sec: f64,
    speedup_vs_1x1: f64,
    step_allocs_per_100_ticks: u64,
    /// Max-over-mean per-shard compute wall time from the span plane
    /// (1.0 = perfectly balanced; the straggler baseline review watches).
    compute_imbalance: f64,
}

fn build_world(nodes: usize, side: f64) -> World {
    SimBuilder::new()
        .nodes(nodes)
        .side(side)
        .radius(RADIUS)
        .speed(SPEED)
        .dt(DT)
        .seed(7)
        .hello_mode(HelloMode::EventDriven)
        .build()
}

/// One (N, layout) cell: throughput over `measure_ticks`, then a
/// steady-state allocation window. `layout = None` is the monolithic
/// grid path, the reference the shard plane must not regress.
fn bench_cell(
    nodes: usize,
    layout: Option<ShardDims>,
    measure_ticks: usize,
    warm_ticks: usize,
) -> Row {
    let side = (nodes as f64 / DENSITY).sqrt();
    let mut world = build_world(nodes, side);
    let mut plane = layout.map(|dims| {
        ShardPlane::for_world(&world, dims).unwrap_or_else(|e| panic!("layout {dims}: {e}"))
    });
    let mut quiet = QuietCtx::new();
    let mut step = |world: &mut World, plane: &mut Option<ShardPlane>| match plane {
        Some(p) => world.step_with(&mut quiet.ctx(), p),
        None => world.step(&mut quiet.ctx()),
    };

    for _ in 0..warm_ticks {
        step(&mut world, &mut plane);
    }
    let t0 = Instant::now();
    for _ in 0..measure_ticks {
        step(&mut world, &mut plane);
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let alloc_window = 100;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..alloc_window {
        step(&mut world, &mut plane);
    }
    let step_allocs = ALLOCS.load(Ordering::Relaxed) - before;

    // Straggler window: a short spanned run after the alloc window (the
    // span recorder allocates, so it must not share that window). The
    // per-shard compute spans give max/mean shard wall time — the
    // imbalance a worker-per-shard run is limited by.
    let compute_imbalance = if plane.is_some() {
        let mut spans = SpanRecorder::new();
        let mut scratch = Scratch::new();
        for _ in 0..measure_ticks.min(25) {
            let mut probe = Probe::new(None, None).with_spans(Some(&mut spans));
            let mut ctx = StepCtx::new(&mut probe, &mut scratch);
            match plane.as_mut() {
                Some(p) => world.step_with(&mut ctx, p),
                None => unreachable!("spanned window only runs sharded"),
            };
        }
        let shards = spans.shard_slots().saturating_sub(1);
        let totals: Vec<f64> = (0..shards)
            .map(|s| {
                spans
                    .hist(SpanLabel::ShardCompute, Some(s as u16))
                    .map_or(0.0, |h| h.sum())
            })
            .collect();
        let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
        if mean > 0.0 {
            totals.iter().cloned().fold(0.0, f64::max) / mean
        } else {
            1.0
        }
    } else {
        1.0 // monolithic: a single undivided compute, balanced by definition
    };

    Row {
        mode: "world_step",
        nodes,
        side,
        layout: layout.map_or("mono".to_string(), |d| d.to_string()),
        shards: layout.map_or(1, |d| d.count()),
        workers: plane.as_ref().map_or(1, |p| p.workers()),
        measure_ticks,
        ticks_per_sec: measure_ticks as f64 / elapsed,
        speedup_vs_1x1: 0.0, // filled in per size group below
        step_allocs_per_100_ticks: step_allocs,
        compute_imbalance,
    }
}

/// The full canonical pipeline under bench: either the monolithic stack or
/// the sharded stack whose every stage runs on the plane.
enum StackBench {
    Mono(Box<ProtocolStack<Clustering<LowestId>, IntraClusterRouting>>),
    Sharded(Box<ShardedStack<Clustering<LowestId>, IntraClusterRouting>>),
}

impl StackBench {
    fn build(nodes: usize, side: f64, layout: Option<ShardDims>) -> Self {
        let world = build_world(nodes, side);
        let clustering = Clustering::form(LowestId, world.topology());
        match layout {
            None => StackBench::Mono(Box::new(ProtocolStack::ideal(
                world,
                clustering,
                IntraClusterRouting::new(),
            ))),
            Some(dims) => StackBench::Sharded(Box::new(
                ShardedStack::ideal(world, clustering, IntraClusterRouting::new(), dims)
                    .unwrap_or_else(|e| panic!("layout {dims}: {e}")),
            )),
        }
    }

    fn prime(&mut self, ctx: &mut StepCtx<'_, '_>) {
        match self {
            StackBench::Mono(s) => s.prime(ctx),
            StackBench::Sharded(s) => s.prime(ctx),
        }
    }

    fn tick(&mut self, ctx: &mut StepCtx<'_, '_>) {
        match self {
            StackBench::Mono(s) => {
                s.tick(ctx);
            }
            StackBench::Sharded(s) => {
                s.tick(ctx);
            }
        }
    }

    fn workers(&self) -> usize {
        match self {
            StackBench::Mono(_) => 1,
            StackBench::Sharded(s) => s.plane().workers(),
        }
    }
}

/// One (N, layout) cell of the full-stack sweep: the whole
/// Mobility→HELLO→Cluster→Route pipeline per tick, through the stage
/// traits (monolithic defaults vs the shard plane's frame-parallel
/// stages). The imbalance here aggregates *all* per-shard stage spans —
/// topology compute plus the scoped HELLO/cluster/route scans.
fn bench_stack_cell(
    nodes: usize,
    layout: Option<ShardDims>,
    measure_ticks: usize,
    warm_ticks: usize,
) -> Row {
    let side = (nodes as f64 / DENSITY).sqrt();
    let mut bench = StackBench::build(nodes, side, layout);
    let mut quiet = QuietCtx::new();
    bench.prime(&mut quiet.ctx());
    for _ in 0..warm_ticks {
        bench.tick(&mut quiet.ctx());
    }
    let t0 = Instant::now();
    for _ in 0..measure_ticks {
        bench.tick(&mut quiet.ctx());
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // The cluster/route layers allocate per tick by design (they are
    // outside the world-step zero-allocation contract); the count is
    // recorded to keep that cost visible, not gated on.
    let alloc_window = 100.min(measure_ticks.max(25));
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..alloc_window {
        bench.tick(&mut quiet.ctx());
    }
    let step_allocs = (ALLOCS.load(Ordering::Relaxed) - before) * 100 / alloc_window.max(1) as u64;

    let compute_imbalance = if matches!(bench, StackBench::Sharded(_)) {
        let mut spans = SpanRecorder::new();
        let mut scratch = Scratch::new();
        for _ in 0..measure_ticks.min(25) {
            let mut probe = Probe::new(None, None).with_spans(Some(&mut spans));
            let mut ctx = StepCtx::new(&mut probe, &mut scratch);
            bench.tick(&mut ctx);
        }
        let shards = spans.shard_slots().saturating_sub(1);
        let totals: Vec<f64> = (0..shards)
            .map(|s| {
                [
                    SpanLabel::ShardCompute,
                    SpanLabel::ShardHello,
                    SpanLabel::ShardCluster,
                    SpanLabel::ShardRoute,
                ]
                .iter()
                .map(|&l| spans.hist(l, Some(s as u16)).map_or(0.0, |h| h.sum()))
                .sum()
            })
            .collect();
        let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
        if mean > 0.0 {
            totals.iter().cloned().fold(0.0, f64::max) / mean
        } else {
            1.0
        }
    } else {
        1.0
    };

    Row {
        mode: "full_stack",
        nodes,
        side,
        layout: layout.map_or("mono".to_string(), |d| d.to_string()),
        shards: layout.map_or(1, |d| d.count()),
        workers: bench.workers(),
        measure_ticks,
        ticks_per_sec: measure_ticks as f64 / elapsed,
        speedup_vs_1x1: 0.0,
        step_allocs_per_100_ticks: step_allocs,
        compute_imbalance,
    }
}

fn bench_size(
    nodes: usize,
    layouts: &[&str],
    measure_ticks: usize,
    warm_ticks: usize,
    cell: fn(usize, Option<ShardDims>, usize, usize) -> Row,
) -> Vec<Row> {
    let mut rows = vec![cell(nodes, None, measure_ticks, warm_ticks)];
    for l in layouts {
        let dims = ShardDims::parse(l).expect("layout literal");
        rows.push(cell(nodes, Some(dims), measure_ticks, warm_ticks));
    }
    let base = rows
        .iter()
        .find(|r| r.layout == "1x1")
        .map(|r| r.ticks_per_sec)
        .expect("sweep includes 1x1");
    for r in &mut rows {
        r.speedup_vs_1x1 = r.ticks_per_sec / base;
    }
    rows
}

/// The `--quick` stage-parallel parity gate: the full sharded stack (every
/// stage on the plane, default worker pool) must report bit-identically to
/// the monolithic stack, tick for tick. This is the cheap CI face of the
/// golden-parity suites; a nonzero exit fails `verify.sh`.
fn stage_parity_gate() -> bool {
    let nodes = 400;
    let side = (nodes as f64 / DENSITY).sqrt();
    for l in ["2x2", "4x2"] {
        let dims = ShardDims::parse(l).expect("layout literal");
        let w = build_world(nodes, side);
        let c = Clustering::form(LowestId, w.topology());
        let mut mono = ProtocolStack::ideal(w, c, IntraClusterRouting::new());
        let w = build_world(nodes, side);
        let c = Clustering::form(LowestId, w.topology());
        let mut sharded = ShardedStack::ideal(w, c, IntraClusterRouting::new(), dims)
            .unwrap_or_else(|e| panic!("layout {dims}: {e}"));
        let mut qa = QuietCtx::new();
        let mut qb = QuietCtx::new();
        mono.prime(&mut qa.ctx());
        sharded.prime(&mut qb.ctx());
        for tick in 0..60 {
            let a = mono.tick(&mut qa.ctx());
            let b = sharded.tick(&mut qb.ctx());
            if a != b {
                eprintln!("PARITY FAIL: {l} tick {tick}: sharded stack report diverged");
                return false;
            }
        }
        if mono.world().counters() != sharded.world().counters()
            || mono.world().positions() != sharded.world().positions()
        {
            eprintln!("PARITY FAIL: {l}: end-state counters/positions diverged");
            return false;
        }
        eprintln!(
            "parity {l}: 60 full-stack ticks bit-identical to monolithic ({} workers)",
            sharded.plane().workers()
        );
    }
    true
}

fn to_json(rows: &[Row], quick: bool) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"bench_shard\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!(
        "  \"dt\": {DT}, \"radius\": {RADIUS}, \"speed\": {SPEED}, \"density_per_m2\": {DENSITY},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"nodes\": {}, \"side\": {:.1}, \"layout\": \"{}\", \"shards\": {}, \"workers\": {}, \"measure_ticks\": {}, \"ticks_per_sec\": {:.2}, \"speedup_vs_1x1\": {:.3}, \"step_allocs_per_100_ticks\": {}, \"compute_imbalance\": {:.3}}}{}\n",
            r.mode,
            r.nodes,
            r.side,
            r.layout,
            r.shards,
            r.workers,
            r.measure_ticks,
            r.ticks_per_sec,
            r.speedup_vs_1x1,
            r.step_allocs_per_100_ticks,
            r.compute_imbalance,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> std::process::ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let layouts = ["1x1", "2x2", "4x2", "4x4"];
    // (nodes, measure_ticks, warm_ticks): the warm window must reach the
    // per-shard high-water marks so the allocation count reflects steady
    // state, but scales down with N to keep the full sweep tractable.
    let sizes: &[(usize, usize, usize)] = if quick {
        &[(400, 40, 40), (1600, 20, 20)]
    } else {
        &[(1600, 400, 600), (10_000, 100, 200), (100_000, 25, 40)]
    };

    let mut rows = Vec::new();
    for &(nodes, measure_ticks, warm_ticks) in sizes {
        rows.extend(bench_size(
            nodes,
            &layouts,
            measure_ticks,
            warm_ticks,
            bench_cell,
        ));
    }
    // Full-stack sweep: quick mode keeps one small size; the full sweep
    // mirrors the world-step sizes so the stage-trait overhead and the
    // scoped-stage scaling are visible at every N.
    let stack_sizes: &[(usize, usize, usize)] = if quick {
        &[(400, 40, 40)]
    } else {
        &[(1600, 200, 300), (10_000, 60, 100), (100_000, 15, 25)]
    };
    for &(nodes, measure_ticks, warm_ticks) in stack_sizes {
        rows.extend(bench_size(
            nodes,
            &layouts,
            measure_ticks,
            warm_ticks,
            bench_stack_cell,
        ));
    }
    let json = to_json(&rows, quick);
    print!("{json}");
    for r in &rows {
        eprintln!(
            "{:>10} N={:>6} {:>4}: {:>8.2} ticks/s  ({:.3}x vs 1x1, {} shards, {} workers, {} allocs/100 ticks, imbalance {:.3})",
            r.mode,
            r.nodes,
            r.layout,
            r.ticks_per_sec,
            r.speedup_vs_1x1,
            r.shards,
            r.workers,
            r.step_allocs_per_100_ticks,
            r.compute_imbalance,
        );
    }
    if quick && !stage_parity_gate() {
        return std::process::ExitCode::FAILURE;
    }
    if !quick {
        std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
        eprintln!("wrote BENCH_shard.json");
    }
    std::process::ExitCode::SUCCESS
}
