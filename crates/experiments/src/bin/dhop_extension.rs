//! EXT3 — d-hop clustering: greedy d-hop LID and Max-Min formation vs the
//! disc-bound heuristic, plus dynamic d-hop maintenance rates.

use manet_experiments::dhop_ext::{
    formation_rows, formation_table, maintenance_rates, maintenance_table,
};
use manet_experiments::harness::Scenario;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    let scenario = Scenario::default();
    println!("EXT3 — d-hop cluster formation (N=400, r=150 m), 10 placements\n");
    manet_experiments::emit(
        "ext3_dhop_formation",
        &formation_table(&formation_rows(&scenario, 10)),
    );
    println!("\nEXT3 — d-hop reactive maintenance over 200 s of mobility\n");
    manet_experiments::emit(
        "ext3_dhop_maintenance",
        &maintenance_table(&maintenance_rates(&scenario, 200.0)),
    );
    println!("\nMore hops → fewer, bigger clusters and (typically) fewer cluster");
    println!("changes per node — the trade the paper's future-work section poses.");
    manet_experiments::trace::maybe_trace(
        "dhop_extension",
        &scenario,
        &manet_experiments::harness::Protocol::default(),
    );
}
