//! EXT5 — hybrid data plane: reachability parity, path stretch, discovery
//! cost.

use manet_experiments::dataplane::{stretch_sweep, table};
use manet_experiments::harness::Scenario;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("EXT5 — packet forwarding over the hybrid stack (300 pairs/point)\n");
    manet_experiments::emit(
        "ext5_data_plane",
        &table(&stretch_sweep(&Scenario::default(), 300)),
    );
    println!("\nDelivery equals flat reachability by construction (asserted in-code);");
    println!("the hierarchy's price is the stretch column, its benefit the control");
    println!("overhead comparison of EXT2.");
    manet_experiments::trace::maybe_trace_default("data_plane");
}
