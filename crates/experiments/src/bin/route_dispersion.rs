//! ABL4 — the ROUTE bound with the *measured* cluster-size distribution.

use manet_experiments::ablations::route_dispersion_closure;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("ABL4 — dispersion-weighted ROUTE bound with empirical cluster sizes\n");
    manet_experiments::emit(
        "abl4_route_dispersion",
        &route_dispersion_closure(&Protocol::default(), &[0.10, 0.15, 0.25]),
    );
    println!("\nDecomposition of the FIG1 ROUTE gap (sim / mean-size bound ≈ 4.7):");
    println!("  x2.2  cluster-size dispersion (convex L(m), m-weighted traffic)");
    println!("  x0.55 intra-cluster links are shorter than average, so they break");
    println!("        slower than the mean per-link rate mu (physical-churn column)");
    println!("  x4    membership churn: a member switching clusters moves all its");
    println!("        intra-links between cluster tables at once -- the dominant");
    println!("        term, absent from the paper's physical-link bound.");
    manet_experiments::trace::maybe_trace_default("route_dispersion");
}
