//! Critical-path and shard-imbalance analyzer for the span plane.
//!
//! ```text
//! span_report --quick [--spans-out <t.json>] [--spans-canonical]
//! span_report --check <trace.json>
//! ```
//!
//! `--quick` runs the robustness2 quick chaos scenario (80 nodes, 2x2
//! shards, lossy + stalling interconnect) with a span recorder attached
//! and prints, from the per-(stage, shard) span histograms:
//!
//! - the per-stage wall-clock table with each stage's share of the tick;
//! - the per-shard compute/interconnect totals and their imbalance
//!   (max over mean shard wall time — 1.0 is perfectly balanced);
//! - a critical-path decomposition of the mean tick and the Amdahl
//!   ceiling it implies for the parallel topology stage.
//!
//! The run doubles as a self check (nonzero exit on failure): per-stage
//! span totals must reconcile with the [`manet_telemetry::PhaseProfiler`]
//! within 1%, and two same-seed runs must export byte-identical span
//! dumps on the canonical timebase.
//!
//! `--check <file>` validates a Chrome trace-event JSON file (as written
//! by `--spans-out` on any experiment binary) with the in-house JSON
//! reader: the event array must parse, every event must carry the
//! trace-viewer required fields, and complete events must nest sanely.

use manet_experiments::harness::{Protocol, Scenario, ShardRun};
use manet_experiments::robustness2::ChaosPoint;
use manet_experiments::trace::{spans_out_from_args, trace_run_chaos, TelemetryConfig, TraceRun};
use manet_geom::ShardDims;
use manet_telemetry::{chrome_trace_json, Phase, SpanLabel, SpanRecorder, SpanTimebase};
use manet_util::json::Value;
use manet_util::table::{fmt_sig, Table};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: span_report --check <trace.json>");
            return ExitCode::FAILURE;
        };
        return check(path);
    }
    if args.iter().any(|a| a == "--quick") {
        return quick_report();
    }
    eprintln!("usage: span_report --quick [--spans-out <t.json>] | span_report --check <t.json>");
    ExitCode::FAILURE
}

/// The robustness2 quick chaos scenario: 80 nodes on a 500 m side at
/// 100 m radius, 2x2 shards, 20% interconnect loss with occasional
/// stalls, seed 7. One worker, so the per-shard compute spans serialize
/// and the critical-path accounting is exact.
fn chaos_run(label: &str) -> TraceRun {
    let scenario = Scenario {
        nodes: 80,
        side: 500.0,
        radius: 100.0,
        ..Scenario::default()
    };
    let protocol = Protocol {
        warmup: 10.0,
        measure: 30.0,
        seeds: vec![7],
        dt: 0.5,
    };
    let dims = ShardDims::parse("2x2").expect("static dims");
    let point = ChaosPoint {
        loss_p: 0.2,
        stall_rate: 0.02,
        ..ChaosPoint::ideal()
    };
    let seed = protocol.seeds[0];
    let ticks = ((protocol.warmup + protocol.measure) / protocol.dt).round() as u64;
    let shard_run = ShardRun::new(dims)
        .with_interconnect(point.config(dims, ticks, seed))
        .with_workers(1);
    let config = TelemetryConfig::in_memory(label)
        .with_attribution()
        .with_spans()
        .with_spans_from_args();
    trace_run_chaos(&scenario, &protocol, &config, Some(&shard_run))
        .expect("span-report run cannot fail on IO")
}

fn quick_report() -> ExitCode {
    println!("span_report: sharded chaos run (80 nodes, 2x2 shards, loss 0.2, stalls)");
    let run = chaos_run("span_report");
    let spans = run.spans.as_ref().expect("spans enabled");
    if let Some(path) = spans_out_from_args() {
        println!("span trace -> {}", path.display());
    }

    let ticks = spans.tick().max(1);
    let tick_total = spans
        .hist(SpanLabel::Tick, None)
        .map_or(0.0, |h| h.sum())
        .max(f64::MIN_POSITIVE);

    // Per-stage wall clock, main thread.
    let mut t = Table::new(["stage", "count", "total s", "mean us", "p99 us", "share"]);
    for phase in Phase::ALL {
        let Some(h) = spans.hist(SpanLabel::Stage(phase), None) else {
            continue;
        };
        t.row([
            phase.name().to_string(),
            h.count().to_string(),
            fmt_sig(h.sum(), 4),
            fmt_sig(h.sum() / h.count() as f64 * 1e6, 4),
            fmt_sig(h.quantile(0.99).unwrap_or(0.0) * 1e6, 4),
            format!("{:.1}%", h.sum() / tick_total * 100.0),
        ]);
    }
    println!("\nper-stage spans over {ticks} ticks (tick wall {tick_total:.4} s):");
    print!("{}", t.to_ascii());

    // Per-shard totals and imbalance for every per-shard label.
    let shards = spans.shard_slots().saturating_sub(1);
    println!("\nper-shard spans ({shards} shards; imbalance = max/mean shard wall):");
    let mut t = Table::new(["label", "per-shard totals (s)", "imbalance"]);
    for label in [
        SpanLabel::ShardCompute,
        SpanLabel::ShardHello,
        SpanLabel::ShardCluster,
        SpanLabel::ShardRoute,
        SpanLabel::IcSend,
        SpanLabel::IcDeliver,
    ] {
        let totals: Vec<f64> = (0..shards)
            .map(|s| spans.hist(label, Some(s as u16)).map_or(0.0, |h| h.sum()))
            .collect();
        if totals.iter().all(|&x| x == 0.0) {
            continue;
        }
        t.row([
            label.name().to_string(),
            totals
                .iter()
                .map(|x| fmt_sig(*x, 3))
                .collect::<Vec<_>>()
                .join(" "),
            fmt_sig(imbalance(&totals), 4),
        ]);
    }
    print!("{}", t.to_ascii());

    // Critical-path decomposition of the run's tick wall time. With one
    // worker the shard computes serialize, so the measured topology stage
    // contains flush + merge + the full compute sum; the critical path
    // replaces that sum with the slowest shard (what a worker-per-shard
    // run cannot go below).
    let stage_sum = |p: Phase| {
        spans
            .hist(SpanLabel::Stage(p), None)
            .map_or(0.0, |h| h.sum())
    };
    let per_shard = |label: SpanLabel| -> (f64, f64) {
        let totals: Vec<f64> = (0..shards)
            .map(|s| spans.hist(label, Some(s as u16)).map_or(0.0, |h| h.sum()))
            .collect();
        let sum: f64 = totals.iter().sum();
        (sum, totals.iter().cloned().fold(0.0, f64::max))
    };
    let (compute_sum, compute_max) = per_shard(SpanLabel::ShardCompute);
    // The scoped stage scans (frame-parallel HELLO sweep, cluster
    // contact/break scan, route snapshot scan) are the parallel part of
    // the otherwise serial protocol stages; like the topology compute,
    // the critical path replaces each sum with its slowest shard.
    let (scan_sum, scan_max) = [
        SpanLabel::ShardHello,
        SpanLabel::ShardCluster,
        SpanLabel::ShardRoute,
    ]
    .iter()
    .map(|&l| per_shard(l))
    .fold((0.0, 0.0), |(s, m), (s2, m2)| (s + s2, m + m2));
    let serial_stages: f64 = Phase::TICK
        .iter()
        .filter(|&&p| p != Phase::Topology)
        .map(|&p| stage_sum(p))
        .sum();
    let serial_rest = (serial_stages - scan_sum).max(0.0);
    let flush = stage_sum(Phase::ShardFlush);
    let merge = stage_sum(Phase::ShardMerge);
    let topo_overhead = (stage_sum(Phase::Topology) - flush - merge - compute_sum).max(0.0);
    let critical = serial_rest + flush + merge + topo_overhead + compute_max + scan_max;
    println!("\ncritical path (mean per tick, us):");
    let mut t = Table::new(["component", "us/tick", "share"]);
    for (name, v) in [
        ("serial stage work (minus scoped scans)", serial_rest),
        ("slowest-shard stage scans (hello+cluster+route)", scan_max),
        ("shard flush (interconnect)", flush),
        ("shard merge + reconcile", merge),
        ("topology overhead (spawn/join, diff)", topo_overhead),
        ("slowest shard compute", compute_max),
    ] {
        t.row([
            name.to_string(),
            fmt_sig(v / ticks as f64 * 1e6, 4),
            format!("{:.1}%", v / critical * 100.0),
        ]);
    }
    t.row([
        "critical path".to_string(),
        fmt_sig(critical / ticks as f64 * 1e6, 4),
        "100%".to_string(),
    ]);
    print!("{}", t.to_ascii());

    // Amdahl: the topology compute plus the scoped stage scans are the
    // parallelizable part of the tick.
    let par = compute_sum + scan_sum;
    let serial = (tick_total - par).max(f64::MIN_POSITIVE);
    println!(
        "\nAmdahl (parallel fraction = shard compute {:.1}% + stage scans {:.1}% of tick):",
        compute_sum / tick_total * 100.0,
        scan_sum / tick_total * 100.0
    );
    println!(
        "  speedup ceiling (infinite workers): {:.3}x",
        tick_total / serial
    );
    println!(
        "  at {} balanced shards: {:.3}x; at the observed imbalance: {:.3}x",
        shards.max(1),
        tick_total / (serial + par / shards.max(1) as f64),
        tick_total / (serial + compute_max + scan_max)
    );

    let mut ok = true;

    // Gate 1: span totals reconcile with the phase profiler within 1%.
    for phase in Phase::ALL {
        let span_total = stage_sum(phase);
        let prof_total = run.profile.get(phase).map_or(0.0, |s| s.total);
        if prof_total == 0.0 && span_total == 0.0 {
            continue;
        }
        let err = (span_total - prof_total).abs() / prof_total.max(f64::MIN_POSITIVE);
        if err > 0.01 {
            println!(
                "CHECK FAIL: {} span total {span_total:.6} vs profiler {prof_total:.6} ({:.2}% off)",
                phase.name(),
                err * 100.0
            );
            ok = false;
        }
    }
    if ok {
        println!("\ncheck: span totals reconcile with the phase profiler within 1%");
    }

    // Gate 2: same seed, byte-identical canonical span dump.
    let twin = chaos_run("span_report");
    let dump_a = canonical_dump(spans);
    let dump_b = canonical_dump(twin.spans.as_ref().expect("spans enabled"));
    if dump_a == dump_b {
        println!("check: canonical span dump is byte-identical across same-seed runs");
    } else {
        println!("CHECK FAIL: same-seed canonical span dumps differ");
        ok = false;
    }

    // Gate 3: the exported trace round-trips through the JSON reader.
    match validate_trace(&dump_a) {
        Ok(stats) => println!(
            "check: canonical dump parses as a Chrome trace ({} spans on {} threads)",
            stats.complete, stats.tids
        ),
        Err(e) => {
            println!("CHECK FAIL: canonical dump invalid: {e}");
            ok = false;
        }
    }

    if ok {
        println!("span_report OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn canonical_dump(spans: &SpanRecorder) -> String {
    chrome_trace_json(spans, SpanTimebase::Canonical)
}

/// Max-over-mean of per-shard wall totals; 1.0 when perfectly balanced.
fn imbalance(totals: &[f64]) -> f64 {
    let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    totals.iter().cloned().fold(0.0, f64::max) / mean
}

struct TraceStats {
    complete: usize,
    tids: usize,
}

/// Validates Chrome trace-event JSON with the in-house reader: the file
/// must parse, `traceEvents` must be an array, and every event must carry
/// the fields the trace viewer requires (`ph`, `name`, `pid`, `tid`,
/// `ts`; `dur` on complete events).
fn validate_trace(text: &str) -> Result<TraceStats, String> {
    let root = Value::parse(text).map_err(|e| format!("parse: {e:?}"))?;
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut complete = 0usize;
    let mut tids = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["name", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("event {i}: missing {key}"));
            }
        }
        let tid = e
            .get("tid")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("event {i}: non-integer tid"))?;
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        match ph {
            "X" => {
                let ts = e
                    .get("ts")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                let dur = e
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i}: complete event without dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                complete += 1;
            }
            "M" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    if complete == 0 {
        return Err("no complete (ph=X) span events".to_string());
    }
    Ok(TraceStats {
        complete,
        tids: tids.len(),
    })
}

fn check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("CHECK FAIL: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text) {
        Ok(stats) => {
            println!(
                "{path}: valid Chrome trace ({} span events on {} threads)",
                stats.complete, stats.tids
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("CHECK FAIL: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
