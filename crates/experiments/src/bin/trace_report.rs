//! Summarizes JSONL telemetry traces written via `--trace-out`.
//!
//! ```text
//! trace_report <trace.jsonl>...   # summarize existing trace files
//! trace_report --smoke            # self-check: run, write, re-read, reconcile
//! ```
//!
//! For each trace the report prints the run metadata, the estimated warmup
//! time (first window whose CLUSTER rate is within 10% of the steady
//! state), per-class steady-state rates, churn totals, and the tick-phase
//! profile when the trace carries one. Traces recorded with attribution
//! enabled (any event carrying a cause) additionally get the root-cause
//! ledger breakdown and the measured-vs-analytic unit-cost table.

use manet_experiments::harness::{Protocol, Scenario};
use manet_experiments::trace::{attribution_text, report_text, trace_run, TelemetryConfig};
use manet_sim::MessageKind;
use manet_telemetry::{read_trace, AttributionLedger, MsgClass, Trace};
use std::process::ExitCode;

/// Replays the ledger over a trace when any of its events carries a
/// cause, and renders the attribution section; empty otherwise.
fn attribution_section(trace: &Trace, replayed: &manet_telemetry::WindowedRecorder) -> String {
    if !trace.events.iter().any(|e| e.cause.is_some()) {
        return String::new();
    }
    let ledger = AttributionLedger::replay(&trace.events);
    let nodes = trace.meta.as_ref().map_or(0, |m| m.nodes);
    attribution_text(&ledger, replayed, nodes)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return smoke();
    }
    if args.is_empty() {
        eprintln!("usage: trace_report <trace.jsonl>... | trace_report --smoke");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &args {
        println!("== {path} ==");
        match read_trace(path) {
            Ok(trace) => {
                let window = trace.meta.as_ref().map_or(5.0, |m| m.window);
                let recorder = trace.replay(window);
                print!(
                    "{}",
                    report_text(trace.meta.as_ref(), &recorder, trace.profile.as_ref())
                );
                print!("{}", attribution_section(&trace, &recorder));
            }
            Err(e) => {
                println!("unreadable: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// End-to-end self check used by `scripts/verify.sh`: run a short traced
/// scenario, write the JSONL, read it back, and reconcile the replayed
/// window sums against the run's final counters.
fn smoke() -> ExitCode {
    let scenario = Scenario {
        nodes: 80,
        side: 500.0,
        radius: 100.0,
        ..Scenario::default()
    };
    let protocol = Protocol {
        warmup: 10.0,
        measure: 30.0,
        seeds: vec![7],
        dt: 0.5,
    };
    let path = manet_experiments::figures_dir().join("trace_smoke.jsonl");
    let config = TelemetryConfig::to_file("trace_smoke", path.clone());
    let run = match trace_run(&scenario, &protocol, &config) {
        Ok(run) => run,
        Err(e) => {
            println!("SMOKE FAIL: traced run errored: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match read_trace(&path) {
        Ok(trace) => trace,
        Err(e) => {
            println!("SMOKE FAIL: written trace unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replayed = trace.replay(run.meta.window);
    let mut ok = true;
    for (class, kind) in [
        (MsgClass::Hello, MessageKind::Hello),
        (MsgClass::Cluster, MessageKind::Cluster),
        (MsgClass::Route, MessageKind::Route),
    ] {
        let from_trace = replayed.total_msgs(class);
        let from_counters = run.counters.messages(kind);
        if from_trace != from_counters {
            println!(
                "SMOKE FAIL: {} trace total {from_trace} != counters {from_counters}",
                class.name()
            );
            ok = false;
        }
    }
    if trace.meta.is_none() {
        println!("SMOKE FAIL: meta line missing");
        ok = false;
    }
    if trace.profile.is_none() {
        println!("SMOKE FAIL: profile line missing");
        ok = false;
    }
    if !run.counters.bytes_consistent() {
        println!("SMOKE FAIL: counters byte totals inconsistent with size table");
        ok = false;
    }
    // Attributed twin: same scenario with cause tracking on. The ledger
    // replayed from the written JSONL must agree with the live one, and
    // both must reconcile exactly with the shared counters.
    let attr_path = manet_experiments::figures_dir().join("trace_smoke_attr.jsonl");
    let attr_config =
        TelemetryConfig::to_file("trace_smoke_attr", attr_path.clone()).with_attribution();
    match (
        trace_run(&scenario, &protocol, &attr_config),
        read_trace(&attr_path),
    ) {
        (Ok(arun), Ok(atrace)) => {
            let attr = arun.attribution.as_ref().expect("attribution was enabled");
            let replayed_ledger = AttributionLedger::replay(&atrace.events);
            for (class, kind) in [
                (MsgClass::Hello, MessageKind::Hello),
                (MsgClass::Cluster, MessageKind::Cluster),
                (MsgClass::Route, MessageKind::Route),
            ] {
                let live = attr.ledger.attributed_total(class);
                let from_trace = replayed_ledger.attributed_total(class);
                let from_counters = arun.counters.messages(kind);
                if live != from_counters || from_trace != from_counters {
                    println!(
                        "SMOKE FAIL: {} attributed live {live} / replay {from_trace} != counters {from_counters}",
                        class.name()
                    );
                    ok = false;
                }
            }
            if !replayed_ledger.unanchored_chains().is_empty() {
                println!("SMOKE FAIL: replayed ledger has unanchored chains");
                ok = false;
            }
            if !attr.audit.is_clean() {
                println!("SMOKE FAIL: audit violations: {:?}", attr.audit.violations);
                ok = false;
            }
            print!(
                "{}",
                attribution_section(&atrace, &atrace.replay(run.meta.window))
            );
        }
        (Err(e), _) => {
            println!("SMOKE FAIL: attributed run errored: {e}");
            ok = false;
        }
        (_, Err(e)) => {
            println!("SMOKE FAIL: attributed trace unreadable: {e}");
            ok = false;
        }
    }
    print!(
        "{}",
        report_text(trace.meta.as_ref(), &replayed, trace.profile.as_ref())
    );
    if ok {
        println!(
            "SMOKE OK: {} reconciles with final counters",
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
