//! ABL3 — mobility-model sensitivity of the link dynamics.

use manet_experiments::ablations::mobility_sensitivity;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("ABL3 — link dynamics under four mobility models (paper §3.2 claim)\n");
    manet_experiments::emit("abl3_mobility", &mobility_sensitivity(&Protocol::default()));
    println!("epoch-RD and CV should match Claim 2; RWP and random-walk deviate,");
    println!("which is why the paper analyzes (B)CV instead.");
    manet_experiments::trace::maybe_trace_default("mobility_sensitivity");
}
