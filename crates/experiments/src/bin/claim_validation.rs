//! Validates Claim 1 (expected degree) and Claim 2 (link change rate).

use manet_experiments::claims;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("CLAIM1 — expected degree: Monte Carlo vs Eqn 1 (N = 400)\n");
    manet_experiments::emit("claim1_degree", &claims::claim1_table(&claims::claim1(50)));
    println!("\nCLAIM2 — link change rate on the CV torus vs 16dv/(pi^2 r)\n");
    manet_experiments::emit("claim2_rate", &claims::claim2_table(&claims::claim2(300.0)));
    println!("\nBCV — the paper's analysis model, literally: CV on a 3 km torus");
    println!("observed through a central 1 km window (border effects live)\n");
    manet_experiments::emit(
        "claim_bcv_window",
        &claims::bcv_table(&claims::bcv_window(3000.0, 300.0)),
    );
    manet_experiments::trace::maybe_trace_default("claim_validation");
}
