//! EXT1 — the overhead model is parametric in P: other clustering policies.

use manet_experiments::ablations::generic_p_extension;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("EXT1 — generic one-hop policies through the same closed forms\n");
    manet_experiments::emit("ext1_generic_p", &generic_p_extension(&Protocol::default()));
    manet_experiments::trace::maybe_trace_default("generic_p_extension");
}
