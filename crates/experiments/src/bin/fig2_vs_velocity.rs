//! Reproduces Figure 2: control message frequencies vs node speed.

use manet_experiments::figures::fig2;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("FIG2 — control message frequencies vs v (paper Figure 2)");
    println!("fixed: N=400, a=1000 m, r=150 m, epoch-RD mobility; P measured live\n");
    let fig = fig2(&Protocol::default());
    manet_experiments::emit("fig2_vs_velocity", &fig.table());
    let (h, c, r) = fig.agreement();
    println!("RMS relative error (sim vs analysis): hello {h:.3}  cluster {c:.3}  route {r:.3}");
    manet_experiments::trace::maybe_trace_default("fig2_vs_velocity");
}
