//! ROB1 — measured overhead under loss and churn vs the paper's ideal
//! lower bounds.

use manet_experiments::harness::{Protocol, Scenario};
use manet_experiments::robustness::{burst_row_sharded, sweep_loss_sharded, table};
use manet_experiments::trace::init_shards_from_args;

fn main() {
    let scenario = Scenario::default();
    let protocol = Protocol::default();
    let shards = init_shards_from_args();

    println!("ROB1 — fault plane: Bernoulli loss sweep, no churn (N=400)\n");
    let mut rows = sweep_loss_sharded(&scenario, &protocol, &[0.0, 0.05, 0.1, 0.2], 0.0, shards);
    manet_experiments::emit("rob1_loss_sweep", &table(&rows));

    println!("\nROB1b — same loss sweep with churn (crash rate 0.002/s, 20 s downtime)\n");
    let churned = sweep_loss_sharded(&scenario, &protocol, &[0.0, 0.05, 0.1, 0.2], 0.002, shards);
    manet_experiments::emit("rob1_loss_churn_sweep", &table(&churned));

    println!("\nROB1c — burst loss (Gilbert–Elliott) at matched stationary loss\n");
    rows.truncate(0);
    for p in [0.05, 0.1, 0.2] {
        rows.push(burst_row_sharded(&scenario, &protocol, p, 0.0, shards));
    }
    manet_experiments::emit("rob1_burst_loss", &table(&rows));

    println!("\nThe paper's Eqns 4–13 are delivery-assuming lower bounds; the");
    println!("measured total tracks them at p = 0 and rises with loss and churn");
    println!("as retransmissions, repair traffic, and route re-syncs are paid.");
    println!("'viol end' is the P1/P2 violation count after a quiescence window —");
    println!("zero means the self-healing maintenance fully restored the clusters.");
    manet_experiments::trace::maybe_trace("robustness", &scenario, &protocol);
}
