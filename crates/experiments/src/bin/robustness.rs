//! ROB1 — measured overhead under loss and churn vs the paper's ideal
//! lower bounds.
//!
//! A thin CLI wrapper over [`run_scenario`]: each of the three sweeps is
//! one `{"kind":"robustness"}` spec, so `manet serve-jobs` reproduces
//! the exact same rows.

use manet_experiments::cli::BinArgs;
use manet_experiments::robustness::table;
use manet_experiments::spec::{run_scenario, FaultSpec, ScenarioOutput, ScenarioSpec, SpecKind};

fn rows(spec: &ScenarioSpec) -> Vec<manet_experiments::robustness::RobustnessRow> {
    let out = run_scenario(spec, None).expect("robustness spec is valid and uncancelled");
    let ScenarioOutput::Robustness(rows) = out else {
        unreachable!("robustness specs produce rows");
    };
    rows
}

fn main() {
    let args = BinArgs::init("robustness");
    let base = args.spec(SpecKind::Robustness);

    println!("ROB1 — fault plane: Bernoulli loss sweep, no churn (N=400)\n");
    manet_experiments::emit("rob1_loss_sweep", &table(&rows(&base)));

    println!("\nROB1b — same loss sweep with churn (crash rate 0.002/s, 20 s downtime)\n");
    let churned = ScenarioSpec {
        fault: Some(FaultSpec {
            crash_rate: 0.002,
            ..FaultSpec::default()
        }),
        ..base.clone()
    };
    manet_experiments::emit("rob1_loss_churn_sweep", &table(&rows(&churned)));

    println!("\nROB1c — burst loss (Gilbert–Elliott) at matched stationary loss\n");
    let burst = ScenarioSpec {
        fault: Some(FaultSpec {
            loss: vec![0.05, 0.1, 0.2],
            burst: true,
            ..FaultSpec::default()
        }),
        ..base.clone()
    };
    manet_experiments::emit("rob1_burst_loss", &table(&rows(&burst)));

    println!("\nThe paper's Eqns 4–13 are delivery-assuming lower bounds; the");
    println!("measured total tracks them at p = 0 and rises with loss and churn");
    println!("as retransmissions, repair traffic, and route re-syncs are paid.");
    println!("'viol end' is the P1/P2 violation count after a quiescence window —");
    println!("zero means the self-healing maintenance fully restored the clusters.");
    args.finish(&base.scenario(), &base.protocol());
}
