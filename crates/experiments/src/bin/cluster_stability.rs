//! EXT6 — cluster stability: head lifetimes, membership residence, role
//! churn, with the Claim 2 link-lifetime companion.

use manet_experiments::harness::Scenario;
use manet_experiments::stability::{lid_speed_sweep, policy_comparison, policy_table, speed_table};

fn main() {
    manet_experiments::trace::init_shards_from_args();
    let scenario = Scenario::default();
    println!("EXT6 — stability vs speed (LID, N=400, r=150 m)\n");
    manet_experiments::emit(
        "ext6_stability_speed",
        &speed_table(&lid_speed_sweep(&scenario, 300.0)),
    );
    println!("\nEXT6 — stability by policy at v=10 m/s\n");
    manet_experiments::emit(
        "ext6_stability_policy",
        &policy_table(&policy_comparison(&scenario, 300.0)),
    );
    println!("\nEXT7 — mobility-aware election on a heterogeneous fleet (v in [1,19] m/s)\n");
    manet_experiments::emit(
        "ext7_mobility_aware",
        &manet_experiments::stability::mobility_aware_comparison(300.0),
    );
    println!("\nMean link lifetime tracks Claim 2's implied pi^2*r/(8v). Head lifetimes");
    println!("are shorter than link lifetimes: a head role ends on the FIRST of many");
    println!("competing events (any head contact), a union of failure modes.");
    manet_experiments::trace::maybe_trace(
        "cluster_stability",
        &scenario,
        &manet_experiments::harness::Protocol::default(),
    );
}
