//! Reproduces Figure 5: number of clusters vs network size (5a) and vs
//! transmission range (5b), LID formation simulation vs analysis.

use manet_experiments::lid_figures::{fig5_table, fig5a, fig5b};

fn main() {
    let reps = 30;
    println!("FIG5a — cluster count vs N (r = 0.165a), {reps} replications\n");
    manet_experiments::emit("fig5a_vs_n", &fig5_table("N", &fig5a(reps)));
    println!("\nFIG5b — cluster count vs r/a (N = 400), {reps} replications\n");
    manet_experiments::emit("fig5b_vs_r", &fig5_table("r/a", &fig5b(reps)));
    println!("\nNote: the paper's Eqn 18 overestimates true LID cluster counts;");
    println!("the Caro-Wei column is this reproduction's first-round lower bound.");
    println!("See EXPERIMENTS.md for the discussion.");
    manet_experiments::trace::maybe_trace_default("fig5_cluster_count");
}
