//! EXT4 — HELLO beacon rate vs neighbor-view accuracy (paper §3.5.1).

use manet_experiments::harness::Scenario;
use manet_experiments::hello_accuracy::{sweep, table};

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("EXT4 — soft-timer neighbor views vs beacon interval (N=400, v=10 m/s)\n");
    manet_experiments::emit(
        "ext4_hello_accuracy",
        &table(&sweep(&Scenario::default(), 200.0)),
    );
    println!("\nOnce the beacon rate drops below the per-node link generation rate");
    println!("(the paper's f_hello lower bound), the protocol's view of the");
    println!("neighborhood visibly decays — missing and stale fractions climb.");
    manet_experiments::trace::maybe_trace_default("hello_accuracy");
}
