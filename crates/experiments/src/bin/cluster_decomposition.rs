//! ABL1 — CLUSTER traffic decomposition and head-contact counting
//! conventions.

use manet_experiments::ablations::cluster_decomposition;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("ABL1 — CLUSTER decomposition: break vs contact, PerPair vs PerEndpoint\n");
    manet_experiments::emit(
        "abl1_cluster_decomposition",
        &cluster_decomposition(&Protocol::default()),
    );
    println!("The simulation's contact column should track the PerPair convention");
    println!("(the paper's literal Eqn 10 reading, PerEndpoint, is 2x).");
    manet_experiments::trace::maybe_trace_default("cluster_decomposition");
}
