//! ABL2 — intra-cluster link models for the ROUTE bound.

use manet_experiments::ablations::route_model_ablation;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("ABL2 — ROUTE frequency: member+member (κ) vs member-head-only models\n");
    manet_experiments::emit(
        "abl2_route_model",
        &route_model_ablation(&Protocol::default()),
    );
    println!("The κ model should track simulation; the star-only model misses the");
    println!("member-member churn and undershoots at large ranges.");
    manet_experiments::trace::maybe_trace_default("route_model_ablation");
}
