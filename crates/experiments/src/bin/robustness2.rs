//! ROB2 — the sharded stack under interconnect chaos: loss × stall ×
//! staleness-bound sweep against the ideal (fault-free) interconnect.
//!
//! ```text
//! robustness2              # full sweep, default 400-node scenario, 2x2
//! robustness2 --quick      # short 80-node run gating the interconnect
//!                          # fault plane (used by scripts/verify.sh):
//!                          # ideal parity vs monolithic, chaos determinism
//!                          # across worker counts, clean audit, anchored
//!                          # InterconnectFault chains
//! robustness2 --shards KXxKY   # override the sweep's shard layout
//! ```
//!
//! Exits non-zero when any gate fails.

use manet_experiments::harness::{Protocol, Scenario};
use manet_experiments::robustness2::{chaos_trace, summarize, sweep_chaos, table, ChaosPoint};
use manet_experiments::trace::{init_serve_from_args, init_shards_from_args};
use manet_geom::ShardDims;
use manet_telemetry::MsgClass;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Bind the live /metrics endpoint first (no-op without the flag) so
    // every chaos run below streams its windows there; the guard honors
    // --serve-hold on exit.
    let _serve = init_serve_from_args();
    let shards = init_shards_from_args();
    let dims = shards.unwrap_or_else(|| ShardDims::parse("2x2").expect("2x2 parses"));
    let quick = std::env::args().any(|a| a == "--quick");
    let (scenario, protocol) = if quick {
        (
            Scenario {
                nodes: 80,
                side: 500.0,
                radius: 100.0,
                ..Scenario::default()
            },
            Protocol {
                warmup: 10.0,
                measure: 30.0,
                seeds: vec![7],
                dt: 0.5,
            },
        )
    } else {
        (Scenario::default(), Protocol::default())
    };
    println!(
        "ROB2 — interconnect chaos on a {}x{} sharded stack (N={}, seed {})\n",
        dims.kx,
        dims.ky,
        scenario.nodes,
        protocol.seeds.first().copied().unwrap_or(1),
    );

    if quick {
        return quick_gates(&scenario, &protocol, dims);
    }

    let rows = sweep_chaos(&scenario, &protocol, dims);
    manet_experiments::emit("rob2_interconnect_chaos", &table(&rows));
    println!("\nThe ideal row is bit-identical to the monolithic stack; every other");
    println!("delta is attributable to injected interconnect faults. Stale ghost");
    println!("views beyond the staleness bound drop boundary links conservatively,");
    println!("so chaos shows up as link churn answered by CLUSTER/ROUTE repair.");
    if rows.iter().all(|r| r.audit_clean && r.anchored) {
        ExitCode::SUCCESS
    } else {
        println!("\nROB2 FAIL: an audit or anchoring violation occurred (see table)");
        ExitCode::FAILURE
    }
}

/// The verify.sh smoke: parity, determinism, audit, and anchoring gates.
fn quick_gates(scenario: &Scenario, protocol: &Protocol, dims: ShardDims) -> ExitCode {
    let mut ok = true;
    let mut gate = |name: &str, pass: bool, detail: String| {
        println!(
            "gate {:<34} {} {}",
            name,
            if pass { "PASS" } else { "FAIL" },
            detail
        );
        ok &= pass;
    };

    // Gate 1: the ideal interconnect is pass-through — the sharded stack
    // with chaos machinery enabled matches the monolithic stack window
    // for window and message for message.
    let ideal = ChaosPoint::ideal();
    let sharded = chaos_trace(scenario, protocol, dims, &ideal, Some(3));
    let mono = chaos_trace(
        scenario,
        protocol,
        ShardDims::parse("1x1").unwrap(),
        &ideal,
        Some(1),
    );
    gate(
        "ideal-parity-windows",
        sharded.recorder.windows() == mono.recorder.windows(),
        format!(
            "{} vs {} windows",
            sharded.recorder.windows().len(),
            mono.recorder.windows().len()
        ),
    );
    for class in [MsgClass::Hello, MsgClass::Cluster, MsgClass::Route] {
        let (s, m) = (
            sharded.recorder.total_msgs(class),
            mono.recorder.total_msgs(class),
        );
        gate(
            &format!("ideal-parity-{}", class.name()),
            s == m,
            format!("sharded {s} vs monolithic {m}"),
        );
    }
    let ideal_row = summarize(&ideal, &sharded);
    gate(
        "ideal-no-fault-traffic",
        ideal_row.lost == 0
            && ideal_row.stalls == 0
            && ideal_row.stale_drops == 0
            && ideal_row.fault_events == 0,
        format!(
            "lost {} stalls {} stale drops {} fault events {}",
            ideal_row.lost, ideal_row.stalls, ideal_row.stale_drops, ideal_row.fault_events
        ),
    );

    // Gate 2: chaos is deterministic and worker-count invariant — the same
    // seeded fault plan yields identical telemetry at 1 and 3 workers.
    let point = ChaosPoint {
        loss_p: 0.2,
        stall_rate: 0.02,
        ..ChaosPoint::ideal()
    };
    let w1 = chaos_trace(scenario, protocol, dims, &point, Some(1));
    let w3 = chaos_trace(scenario, protocol, dims, &point, Some(3));
    gate(
        "chaos-worker-invariant",
        w1.recorder.windows() == w3.recorder.windows(),
        "recorder windows at 1 vs 3 workers".to_string(),
    );
    let row = summarize(&point, &w3);
    let row1 = summarize(&point, &w1);
    gate(
        "chaos-counters-deterministic",
        (row.lost, row.stalls, row.stale_drops, row.recoveries)
            == (row1.lost, row1.stalls, row1.stale_drops, row1.recoveries),
        format!(
            "lost {} stalls {} stale drops {} recoveries {}",
            row.lost, row.stalls, row.stale_drops, row.recoveries
        ),
    );

    // Gate 3: the fault plane actually fired and every degradation traced.
    gate(
        "chaos-faults-injected",
        row.lost > 0 && row.fault_events > 0,
        format!("{} lost, {} fault root events", row.lost, row.fault_events),
    );
    gate(
        "audit-clean",
        ideal_row.audit_clean && row.audit_clean,
        "runtime invariants hold under chaos".to_string(),
    );
    gate(
        "interconnect-chains-anchored",
        ideal_row.anchored && row.anchored,
        "every InterconnectFault cause resolves in the ledger".to_string(),
    );

    if ok {
        println!("ROB2 OK");
        ExitCode::SUCCESS
    } else {
        println!("ROB2 FAIL");
        ExitCode::FAILURE
    }
}
