//! Engine validation: link-event detection converges as the tick shrinks.

use manet_experiments::convergence::{table, tick_convergence};

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("VALIDATION — tick-size convergence of the link-event engine\n");
    manet_experiments::emit("tick_convergence", &table(&tick_convergence(300.0)));
    println!("Coarse ticks miss links that form and break within one tick;");
    println!("the default dt = 0.25 s sits in the converged regime.");
    manet_experiments::trace::maybe_trace_default("tick_convergence");
}
