//! ABL5 — epoch-length sensitivity of the CV-based analysis.

use manet_experiments::ablations::epoch_sensitivity;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("ABL5 — does the analysis care about the direction-redraw epoch tau?\n");
    manet_experiments::emit("abl5_epoch", &epoch_sensitivity(&Protocol::default()));
    println!("\nResult: the CV closed forms are tau-INVARIANT (ratio = 1.00 from");
    println!("tau = 0.1 link lifetimes up to 5+): the link-generation flux depends");
    println!("only on the instantaneous relative-speed distribution, which the");
    println!("epoch model preserves at every tau. The paper's choice of epoch");
    println!("length is therefore immaterial to its Figures 1-3.");
    manet_experiments::trace::maybe_trace_default("epoch_sensitivity");
}
