//! Reproduces Figure 1: control message frequencies vs transmission range.

use manet_experiments::figures::fig1;
use manet_experiments::harness::Protocol;

fn main() {
    manet_experiments::trace::init_shards_from_args();
    println!("FIG1 — control message frequencies vs r (paper Figure 1)");
    println!("fixed: N=400, a=1000 m, v=10 m/s, epoch-RD mobility; P measured live\n");
    let fig = fig1(&Protocol::default());
    manet_experiments::emit("fig1_vs_range", &fig.table());
    let (h, c, r) = fig.agreement();
    println!("RMS relative error (sim vs analysis): hello {h:.3}  cluster {c:.3}  route {r:.3}");
    manet_experiments::trace::maybe_trace_default("fig1_vs_range");
}
