//! Reproduces Figure 1: control message frequencies vs transmission range.
//!
//! A thin CLI wrapper over [`run_scenario`]: the same
//! `{"kind":"fig1_vs_range"}` spec submitted to `manet serve-jobs`
//! produces the same sweep numbers (pinned by `tests/jobs_plane.rs`).

use manet_experiments::cli::BinArgs;
use manet_experiments::spec::{run_scenario, ScenarioOutput, SpecKind};

fn main() {
    let args = BinArgs::init("fig1_vs_range");
    println!("FIG1 — control message frequencies vs r (paper Figure 1)");
    println!("fixed: N=400, a=1000 m, v=10 m/s, epoch-RD mobility; P measured live\n");
    let spec = args.spec(SpecKind::Fig1VsRange);
    let out = run_scenario(&spec, None).expect("default fig1 spec is valid and uncancelled");
    let ScenarioOutput::Figure(fig) = out else {
        unreachable!("fig1 specs produce figures");
    };
    manet_experiments::emit("fig1_vs_range", &fig.table());
    let (h, c, r) = fig.agreement();
    println!("RMS relative error (sim vs analysis): hello {h:.3}  cluster {c:.3}  route {r:.3}");
    args.finish(&spec.scenario(), &spec.protocol());
}
