//! Reproduces Figure 4: the Eqn 16 residual (4a) and the quality of the
//! 1/sqrt(d+1) approximation (4b).

use manet_experiments::lid_figures::{fig4, fig4_table};

fn main() {
    println!("FIG4 — LID head-ratio equation: residual and approximation (paper Figure 4)\n");
    let rows = fig4();
    manet_experiments::emit("fig4_lid_p_approx", &fig4_table(&rows));
    let worst = rows
        .iter()
        .skip(5)
        .map(|r| ((r.p_exact - r.p_approx).abs() / r.p_exact * 100.0).abs())
        .fold(0.0f64, f64::max);
    println!("worst Eqn17-vs-Eqn16 deviation for d+1 > 12: {worst:.2}%");
    manet_experiments::trace::maybe_trace_default("fig4_lid_p_approx");
}
