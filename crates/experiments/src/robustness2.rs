//! ROB2 — interconnect chaos: the sharded stack under a fallible shard
//! interconnect.
//!
//! ROB1 injects faults into the *protocol* channels (HELLO/CLUSTER/ROUTE
//! messages between nodes). This experiment injects them one layer down,
//! into the *infrastructure*: the shard-to-shard interconnect that carries
//! ghost-row syncs and ownership migrations (`manet-shard::interconnect`).
//! A seeded loss model drops whole `GhostSync` batches and `Migrate`
//! messages per directed shard link, and a stall schedule freezes shards
//! for runs of ticks. The consuming shard degrades gracefully — stale
//! ghost views up to a staleness bound, conservative link drops beyond it,
//! capped-backoff migration retries — and every degradation is traced
//! under `RootCause::InterconnectFault`.
//!
//! The sweep measures what infrastructure chaos does to the *observed*
//! protocol overhead: stale or dropped boundary links register as link
//! churn, which the stack answers with CLUSTER/ROUTE traffic. The ideal
//! row (`p = 0`, no stalls) is byte-identical to the monolithic stack —
//! the chaos machinery is provably pass-through — so every delta in the
//! table is attributable to the injected faults alone. Runs are
//! deterministic in the seed and invariant to the worker count (the
//! `--quick` gates pin both).

use crate::harness::{Protocol, Scenario, ShardRun};
use crate::trace::{trace_run_chaos, TelemetryConfig, TraceRun};
use manet_geom::ShardDims;
use manet_shard::InterconnectConfig;
use manet_sim::{LossModel, StallSchedule};
use manet_telemetry::{MsgClass, RootCause};
use manet_util::table::{fmt_sig, Table};

/// One chaos setting: loss probability × stall rate × staleness bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// Per-message interconnect loss probability (Bernoulli, per link).
    pub loss_p: f64,
    /// Per-shard stall rate, stalls per up-tick (`0` = never).
    pub stall_rate: f64,
    /// Mean stall length, ticks.
    pub mean_stall: f64,
    /// Ghost-view staleness bound, ticks.
    pub max_staleness: u64,
}

impl ChaosPoint {
    /// The ideal interconnect (the parity baseline).
    pub fn ideal() -> Self {
        ChaosPoint {
            loss_p: 0.0,
            stall_rate: 0.0,
            mean_stall: 3.0,
            max_staleness: 4,
        }
    }

    /// Whether this point injects no faults at all.
    pub fn is_ideal(&self) -> bool {
        self.loss_p == 0.0 && self.stall_rate == 0.0
    }

    /// Realizes the point as an [`InterconnectConfig`] for `dims` over a
    /// run of `ticks`, seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rates; sweep points are constructed in code.
    pub fn config(&self, dims: ShardDims, ticks: u64, seed: u64) -> InterconnectConfig {
        let stall = StallSchedule::poisson(
            dims.count(),
            self.stall_rate,
            self.mean_stall,
            ticks + 2,
            seed ^ 0x57A11,
        )
        .expect("stall rates validated by construction");
        InterconnectConfig {
            loss: LossModel::Bernoulli { p: self.loss_p },
            stall,
            seed: seed ^ 0x1C0_77EC7,
            max_ghost_staleness: self.max_staleness,
            ..InterconnectConfig::default()
        }
    }
}

/// Measured outcome of one chaos run.
#[derive(Debug)]
pub struct ChaosRow {
    /// The injected setting.
    pub point: ChaosPoint,
    /// Interconnect messages (batches) lost.
    pub lost: u64,
    /// Shard-stall onsets observed.
    pub stalls: u64,
    /// Ghost rows dropped after exceeding the staleness bound.
    pub stale_drops: u64,
    /// Link recoveries (first delivery after one or more misses).
    pub recoveries: u64,
    /// Root events recorded under `RootCause::InterconnectFault`.
    pub fault_events: u64,
    /// CLUSTER msgs/node/s over the traced run.
    pub f_cluster: f64,
    /// ROUTE msgs/node/s over the traced run.
    pub f_route: f64,
    /// Runtime audit verdict.
    pub audit_clean: bool,
    /// Whether every causal chain anchored to a recorded root event.
    pub anchored: bool,
}

/// Runs one chaos point on the sharded stack with full attribution.
///
/// # Panics
///
/// Panics when `dims` is too fine for the scenario radius or a rate is
/// out of range; sweeps construct both in code.
pub fn measure_chaos(
    scenario: &Scenario,
    protocol: &Protocol,
    dims: ShardDims,
    point: &ChaosPoint,
    workers: Option<usize>,
) -> ChaosRow {
    let run = chaos_trace(scenario, protocol, dims, point, workers);
    summarize(point, &run)
}

/// The raw traced run behind [`measure_chaos`], for callers that also
/// want the counters or recorder (the determinism gates compare them).
pub fn chaos_trace(
    scenario: &Scenario,
    protocol: &Protocol,
    dims: ShardDims,
    point: &ChaosPoint,
    workers: Option<usize>,
) -> TraceRun {
    let seed = protocol.seeds.first().copied().unwrap_or(1);
    let ticks = ((protocol.warmup + protocol.measure) / protocol.dt).round() as u64;
    let mut shard_run = ShardRun::new(dims).with_interconnect(point.config(dims, ticks, seed));
    if let Some(w) = workers {
        shard_run = shard_run.with_workers(w);
    }
    // Spans ride the same flag hooks as the flight recorder; with
    // `--spans-out` each chaos run overwrites the dump, so the file left
    // behind is the last (heaviest) run of the sweep or gate sequence.
    let config = TelemetryConfig::in_memory("rob2_chaos")
        .with_attribution()
        .with_flight_from_args()
        .with_spans_from_args();
    trace_run_chaos(scenario, protocol, &config, Some(&shard_run))
        .expect("chaos run cannot fail on IO (flight dumps create their dirs)")
}

/// Reduces a traced chaos run to its [`ChaosRow`].
pub fn summarize(point: &ChaosPoint, run: &TraceRun) -> ChaosRow {
    let (mut lost, mut stalls, mut stale_drops, mut recoveries) = (0u64, 0u64, 0u64, 0u64);
    for w in run.recorder.windows() {
        lost += w.interconnect_lost;
        stalls += w.shard_stalls;
        stale_drops += w.ghost_stale_drops;
        recoveries += w.interconnect_recoveries;
    }
    let attr = run.attribution.as_ref().expect("chaos runs attribute");
    let nodes = run.meta.nodes.max(1) as f64;
    let secs = run.meta.duration.max(f64::MIN_POSITIVE);
    ChaosRow {
        point: *point,
        lost,
        stalls,
        stale_drops,
        recoveries,
        fault_events: attr.ledger.root_events(RootCause::InterconnectFault),
        f_cluster: run.recorder.total_msgs(MsgClass::Cluster) as f64 / nodes / secs,
        f_route: run.recorder.total_msgs(MsgClass::Route) as f64 / nodes / secs,
        audit_clean: attr.audit.is_clean(),
        anchored: attr.ledger.unanchored_chains().is_empty(),
    }
}

/// Sweeps loss × stall settings at a fixed staleness bound, ideal row
/// first, plus a staleness-bound sweep at the heaviest loss setting.
pub fn sweep_chaos(scenario: &Scenario, protocol: &Protocol, dims: ShardDims) -> Vec<ChaosRow> {
    let mut rows = Vec::new();
    for &(loss_p, stall_rate) in &[
        (0.0, 0.0), // ideal: the parity baseline
        (0.05, 0.0),
        (0.2, 0.0),
        (0.0, 0.02),
        (0.2, 0.02),
    ] {
        let point = ChaosPoint {
            loss_p,
            stall_rate,
            ..ChaosPoint::ideal()
        };
        rows.push(measure_chaos(scenario, protocol, dims, &point, None));
    }
    for max_staleness in [1, 8] {
        let point = ChaosPoint {
            loss_p: 0.2,
            max_staleness,
            ..ChaosPoint::ideal()
        };
        rows.push(measure_chaos(scenario, protocol, dims, &point, None));
    }
    rows
}

/// Renders the chaos sweep table.
pub fn table(rows: &[ChaosRow]) -> Table {
    let mut t = Table::new([
        "loss p",
        "stall rate",
        "stale bound",
        "lost",
        "stalls",
        "stale drops",
        "recoveries",
        "fault events",
        "f_cluster",
        "f_route",
        "audit",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.point.loss_p, 3),
            fmt_sig(r.point.stall_rate, 3),
            r.point.max_staleness.to_string(),
            r.lost.to_string(),
            r.stalls.to_string(),
            r.stale_drops.to_string(),
            r.recoveries.to_string(),
            r.fault_events.to_string(),
            fmt_sig(r.f_cluster, 4),
            fmt_sig(r.f_route, 4),
            if r.audit_clean && r.anchored {
                "clean".to_string()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> (Scenario, Protocol) {
        (
            Scenario {
                nodes: 80,
                side: 500.0,
                radius: 100.0,
                ..Scenario::default()
            },
            Protocol {
                warmup: 5.0,
                measure: 20.0,
                seeds: vec![7],
                dt: 0.5,
            },
        )
    }

    #[test]
    fn ideal_point_reports_no_fault_traffic() {
        let (scenario, protocol) = quick();
        let dims = ShardDims::parse("2x2").unwrap();
        let row = measure_chaos(&scenario, &protocol, dims, &ChaosPoint::ideal(), Some(1));
        assert!(row.point.is_ideal());
        assert_eq!(
            (row.lost, row.stalls, row.stale_drops, row.recoveries),
            (0, 0, 0, 0)
        );
        assert_eq!(row.fault_events, 0);
        assert!(row.audit_clean && row.anchored);
    }

    #[test]
    fn chaos_point_emits_anchored_fault_events() {
        let (scenario, protocol) = quick();
        let dims = ShardDims::parse("2x2").unwrap();
        let point = ChaosPoint {
            loss_p: 0.3,
            stall_rate: 0.05,
            ..ChaosPoint::ideal()
        };
        let row = measure_chaos(&scenario, &protocol, dims, &point, Some(1));
        assert!(row.lost > 0, "a 30% lossy interconnect must drop batches");
        assert!(row.fault_events > 0);
        assert!(row.anchored, "interconnect events must self-anchor");
        assert!(row.audit_clean, "degradation must not corrupt invariants");
        assert!(row.recoveries > 0, "lossy links must also recover");
    }

    /// The flight recorder's black box is a pure function of the seed:
    /// two identical chaos runs leave byte-identical dumps, and the dump
    /// re-reads as a replayable trace carrying the chaos event kinds.
    #[test]
    fn flight_dump_is_deterministic_in_the_seed_and_replayable() {
        let (scenario, protocol) = quick();
        let dims = ShardDims::parse("2x2").unwrap();
        let point = ChaosPoint {
            loss_p: 0.3,
            stall_rate: 0.05,
            ..ChaosPoint::ideal()
        };
        let seed = protocol.seeds.first().copied().unwrap();
        let ticks = ((protocol.warmup + protocol.measure) / protocol.dt).round() as u64;
        let run_once = || {
            let shard_run = ShardRun::new(dims)
                .with_interconnect(point.config(dims, ticks, seed))
                .with_workers(1);
            let config = TelemetryConfig::in_memory("rob2_chaos")
                .with_attribution()
                .with_flight(512);
            crate::trace::trace_run_chaos(&scenario, &protocol, &config, Some(&shard_run))
                .expect("in-memory chaos run cannot fail on IO")
        };
        let (a, b) = (run_once(), run_once());
        let fa = a.flight.as_ref().expect("flight armed");
        let fb = b.flight.as_ref().expect("flight armed");
        assert!(fa.events_seen() > 512, "chaos outgrows the ring");
        assert_eq!(fa.len(), 512, "ring wrapped and stayed bounded");
        let dump_a = fa.dump_string(&a.meta, "end-of-run");
        let dump_b = fb.dump_string(&b.meta, "end-of-run");
        assert_eq!(dump_a, dump_b, "same seed must give a byte-identical dump");

        // The dump round-trips through the trace reader and replays.
        let dir = std::env::temp_dir().join("manet_rob2_flight_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("flight.jsonl");
        fa.dump_to(&path, &a.meta, "end-of-run").unwrap();
        let trace = manet_telemetry::read_trace(&path).unwrap();
        assert_eq!(
            trace.meta.as_ref().map(|m| m.label.as_str()),
            Some("rob2_chaos#flight:end-of-run")
        );
        assert_eq!(trace.events.len(), 512);
        let replayed = trace.replay(5.0);
        assert_eq!(replayed.events_seen(), 512);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
