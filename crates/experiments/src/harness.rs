//! The shared simulation harness: runs the full protocol stack (HELLO +
//! clustering + intra-cluster routing) over a scenario and measures the
//! paper's per-node control-message frequencies.

use manet_cluster::{ClusterPolicy, Clustering, LowestId};
use manet_geom::{ShardDims, ShardLayoutError};
use manet_routing::intra::IntraClusterRouting;
use manet_shard::{InterconnectConfig, ShardPlane, ShardReport, ShardedStack};
use manet_sim::{
    HelloMode, HelloProtocol, MessageKind, MobilityKind, QuietCtx, SimBuilder, StepCtx, StepReport,
    World,
};
use manet_stack::{ClusterLayer, ProtocolStack, RouteLayer, StackReport};
use manet_telemetry::ShardSnapshot;
use manet_util::stats::Summary;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Scenario geometry and kinematics (DESIGN.md §5 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Number of nodes `N`.
    pub nodes: usize,
    /// Region side `a`, meters.
    pub side: f64,
    /// Transmission range `r`, meters.
    pub radius: f64,
    /// Node speed `v`, m/s.
    pub speed: f64,
    /// Direction-redraw epoch `τ`, seconds.
    pub epoch: f64,
    /// Mobility model (defaults to the paper's epoch random-direction).
    pub mobility: MobilityKind,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            nodes: 400,
            side: 1000.0,
            radius: 150.0,
            speed: 10.0,
            epoch: 20.0,
            mobility: MobilityKind::EpochRandomDirection { epoch: 20.0 },
        }
    }
}

impl Scenario {
    /// Node density `ρ = N/a²`.
    pub fn density(&self) -> f64 {
        self.nodes as f64 / (self.side * self.side)
    }

    /// Builds the analytical parameter tuple for this scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario violates the model's constraints (`r < a`…);
    /// scenario sweeps are constructed in-code, so this indicates a bug.
    pub fn params(&self) -> manet_model::NetworkParams {
        manet_model::NetworkParams::new(self.nodes, self.side, self.radius, self.speed)
            .expect("scenario violates model constraints")
    }
}

/// Measurement protocol: warmup, window length, seeds, tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Protocol {
    /// Seconds simulated before measurement starts.
    pub warmup: f64,
    /// Measurement window length, seconds.
    pub measure: f64,
    /// Independent replications.
    pub seeds: Vec<u64>,
    /// Tick length, seconds.
    pub dt: f64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            warmup: 100.0,
            measure: 400.0,
            seeds: vec![11, 22, 33],
            dt: 0.25,
        }
    }
}

impl Protocol {
    /// A cheap protocol for unit/integration tests.
    pub fn quick() -> Self {
        Protocol {
            warmup: 40.0,
            measure: 120.0,
            seeds: vec![7],
            dt: 0.5,
        }
    }
}

/// Cross-seed estimate (mean ± 95% CI half-width).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Cross-seed mean.
    pub mean: f64,
    /// Normal-approximation 95% confidence half-width.
    pub ci95: f64,
}

impl From<Summary> for Estimate {
    fn from(s: Summary) -> Self {
        Estimate {
            mean: s.mean(),
            ci95: s.ci95_half_width(),
        }
    }
}

/// Measured per-node control-message frequencies and structure statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Measured {
    /// HELLO msgs/node/s (event-driven lower bound).
    pub f_hello: Estimate,
    /// CLUSTER msgs/node/s, total.
    pub f_cluster: Estimate,
    /// CLUSTER msgs/node/s attributable to member–head breaks.
    pub f_cluster_break: Estimate,
    /// CLUSTER msgs/node/s attributable to head contacts.
    pub f_cluster_contact: Estimate,
    /// ROUTE msgs/node/s.
    pub f_route: Estimate,
    /// ROUTE table entries/node/s (full-table broadcasts).
    pub f_route_entries: Estimate,
    /// Time-averaged head ratio `P` during the window.
    pub head_ratio: Estimate,
    /// Time-averaged mean degree `d`.
    pub mean_degree: Estimate,
    /// Per-node link generation rate.
    pub link_gen_rate: Estimate,
    /// Per-node total link change rate.
    pub link_change_rate: Estimate,
}

/// Cooperative cancellation handle for harness measurement loops.
///
/// Cloneable and thread-safe: the jobs plane hands one clone to the
/// worker running a scenario and keeps another to flip from the HTTP
/// thread. The `*_ctl` measurement cores poll it every
/// [`CANCEL_CHECK_TICKS`] ticks, so a running sweep stops within a few
/// dozen ticks of wall-clock work rather than at the next sweep point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Ticks between [`CancelToken`] polls inside the measurement loops: a
/// compromise between reaction latency (a few dozen ticks) and keeping
/// the uncancellable hot path free of per-tick atomic loads.
pub const CANCEL_CHECK_TICKS: usize = 32;

/// `true` when a token is present and cancelled — the loop-body check.
fn cancelled(cancel: Option<&CancelToken>) -> bool {
    cancel.is_some_and(|c| c.is_cancelled())
}

/// Process-wide default shard layout, set once by experiment binaries
/// from `--shards` (see [`set_default_shards`]).
static DEFAULT_SHARDS: OnceLock<Option<ShardDims>> = OnceLock::new();

/// Sets the process-wide default shard layout. Experiment binaries call
/// this once at startup after parsing `--shards`; every harness wrapper
/// that does not take explicit dims ([`measure_lid`],
/// [`measure_with_policy`], `measure_with_faults`, …) then routes its
/// topology stage through the shard plane. A second call is ignored.
///
/// The sharded path is bit-identical to the monolithic one for a fixed
/// seed, so this changes wall-clock only — never results.
pub fn set_default_shards(dims: Option<ShardDims>) {
    let _ = DEFAULT_SHARDS.set(dims);
}

/// The process-wide default shard layout (`None` until a binary sets one).
pub fn default_shards() -> Option<ShardDims> {
    DEFAULT_SHARDS.get().copied().flatten()
}

/// Shard-path options for one harness run: the layout plus an optional
/// worker cap and an optional fallible-interconnect configuration.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard grid layout.
    pub dims: ShardDims,
    /// Worker-thread cap for the per-shard compute fan-out (`None` = one
    /// thread per shard up to the host parallelism).
    pub workers: Option<usize>,
    /// Interconnect fault config (`None` = the ideal default).
    pub interconnect: Option<InterconnectConfig>,
}

impl ShardRun {
    /// An ideal-interconnect run at `dims` with the default worker pool.
    pub fn new(dims: ShardDims) -> Self {
        ShardRun {
            dims,
            workers: None,
            interconnect: None,
        }
    }

    /// Caps the shard worker pool.
    #[must_use]
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Runs the fallible interconnect under `config`.
    #[must_use]
    pub fn with_interconnect(mut self, config: InterconnectConfig) -> Self {
        self.interconnect = Some(config);
        self
    }
}

/// A harness stack on either the monolithic or the sharded topology
/// path, exposing the handful of entry points the measurement loops use.
///
/// Both paths are bit-identical for a fixed seed (the shard plane's
/// determinism contract, pinned by `tests/shard_plane.rs`); the sharded
/// one additionally fans the topology stage out over spatial shards.
pub enum StackDriver<C, R> {
    /// The monolithic `ProtocolStack` (the default path).
    Mono(Box<ProtocolStack<C, R>>),
    /// The ghost-margin sharded stack.
    Sharded(Box<ShardedStack<C, R>>),
}

impl<C: ClusterLayer, R: RouteLayer> StackDriver<C, R> {
    /// Wraps `stack`: monolithic when `shards` is `None`, sharded (even
    /// at `1x1`) when given dims.
    ///
    /// # Errors
    ///
    /// Fails when the layout is too fine for the world's radio radius.
    pub fn with_shards(
        stack: ProtocolStack<C, R>,
        shards: Option<ShardDims>,
    ) -> Result<Self, ShardLayoutError> {
        Ok(match shards {
            None => StackDriver::Mono(Box::new(stack)),
            Some(dims) => StackDriver::Sharded(Box::new(ShardedStack::new(stack, dims)?)),
        })
    }

    /// [`StackDriver::with_shards`] over full [`ShardRun`] options
    /// (worker cap, fallible interconnect).
    ///
    /// # Errors
    ///
    /// Fails when the layout is too fine for the world's radio radius.
    ///
    /// # Panics
    ///
    /// Panics on an invalid interconnect config (loss probability or
    /// stall schedule out of range) — chaos configs are constructed in
    /// code, so this indicates a bug in the sweep, not user input.
    pub fn with_shard_run(
        stack: ProtocolStack<C, R>,
        run: Option<&ShardRun>,
    ) -> Result<Self, ShardLayoutError> {
        Ok(match run {
            None => StackDriver::Mono(Box::new(stack)),
            Some(r) => {
                let mut s = ShardedStack::new(stack, r.dims)?;
                if let Some(w) = r.workers {
                    s = s.with_workers(w);
                }
                if let Some(ic) = &r.interconnect {
                    s = s
                        .with_interconnect(ic.clone())
                        .expect("interconnect config validated by construction");
                }
                StackDriver::Sharded(Box::new(s))
            }
        })
    }

    /// The shard + link-health snapshot (`None` on the monolithic path).
    pub fn shard_snapshot(&self) -> Option<ShardSnapshot> {
        match self {
            StackDriver::Mono(_) => None,
            StackDriver::Sharded(s) => Some(s.shard_snapshot()),
        }
    }

    /// The aggregated shard report (`None` on the monolithic path).
    pub fn shard_report(&self) -> Option<ShardReport> {
        match self {
            StackDriver::Mono(_) => None,
            StackDriver::Sharded(s) => Some(s.shard_report()),
        }
    }

    /// See `ProtocolStack::prime`.
    pub fn prime(&mut self, ctx: &mut StepCtx<'_, '_>) {
        match self {
            StackDriver::Mono(s) => s.prime(ctx),
            StackDriver::Sharded(s) => s.prime(ctx),
        }
    }

    /// One canonical tick on whichever path is configured.
    pub fn tick(&mut self, ctx: &mut StepCtx<'_, '_>) -> StackReport {
        match self {
            StackDriver::Mono(s) => s.tick(ctx),
            StackDriver::Sharded(s) => s.tick(ctx),
        }
    }

    /// See `ProtocolStack::audit_sample`.
    pub fn audit_sample(&self, now: f64) -> manet_telemetry::AuditSample {
        match self {
            StackDriver::Mono(s) => s.audit_sample(now),
            StackDriver::Sharded(s) => s.audit_sample(now),
        }
    }

    /// The simulated world.
    pub fn world(&self) -> &World {
        match self {
            StackDriver::Mono(s) => s.world(),
            StackDriver::Sharded(s) => s.world(),
        }
    }

    /// Mutable world access.
    pub fn world_mut(&mut self) -> &mut World {
        match self {
            StackDriver::Mono(s) => s.world_mut(),
            StackDriver::Sharded(s) => s.world_mut(),
        }
    }

    /// See `ProtocolStack::split_mut`.
    pub fn split_mut(&mut self) -> (&mut World, &mut C, &mut R) {
        match self {
            StackDriver::Mono(s) => s.split_mut(),
            StackDriver::Sharded(s) => s.split_mut(),
        }
    }

    /// Consumes the driver, returning the simulated world.
    pub fn into_world(self) -> World {
        match self {
            StackDriver::Mono(s) => s.into_parts().0,
            StackDriver::Sharded(s) => s.into_parts().0.into_parts().0,
        }
    }

    /// The cluster layer.
    pub fn cluster(&self) -> &C {
        match self {
            StackDriver::Mono(s) => s.cluster(),
            StackDriver::Sharded(s) => s.cluster(),
        }
    }

    /// The explicit HELLO protocol driver, when one is attached.
    pub fn hello(&self) -> Option<&HelloProtocol> {
        match self {
            StackDriver::Mono(s) => s.hello(),
            StackDriver::Sharded(s) => s.hello(),
        }
    }
}

/// A bare [`World`] stepped on either topology path — the world-only twin
/// of [`StackDriver`] for engine-validation experiments that run no
/// protocol stack (tick convergence, data-plane stretch, claim checks).
/// Dereferences to the inner world for everything except `step`/`run_for`,
/// which are shadowed to route through the shard plane when one is
/// configured. Both paths are bit-identical for a fixed seed.
pub struct WorldDriver {
    world: World,
    plane: Option<Box<ShardPlane>>,
}

impl WorldDriver {
    /// Wraps `world`, honoring the process-wide [`default_shards`] layout.
    ///
    /// # Panics
    ///
    /// Panics when the default layout is too fine for the world's radio
    /// radius — the operator picked `--shards` for this scenario.
    pub fn new(world: World) -> Self {
        WorldDriver::with_shards(world, default_shards())
    }

    /// Explicit-layout variant of [`WorldDriver::new`] (`None` =
    /// monolithic).
    ///
    /// # Panics
    ///
    /// Panics when the layout is too fine for the world's radio radius.
    pub fn with_shards(world: World, shards: Option<ShardDims>) -> Self {
        let plane = shards.map(|dims| {
            Box::new(
                ShardPlane::for_world(&world, dims)
                    .expect("--shards layout incompatible with the scenario radius"),
            )
        });
        WorldDriver { world, plane }
    }

    /// One tick on whichever topology path is configured.
    pub fn step(&mut self, ctx: &mut StepCtx<'_, '_>) -> StepReport {
        match &mut self.plane {
            None => self.world.step(ctx),
            Some(plane) => self.world.step_with(ctx, plane.as_mut()),
        }
    }

    /// Runs whole ticks until at least `seconds` more simulated time has
    /// elapsed (see `World::run_for`).
    pub fn run_for(&mut self, seconds: f64, ctx: &mut StepCtx<'_, '_>) {
        let target = self.world.time() + seconds;
        while self.world.time() + self.world.dt() * 0.5 < target {
            self.step(ctx);
        }
    }
}

impl Deref for WorldDriver {
    type Target = World;
    fn deref(&self) -> &World {
        &self.world
    }
}

impl DerefMut for WorldDriver {
    fn deref_mut(&mut self) -> &mut World {
        &mut self.world
    }
}

/// Runs the full stack (HELLO + clustering + intra-cluster routing) under
/// `policy_for_seed` and measures the paper's metrics.
///
/// The per-seed policy constructor allows weight-based policies (DMAC) to
/// draw per-node weights deterministically per replication. Honors the
/// process-wide [`default_shards`] layout (results are identical either
/// way; only the topology stage's parallelism changes).
pub fn measure_with_policy<P, F>(
    scenario: &Scenario,
    protocol: &Protocol,
    policy_for_seed: F,
) -> Measured
where
    P: ClusterPolicy,
    F: FnMut(u64) -> P,
{
    measure_with_policy_sharded(scenario, protocol, default_shards(), policy_for_seed)
}

/// [`measure_with_policy`] over an optional shard layout (`None` =
/// monolithic; `Some(dims)` runs the topology stage on the ghost-margin
/// shard plane, bit-identical for a fixed seed at any dims).
///
/// # Panics
///
/// Panics when the layout's tiles would be narrower than the radio
/// radius; validate dims against the scenario up front (as the
/// experiment bins do) for a friendlier error.
pub fn measure_with_policy_sharded<P, F>(
    scenario: &Scenario,
    protocol: &Protocol,
    shards: Option<ShardDims>,
    policy_for_seed: F,
) -> Measured
where
    P: ClusterPolicy,
    F: FnMut(u64) -> P,
{
    let run = shards.map(ShardRun::new);
    measure_with_policy_ctl(scenario, protocol, run.as_ref(), None, policy_for_seed)
        .expect("a measurement without a cancel token cannot be cancelled")
}

/// The cancellable core of [`measure_with_policy`]: full [`ShardRun`]
/// options plus an optional [`CancelToken`] polled every
/// [`CANCEL_CHECK_TICKS`] ticks. Returns `None` when cancellation fired
/// mid-run (partial seeds are discarded — a cancelled measurement never
/// yields numbers). The uncancelled result is bit-identical to
/// [`measure_with_policy_sharded`] at the same layout — the jobs plane
/// and the experiment bins share this loop, which is what makes their
/// outputs byte-comparable.
///
/// # Panics
///
/// Panics when the layout's tiles would be narrower than the radio
/// radius; validate dims against the scenario up front (as
/// `ScenarioSpec::validate` does) for a friendlier error.
pub fn measure_with_policy_ctl<P, F>(
    scenario: &Scenario,
    protocol: &Protocol,
    run: Option<&ShardRun>,
    cancel: Option<&CancelToken>,
    mut policy_for_seed: F,
) -> Option<Measured>
where
    P: ClusterPolicy,
    F: FnMut(u64) -> P,
{
    let mut f_hello = Summary::new();
    let mut f_cluster = Summary::new();
    let mut f_cluster_break = Summary::new();
    let mut f_cluster_contact = Summary::new();
    let mut f_route = Summary::new();
    let mut f_route_entries = Summary::new();
    let mut head_ratio = Summary::new();
    let mut mean_degree = Summary::new();
    let mut link_gen = Summary::new();
    let mut link_change = Summary::new();

    for &seed in &protocol.seeds {
        if cancelled(cancel) {
            return None;
        }
        let world = SimBuilder::new()
            .side(scenario.side)
            .nodes(scenario.nodes)
            .radius(scenario.radius)
            .speed(scenario.speed)
            .mobility(scenario.mobility)
            .dt(protocol.dt)
            .seed(seed)
            .hello_mode(HelloMode::EventDriven)
            .build();
        let clustering = Clustering::form(policy_for_seed(seed), world.topology());
        let stack = ProtocolStack::ideal(world, clustering, IntraClusterRouting::new());
        let mut stack = StackDriver::with_shard_run(stack, run)
            .expect("shard layout incompatible with scenario radius");
        let mut quiet = QuietCtx::new();
        stack.prime(&mut quiet.ctx()); // baseline fill

        // Warmup: run the full stack so the structure reaches steady state.
        let warm_ticks = (protocol.warmup / protocol.dt).round() as usize;
        for tick in 0..warm_ticks {
            if tick % CANCEL_CHECK_TICKS == 0 && cancelled(cancel) {
                return None;
            }
            stack.tick(&mut quiet.ctx());
        }

        stack.world_mut().begin_measurement();
        let mut agg = StackReport::default();
        let mut p_samples = Summary::new();
        let ticks = (protocol.measure / protocol.dt).round() as usize;
        for tick in 0..ticks {
            if tick % CANCEL_CHECK_TICKS == 0 && cancelled(cancel) {
                return None;
            }
            let report = stack.tick(&mut quiet.ctx());
            p_samples.push(report.head_ratio);
            agg.absorb(report);
        }
        let world = stack.world();
        let elapsed = world.measured_time();
        let n = world.node_count();
        let per_node = |count: u64| count as f64 / n as f64 / elapsed;
        let maint = agg.cluster.maintenance;

        f_hello.push(
            world
                .counters()
                .per_node_rate(MessageKind::Hello, n, elapsed),
        );
        f_cluster.push(per_node(maint.total_messages()));
        f_cluster_break.push(per_node(maint.break_triggered_messages()));
        f_cluster_contact.push(per_node(maint.contact_triggered_messages()));
        f_route.push(per_node(agg.route.route_messages));
        f_route_entries.push(per_node(agg.route.route_entries));
        head_ratio.push(p_samples.mean());
        mean_degree.push(world.mean_degree());
        link_gen.push(world.counters().per_node_link_generation_rate(n, elapsed));
        link_change.push(
            world.counters().per_node_link_generation_rate(n, elapsed)
                + world.counters().per_node_link_break_rate(n, elapsed),
        );
    }

    Some(Measured {
        f_hello: f_hello.into(),
        f_cluster: f_cluster.into(),
        f_cluster_break: f_cluster_break.into(),
        f_cluster_contact: f_cluster_contact.into(),
        f_route: f_route.into(),
        f_route_entries: f_route_entries.into(),
        head_ratio: head_ratio.into(),
        mean_degree: mean_degree.into(),
        link_gen_rate: link_gen.into(),
        link_change_rate: link_change.into(),
    })
}

/// [`measure_with_policy`] specialized to the paper's LID case study.
pub fn measure_lid(scenario: &Scenario, protocol: &Protocol) -> Measured {
    measure_with_policy(scenario, protocol, |_| LowestId)
}

/// [`measure_lid`] over an optional shard layout (see
/// [`measure_with_policy_sharded`]).
pub fn measure_lid_sharded(
    scenario: &Scenario,
    protocol: &Protocol,
    shards: Option<ShardDims>,
) -> Measured {
    measure_with_policy_sharded(scenario, protocol, shards, |_| LowestId)
}

/// The analytical counterpart at a given head ratio: frequencies from the
/// default model (torus degree, per-pair contacts, member+member route
/// links — the configuration matching this simulator; see DESIGN.md §4).
pub fn analysis_at(scenario: &Scenario, p: f64) -> manet_model::OverheadBreakdown {
    let model =
        manet_model::OverheadModel::new(scenario.params(), manet_model::DegreeModel::TorusExact);
    model.breakdown(p.clamp(1e-6, 1.0))
}

/// Convenience: a type-erased World for ad-hoc experiment code.
pub fn build_world(scenario: &Scenario, dt: f64, seed: u64) -> World {
    SimBuilder::new()
        .side(scenario.side)
        .nodes(scenario.nodes)
        .radius(scenario.radius)
        .speed(scenario.speed)
        .mobility(scenario.mobility)
        .dt(dt)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_lid_produces_sane_numbers() {
        let scenario = Scenario {
            nodes: 150,
            side: 600.0,
            radius: 100.0,
            ..Scenario::default()
        };
        let m = measure_lid(&scenario, &Protocol::quick());
        assert!(m.f_hello.mean > 0.0);
        assert!(m.f_cluster.mean > 0.0);
        assert!(m.f_route.mean > 0.0);
        assert!(m.head_ratio.mean > 0.0 && m.head_ratio.mean < 1.0);
        assert!(m.mean_degree.mean > 1.0);
        // Entries dominate messages (full tables).
        assert!(m.f_route_entries.mean > m.f_route.mean);
        // Decomposition adds up.
        assert!(
            (m.f_cluster.mean - m.f_cluster_break.mean - m.f_cluster_contact.mean).abs() < 1e-9
        );
    }

    #[test]
    fn hello_rate_equals_link_generation_rate() {
        let scenario = Scenario {
            nodes: 120,
            side: 600.0,
            radius: 110.0,
            ..Scenario::default()
        };
        let m = measure_lid(&scenario, &Protocol::quick());
        // Event-driven HELLO: one beacon per endpoint per generation.
        assert!((m.f_hello.mean - m.link_gen_rate.mean).abs() < 1e-9);
    }

    #[test]
    fn measured_link_rate_matches_claim2() {
        let scenario = Scenario::default();
        let m = measure_lid(&scenario, &Protocol::quick());
        let model = manet_model::OverheadModel::new(
            scenario.params(),
            manet_model::DegreeModel::TorusExact,
        );
        let theory = model.link_change_rate();
        let rel = (m.link_change_rate.mean - theory).abs() / theory;
        assert!(
            rel < 0.15,
            "λ sim {} vs theory {theory} (rel {rel:.3})",
            m.link_change_rate.mean
        );
    }

    #[test]
    fn pre_cancelled_token_aborts_before_any_seed() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
        let m = measure_with_policy_ctl(
            &Scenario::default(),
            &Protocol::quick(),
            None,
            Some(&token),
            |_| LowestId,
        );
        assert!(m.is_none(), "cancelled measurement must yield no numbers");
    }

    #[test]
    fn ctl_core_without_token_matches_the_sharded_entry_point() {
        let scenario = Scenario {
            nodes: 100,
            side: 500.0,
            radius: 100.0,
            ..Scenario::default()
        };
        let protocol = Protocol {
            warmup: 10.0,
            measure: 30.0,
            seeds: vec![5],
            dt: 0.5,
        };
        let via_sharded = measure_with_policy_sharded(&scenario, &protocol, None, |_| LowestId);
        let via_ctl = measure_with_policy_ctl(&scenario, &protocol, None, None, |_| LowestId)
            .expect("uncancelled");
        assert_eq!(via_sharded, via_ctl);
    }

    #[test]
    fn analysis_at_matches_model_directly() {
        let scenario = Scenario::default();
        let b = analysis_at(&scenario, 0.1);
        assert!(b.f_hello > 0.0 && b.f_route > 0.0);
    }
}
