//! Section 6: the Θ-notation growth table, verified numerically.

use manet_model::asymptotics::{theta_table, ThetaCell};
use manet_util::table::{fmt_sig, Table};

/// Computes all nine Θ cells.
pub fn compute() -> Vec<ThetaCell> {
    theta_table()
}

/// Renders the Θ table with claimed vs fitted exponents.
pub fn table(cells: &[ThetaCell]) -> Table {
    let mut t = Table::new([
        "message",
        "variable",
        "paper Θ exponent",
        "fitted",
        "confirmed",
    ]);
    for c in cells {
        t.row([
            format!("{:?}", c.family),
            format!("{:?}", c.variable),
            fmt_sig(c.claimed_exponent, 2),
            fmt_sig(c.fitted_exponent, 3),
            if c.confirms(0.12) {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_confirm() {
        let cells = compute();
        assert_eq!(cells.len(), 9);
        assert!(cells.iter().all(|c| c.confirms(0.12)));
        let rendered = table(&cells).to_ascii();
        assert!(rendered.contains("Hello"));
        assert!(!rendered.contains("NO"));
    }
}
