//! EXT2 — the paper's motivating comparison: flat proactive routing (DSDV)
//! vs the clustered hybrid stack, as network size grows at fixed density.

use crate::harness::{Protocol, Scenario, StackDriver};
use manet_cluster::{Clustering, LowestId};
use manet_geom::ShardDims;
use manet_routing::dsdv::{Dsdv, DsdvOutcome};
use manet_routing::intra::{IntraClusterRouting, UpdatePolicy};
use manet_sim::{HelloMode, MessageKind, QuietCtx, SimBuilder};
use manet_stack::{ProtocolStack, StackReport};
use manet_util::table::{fmt_sig, Table};

/// One row of the comparison: per-node control bit rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineRow {
    /// Network size (side scales with √N to keep density fixed).
    pub nodes: usize,
    /// Clustered hybrid total control bits/node/s (HELLO + CLUSTER +
    /// full-table ROUTE entries).
    pub clustered_bits: f64,
    /// Flat DSDV control bits/node/s (periodic dumps + triggered updates).
    pub flat_bits: f64,
}

/// Runs the comparison at fixed density `ρ = 400/10⁶ m⁻²` with a DSDV full
/// dump every `dump_interval` seconds.
pub fn flat_vs_clustered(
    protocol: &Protocol,
    sizes: &[usize],
    dump_interval: f64,
) -> Vec<BaselineRow> {
    flat_vs_clustered_sharded(protocol, sizes, dump_interval, None)
}

/// [`flat_vs_clustered`] over an optional shard layout for the clustered
/// stack (`None` = monolithic; results are bit-identical either way).
///
/// # Panics
///
/// Panics when the layout's tiles would be narrower than the 150 m radio
/// radius at the smallest swept size.
pub fn flat_vs_clustered_sharded(
    protocol: &Protocol,
    sizes: &[usize],
    dump_interval: f64,
    shards: Option<ShardDims>,
) -> Vec<BaselineRow> {
    let density = 400.0 / 1e6;
    sizes
        .iter()
        .map(|&n| {
            let side = (n as f64 / density).sqrt();
            let scenario = Scenario {
                nodes: n,
                side,
                radius: 150.0,
                ..Scenario::default()
            };
            let seed = protocol.seeds.first().copied().unwrap_or(1);

            let world = SimBuilder::new()
                .side(scenario.side)
                .nodes(scenario.nodes)
                .radius(scenario.radius)
                .speed(scenario.speed)
                .dt(protocol.dt)
                .seed(seed)
                .hello_mode(HelloMode::EventDriven)
                .build();
            let clustering = Clustering::form(LowestId, world.topology());
            // Fairness: both sides rate-limit their proactive updates to
            // the same interval (per-change flooding is the paper's
            // counting convention, not a deployable protocol).
            let routing = IntraClusterRouting::with_policy(UpdatePolicy::Coalesced {
                interval: dump_interval,
            });
            let stack = ProtocolStack::ideal(world, clustering, routing);
            let mut stack = StackDriver::with_shards(stack, shards)
                .expect("shard layout incompatible with swept scenario radius");
            let mut quiet = QuietCtx::new();
            stack.prime(&mut quiet.ctx());
            let mut dsdv = Dsdv::new(dump_interval);

            let warm_ticks = (protocol.warmup / protocol.dt).round() as usize;
            for _ in 0..warm_ticks {
                stack.tick(&mut quiet.ctx());
            }
            stack.world_mut().begin_measurement();
            let mut agg = StackReport::default();
            let mut flat = DsdvOutcome::default();
            let ticks = (protocol.measure / protocol.dt).round() as usize;
            for _ in 0..ticks {
                agg.absorb(stack.tick(&mut quiet.ctx()));
                // The flat baseline sees the same link events.
                let world = stack.world();
                let events: Vec<_> = world.last_events().to_vec();
                flat.absorb(dsdv.step(protocol.dt, world.topology(), &events));
            }

            let world = stack.world();
            let elapsed = world.measured_time();
            let sizes_tbl = world.sizes();
            let per_node_bits = |bytes: f64| bytes * 8.0 / n as f64 / elapsed;
            let hello_bits = world.counters().bytes(MessageKind::Hello) as f64;
            let cluster_bits =
                agg.cluster.maintenance.total_messages() as f64 * sizes_tbl.cluster as f64;
            let route_bits = agg.route.route_entries as f64 * sizes_tbl.route_entry as f64;
            let clustered_bits = per_node_bits(hello_bits + cluster_bits + route_bits);

            // Flat baseline bits: HELLO is needed there too; dumps carry
            // N-entry tables, triggered updates one entry.
            let flat_bytes = hello_bits
                + flat.full_dump_entries as f64 * sizes_tbl.route_entry as f64
                + flat.triggered_messages as f64 * sizes_tbl.route_entry as f64;
            let flat_bits = per_node_bits(flat_bytes);

            BaselineRow {
                nodes: n,
                clustered_bits,
                flat_bits,
            }
        })
        .collect()
}

/// Renders the comparison table.
pub fn table(rows: &[BaselineRow]) -> Table {
    let mut t = Table::new([
        "N",
        "clustered bits/node/s",
        "flat DSDV bits/node/s",
        "flat/clustered",
    ]);
    for r in rows {
        t.row([
            r.nodes.to_string(),
            fmt_sig(r.clustered_bits, 4),
            fmt_sig(r.flat_bits, 4),
            fmt_sig(r.flat_bits / r.clustered_bits, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_overhead_grows_with_n_clustered_stays_flat() {
        let protocol = Protocol {
            warmup: 20.0,
            measure: 60.0,
            seeds: vec![9],
            dt: 0.5,
        };
        let rows = flat_vs_clustered(&protocol, &[100, 400], 10.0);
        assert_eq!(rows.len(), 2);
        // Flat per-node overhead grows with N (dump entries scale with N).
        assert!(rows[1].flat_bits > 2.0 * rows[0].flat_bits);
        // Clustered per-node overhead is roughly size-independent at fixed
        // density (within a factor ~2 of itself).
        let ratio = rows[1].clustered_bits / rows[0].clustered_bits;
        assert!(ratio < 2.0, "clustered ratio {ratio}");
        // And the flat baseline is the loser at scale.
        assert!(rows[1].flat_bits > rows[1].clustered_bits);
    }
}
