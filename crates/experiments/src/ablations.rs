//! Ablations over the reconstruction's modeling choices (DESIGN.md §8) and
//! the generic-`P` extension.

use crate::harness::{measure_lid, measure_with_policy, Measured, Protocol, Scenario};
use manet_cluster::{HighestConnectivity, StaticWeights};
use manet_model::{
    ClusterSizeModel, DegreeModel, HeadContactConvention, OverheadModel, RouteLinkModel,
};
use manet_sim::MobilityKind;
use manet_util::table::{fmt_sig, Table};
use manet_util::Rng;

/// ABL1 — decomposes CLUSTER traffic by trigger and compares both
/// head-contact counting conventions against simulation, over a speed
/// sweep.
pub fn cluster_decomposition(protocol: &Protocol) -> Table {
    let mut t = Table::new([
        "v [m/s]",
        "break sim",
        "break ana",
        "contact sim",
        "contact ana (PerPair)",
        "contact ana (PerEndpoint)",
    ]);
    for v in [5.0, 10.0, 20.0, 40.0] {
        let scenario = Scenario {
            speed: v,
            ..Scenario::default()
        };
        let m = measure_lid(&scenario, protocol);
        let p = m.head_ratio.mean.clamp(1e-6, 1.0);
        let pair = OverheadModel::new(scenario.params(), DegreeModel::TorusExact);
        let endpoint = pair.with_contact_convention(HeadContactConvention::PerEndpoint);
        t.row([
            fmt_sig(v, 3),
            fmt_sig(m.f_cluster_break.mean, 3),
            fmt_sig(pair.f_cluster_break(p), 3),
            fmt_sig(m.f_cluster_contact.mean, 3),
            fmt_sig(pair.f_cluster_contact(p), 3),
            fmt_sig(endpoint.f_cluster_contact(p), 3),
        ]);
    }
    t
}

/// ABL2 — compares the two intra-cluster link models for ROUTE against
/// simulation, over a range sweep.
pub fn route_model_ablation(protocol: &Protocol) -> Table {
    let mut t = Table::new([
        "r/a",
        "f_route sim",
        "ana member+member (κ)",
        "ana +exp. size dispersion",
        "ana member-head only (paper Eqn13)",
    ]);
    let base = Scenario::default();
    for frac in [0.08, 0.15, 0.25, 0.35] {
        let scenario = Scenario {
            radius: frac * base.side,
            ..base
        };
        let m = measure_lid(&scenario, protocol);
        let p = m.head_ratio.mean.clamp(1e-6, 1.0);
        let with = OverheadModel::new(scenario.params(), DegreeModel::TorusExact);
        let dispersed = with.with_size_model(ClusterSizeModel::Exponential);
        let without = with.with_route_links(RouteLinkModel::MemberHeadOnly);
        t.row([
            fmt_sig(frac, 3),
            fmt_sig(m.f_route.mean, 3),
            fmt_sig(with.f_route(p), 3),
            fmt_sig(dispersed.f_route(p), 3),
            fmt_sig(without.f_route(p), 3),
        ]);
    }
    t
}

/// ABL3 — mobility-model sensitivity: the link dynamics (and hence every
/// overhead bound) under the analysis-friendly models vs classic RWP and
/// random walk, at identical `N, r, v`.
pub fn mobility_sensitivity(protocol: &Protocol) -> Table {
    let mut t = Table::new([
        "mobility",
        "lambda sim",
        "lambda Claim2",
        "d (meas)",
        "center-bias",
    ]);
    let kinds: [(&str, MobilityKind); 4] = [
        (
            "epoch-rd (paper sim)",
            MobilityKind::EpochRandomDirection { epoch: 20.0 },
        ),
        ("constant-velocity", MobilityKind::ConstantVelocity),
        (
            "random-waypoint",
            MobilityKind::RandomWaypoint { pause: 0.0 },
        ),
        (
            "random-walk",
            MobilityKind::RandomWalk {
                min_leg: 5.0,
                max_leg: 25.0,
            },
        ),
    ];
    for (name, kind) in kinds {
        let scenario = Scenario {
            mobility: kind,
            ..Scenario::default()
        };
        let m = measure_lid(&scenario, protocol);
        let model = OverheadModel::new(scenario.params(), DegreeModel::TorusExact);
        // Center bias: measured mean degree vs the uniform torus baseline —
        // RWP's center-heavy stationary law inflates it.
        let bias = m.mean_degree.mean / model.expected_degree();
        t.row([
            name.to_string(),
            fmt_sig(m.link_change_rate.mean, 4),
            fmt_sig(model.link_change_rate(), 4),
            fmt_sig(m.mean_degree.mean, 4),
            fmt_sig(bias, 3),
        ]);
    }
    t
}

/// EXT1 — the generic model is parametric in `P`: measure `P` for HCC and
/// DMAC-style weights and evaluate the same closed forms at the measured
/// value.
pub fn generic_p_extension(protocol: &Protocol) -> Table {
    let scenario = Scenario::default();
    let lid = measure_lid(&scenario, protocol);
    let hcc = measure_with_policy(&scenario, protocol, |_| HighestConnectivity);
    let dmac = measure_with_policy(&scenario, protocol, |seed| {
        let mut rng = Rng::seed_from_u64(seed ^ 0xD44C);
        StaticWeights::new((0..scenario.nodes).map(|_| rng.f64()).collect())
    });

    let mut t = Table::new([
        "policy",
        "P (meas)",
        "f_cluster sim",
        "f_cluster ana(P)",
        "f_route sim",
        "f_route ana(P)",
    ]);
    for (name, m) in [
        ("lowest-id", &lid),
        ("highest-connectivity", &hcc),
        ("dmac-weights", &dmac),
    ] {
        let p = m.head_ratio.mean.clamp(1e-6, 1.0);
        let model = OverheadModel::new(scenario.params(), DegreeModel::TorusExact);
        t.row([
            name.to_string(),
            fmt_sig(p, 3),
            fmt_sig(m.f_cluster.mean, 3),
            fmt_sig(model.f_cluster(p), 3),
            fmt_sig(m.f_route.mean, 3),
            fmt_sig(model.f_route(p), 3),
        ]);
    }
    t
}

/// Helper for tests: measured LID numbers at the default scenario.
pub fn default_lid_measurement(protocol: &Protocol) -> Measured {
    measure_lid(&Scenario::default(), protocol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_tables_render() {
        let p = Protocol {
            warmup: 20.0,
            measure: 60.0,
            seeds: vec![5],
            dt: 0.5,
        };
        let small = |s: Scenario| Scenario {
            nodes: 120,
            side: 600.0,
            radius: 100.0,
            ..s
        };
        // Use a reduced scenario through the public API by shrinking the
        // default via the sweep entry points would re-run big scenarios;
        // here we only smoke-test the cheapest ablation directly.
        let scenario = small(Scenario::default());
        let m = measure_lid(&scenario, &p);
        assert!(m.f_cluster.mean >= 0.0);
        let table = mobility_sensitivity_tiny(&p);
        assert_eq!(table.len(), 2);
    }

    /// A tiny two-row variant of the mobility ablation for tests.
    fn mobility_sensitivity_tiny(protocol: &Protocol) -> Table {
        let mut t = Table::new(["mobility", "lambda sim"]);
        for (name, kind) in [
            ("erd", MobilityKind::EpochRandomDirection { epoch: 20.0 }),
            ("rwp", MobilityKind::RandomWaypoint { pause: 0.0 }),
        ] {
            let scenario = Scenario {
                nodes: 100,
                side: 500.0,
                radius: 90.0,
                mobility: kind,
                ..Scenario::default()
            };
            let m = measure_lid(&scenario, protocol);
            t.row([name.to_string(), fmt_sig(m.link_change_rate.mean, 4)]);
        }
        t
    }
}

/// ABL4 — closes the ROUTE dispersion loop: instead of assuming a size
/// distribution, measure the empirical cluster sizes during the run and
/// evaluate the exact dispersion-weighted bound
/// `f_route = 2μ · E[L(m)·m] / E[m]` with them. If the reconstruction is
/// right, this empirical prediction should land on the simulated ROUTE
/// frequency without any fitted constant.
pub fn route_dispersion_closure(protocol: &Protocol, range_fractions: &[f64]) -> Table {
    use manet_cluster::{ClusterStats, Clustering, LowestId};
    use manet_geom::linkdist::DISC_SAME_RADIUS_LINK_PROB;
    use manet_routing::intra::{IntraClusterRouting, RouteUpdateOutcome};
    use manet_sim::QuietCtx;
    use manet_stack::ProtocolStack;
    use manet_util::Samples;

    let mut t = Table::new([
        "r/a",
        "f_route sim",
        "pred (κ-model sizes)",
        "pred (measured links)",
        "physical-churn msgs",
        "ratio (phys)",
        "kappa_eff",
    ]);
    let base = Scenario::default();
    for &frac in range_fractions {
        let scenario = Scenario {
            radius: frac * base.side,
            ..base
        };
        let seed = protocol.seeds.first().copied().unwrap_or(1);
        let world = crate::harness::build_world(&scenario, protocol.dt, seed);
        let clustering = Clustering::form(LowestId, world.topology());
        let stack = ProtocolStack::ideal(world, clustering, IntraClusterRouting::new());
        let mut stack =
            crate::harness::StackDriver::with_shards(stack, crate::harness::default_shards())
                .expect("--shards layout incompatible with the scenario radius");
        let mut quiet = QuietCtx::new();
        stack.prime(&mut quiet.ctx());
        let warm = (protocol.warmup / protocol.dt) as usize;
        for _ in 0..warm {
            stack.tick(&mut quiet.ctx());
        }
        stack.world_mut().begin_measurement();
        let mut route = RouteUpdateOutcome::default();
        let mut phys_msgs = 0u64;
        let mut sizes = Samples::new();
        // Paired per-cluster samples: (size m, actual intra-cluster links).
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        let ticks = (protocol.measure / protocol.dt) as usize;
        for k in 0..ticks {
            let report = stack.tick(&mut quiet.ctx());
            route.absorb(report.route);
            let (world, clustering) = (stack.world(), stack.cluster());
            // Physical intra-cluster churn: link events whose endpoints are
            // co-clustered — the only changes the paper's Eqn 13 counts.
            for e in world.last_events() {
                let h = clustering.head_of(e.a);
                if h == clustering.head_of(e.b) {
                    phys_msgs += 1 + clustering.members_of(h).len() as u64;
                }
            }
            if k % 8 == 0 {
                let topo = world.topology();
                for (head, members) in clustering.clusters() {
                    let m = members.len() as f64 + 1.0;
                    sizes.push(m);
                    let mut nodes = members.clone();
                    nodes.push(head);
                    let mut links = 0usize;
                    for i in 0..nodes.len() {
                        for j in (i + 1)..nodes.len() {
                            if topo.are_linked(nodes[i], nodes[j]) {
                                links += 1;
                            }
                        }
                    }
                    pairs.push((m, links as f64));
                }
            }
        }
        let (world, clustering) = (stack.world(), stack.cluster());
        let n = world.node_count();
        let elapsed = world.measured_time();
        let f_route_sim = route.route_messages as f64 / n as f64 / elapsed;

        // Dispersion-weighted bounds: κ geometry model vs measured links.
        let kappa = DISC_SAME_RADIUS_LINK_PROB;
        let l_model = |m: f64| (m - 1.0).max(0.0) + kappa * ((m - 1.0) * (m - 2.0) / 2.0).max(0.0);
        let e_m = sizes.raw_moment(1);
        let e_lm_model: f64 =
            sizes.values().iter().map(|&m| l_model(m) * m).sum::<f64>() / sizes.len() as f64;
        let e_lm_meas: f64 = pairs.iter().map(|&(m, l)| l * m).sum::<f64>() / pairs.len() as f64;
        let mu = manet_mobility::rates::per_link_break_rate(scenario.radius, scenario.speed);
        let pred_model = 2.0 * mu * e_lm_model / e_m;
        let pred_meas = 2.0 * mu * e_lm_meas / e_m;
        // Effective member-pair link probability vs the κ disc model.
        let (mut link_sum, mut pair_sum) = (0.0, 0.0);
        for &(m, l) in &pairs {
            let member_links = (l - (m - 1.0)).max(0.0);
            let member_pairs = ((m - 1.0) * (m - 2.0) / 2.0).max(0.0);
            link_sum += member_links;
            pair_sum += member_pairs;
        }
        let kappa_eff = if pair_sum > 0.0 {
            link_sum / pair_sum
        } else {
            0.0
        };

        let stats = ClusterStats::measure(clustering);
        let _ = stats;
        let f_phys = phys_msgs as f64 / n as f64 / elapsed;
        t.row([
            fmt_sig(frac, 3),
            fmt_sig(f_route_sim, 3),
            fmt_sig(pred_model, 3),
            fmt_sig(pred_meas, 3),
            fmt_sig(f_phys, 3),
            fmt_sig(f_phys / pred_meas, 3),
            fmt_sig(kappa_eff, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod abl4_tests {
    use super::*;

    #[test]
    fn dispersion_closure_table_is_internally_consistent() {
        let p = Protocol {
            warmup: 15.0,
            measure: 45.0,
            seeds: vec![5],
            dt: 0.5,
        };
        let t = route_dispersion_closure(&p, &[0.12]);
        assert_eq!(t.len(), 1);
    }
}

/// ABL5 — epoch-length sensitivity: the paper's simulation model redraws
/// directions every `τ` seconds (a configurable the paper leaves
/// unexplored). Measured answer: the CV closed forms are `τ`-invariant —
/// the link-generation flux depends only on the instantaneous
/// relative-speed distribution, which the epoch model preserves at every
/// `τ` — so the paper's (unstated) epoch choice cannot have affected its
/// Figures 1–3.
pub fn epoch_sensitivity(protocol: &Protocol) -> Table {
    let mut t = Table::new([
        "epoch tau [s]",
        "tau / link lifetime",
        "f_hello sim",
        "f_hello ana",
        "ratio",
    ]);
    let base = Scenario::default();
    let link_lifetime = std::f64::consts::PI.powi(2) * base.radius / (8.0 * base.speed);
    for tau in [2.0, 5.0, 20.0, 100.0] {
        let scenario = Scenario {
            epoch: tau,
            mobility: manet_sim::MobilityKind::EpochRandomDirection { epoch: tau },
            ..base
        };
        let m = measure_lid(&scenario, protocol);
        let model = OverheadModel::new(scenario.params(), DegreeModel::TorusExact);
        let ana = model.f_hello();
        t.row([
            fmt_sig(tau, 3),
            fmt_sig(tau / link_lifetime, 3),
            fmt_sig(m.f_hello.mean, 4),
            fmt_sig(ana, 4),
            fmt_sig(m.f_hello.mean / ana, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod abl5_tests {
    use super::*;

    #[test]
    fn long_epochs_match_cv_analysis() {
        let p = Protocol {
            warmup: 20.0,
            measure: 80.0,
            seeds: vec![3],
            dt: 0.5,
        };
        let scenario = Scenario {
            nodes: 150,
            side: 600.0,
            radius: 100.0,
            epoch: 60.0,
            mobility: manet_sim::MobilityKind::EpochRandomDirection { epoch: 60.0 },
            ..Scenario::default()
        };
        let m = measure_lid(&scenario, &p);
        let model = OverheadModel::new(scenario.params(), DegreeModel::TorusExact);
        let ratio = m.f_hello.mean / model.f_hello();
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }
}
