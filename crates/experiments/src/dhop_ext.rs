//! EXT3 — d-hop clustering (the paper's Section 7 future-work direction):
//! greedy d-hop LID and Max-Min formation against the disc-bound head-ratio
//! heuristic, plus dynamic d-hop maintenance overhead.

use crate::harness::{build_world, Scenario};
use manet_cluster::{DHopClustering, LowestId};
use manet_model::dhop as model_dhop;
use manet_util::stats::Summary;
use manet_util::table::{fmt_sig, Table};

/// One row of the formation comparison at a hop bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhopRow {
    /// Hop bound `d`.
    pub hops: usize,
    /// Greedy d-hop LID head count (Monte-Carlo mean over placements).
    pub greedy_heads: f64,
    /// Max-Min head count (same placements).
    pub maxmin_heads: f64,
    /// Disc-bound heuristic `N·P_h`.
    pub heuristic_heads: f64,
}

/// Static formation comparison over `replications` uniform placements.
pub fn formation_rows(scenario: &Scenario, replications: u64) -> Vec<DhopRow> {
    (1..=3usize)
        .map(|hops| {
            let mut greedy = Summary::new();
            let mut maxmin = Summary::new();
            for seed in 0..replications {
                let world = build_world(scenario, 0.25, 0xD0 ^ seed.wrapping_mul(77));
                let topo = world.topology();
                let g = DHopClustering::form(&LowestId, topo, hops);
                debug_assert!(g.check_invariants(topo).is_ok());
                greedy.push(g.head_count() as f64);
                let m = DHopClustering::form_max_min(topo, hops);
                debug_assert!(m.check_invariants(topo).is_ok());
                maxmin.push(m.head_count() as f64);
            }
            DhopRow {
                hops,
                greedy_heads: greedy.mean(),
                maxmin_heads: maxmin.mean(),
                heuristic_heads: model_dhop::expected_cluster_count(&scenario.params(), hops),
            }
        })
        .collect()
}

/// Renders the formation comparison.
pub fn formation_table(rows: &[DhopRow]) -> Table {
    let mut t = Table::new([
        "hops",
        "greedy d-LID heads",
        "Max-Min heads",
        "disc-bound heuristic",
    ]);
    for r in rows {
        t.row([
            r.hops.to_string(),
            fmt_sig(r.greedy_heads, 4),
            fmt_sig(r.maxmin_heads, 4),
            fmt_sig(r.heuristic_heads, 4),
        ]);
    }
    t
}

/// Dynamic d-hop stack rates: per-node CLUSTER and ROUTE message rates vs
/// hop bound (the routing layer is generic over cluster assignments, so
/// the same proactive machinery runs unchanged on d-hop structures).
pub fn maintenance_rates(scenario: &Scenario, measure: f64) -> Vec<DhopRates> {
    use manet_routing::intra::{IntraClusterRouting, UpdatePolicy};
    use manet_sim::QuietCtx;
    use manet_stack::{DHopLayer, ProtocolStack, StackReport};
    (1..=3usize)
        .map(|hops| {
            let world = build_world(scenario, 0.5, 0xD1);
            let c = DHopClustering::form(&LowestId, world.topology(), hops);
            // Rate-limited updates: raw per-change flooding at d ≥ 2 is
            // dominated by membership-churn multiplicities (see ABL4);
            // the deployable comparison is the coalesced one.
            let routing =
                IntraClusterRouting::with_policy(UpdatePolicy::Coalesced { interval: 10.0 });
            let stack = ProtocolStack::ideal(world, DHopLayer::new(LowestId, c), routing);
            let mut stack =
                crate::harness::StackDriver::with_shards(stack, crate::harness::default_shards())
                    .expect("--shards layout incompatible with the scenario radius");
            let mut quiet = QuietCtx::new();
            stack.prime(&mut quiet.ctx());
            stack.world_mut().run_for(30.0, &mut quiet.ctx());
            {
                let (world, layer, _) = stack.split_mut();
                layer
                    .clustering // stage-exempt: single-layer d-hop study
                    .maintain(&layer.policy, world.topology(), &mut quiet.ctx());
            }
            stack.world_mut().begin_measurement();
            let mut agg = StackReport::default();
            let ticks = (measure / stack.world().dt()) as usize;
            let mut p_acc = 0.0;
            for _ in 0..ticks {
                let report = stack.tick(&mut quiet.ctx());
                p_acc += report.head_ratio;
                agg.absorb(report);
            }
            let world = stack.world();
            let per_node = |x: u64| x as f64 / world.node_count() as f64 / world.measured_time();
            DhopRates {
                hops,
                f_cluster: per_node(agg.cluster.maintenance.total_messages()),
                f_route: per_node(agg.route.route_messages),
                route_entries: per_node(agg.route.route_entries),
                steady_p: p_acc / ticks as f64,
            }
        })
        .collect()
}

/// Measured d-hop stack rates at one hop bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhopRates {
    /// Hop bound.
    pub hops: usize,
    /// CLUSTER messages per node per second.
    pub f_cluster: f64,
    /// ROUTE messages per node per second (10 s coalesced updates).
    pub f_route: f64,
    /// ROUTE table entries per node per second.
    pub route_entries: f64,
    /// Time-averaged head ratio.
    pub steady_p: f64,
}

/// Renders the maintenance-rate comparison.
pub fn maintenance_table(rows: &[DhopRates]) -> Table {
    let mut t = Table::new([
        "hops",
        "f_cluster [msg/node/s]",
        "f_route (10s coalesced)",
        "route entries /node/s",
        "steady P",
    ]);
    for r in rows {
        t.row([
            r.hops.to_string(),
            fmt_sig(r.f_cluster, 3),
            fmt_sig(r.f_route, 3),
            fmt_sig(r.route_entries, 4),
            fmt_sig(r.steady_p, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario {
            nodes: 100,
            side: 500.0,
            radius: 90.0,
            ..Scenario::default()
        }
    }

    #[test]
    fn formation_heads_decrease_with_hops() {
        let rows = formation_rows(&small(), 3);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(w[1].greedy_heads < w[0].greedy_heads, "{w:?}");
            assert!(w[1].heuristic_heads < w[0].heuristic_heads);
        }
        // Greedy enforces head separation → fewer heads than Max-Min.
        for r in &rows {
            assert!(r.greedy_heads <= r.maxmin_heads + 1.0, "{r:?}");
        }
        let t = formation_table(&rows);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn maintenance_runs_and_reports() {
        let rows = maintenance_rates(&small(), 40.0);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.f_cluster >= 0.0);
            assert!(r.f_route >= 0.0);
            assert!(r.route_entries >= r.f_route, "entries carry full tables");
            assert!(r.steady_p > 0.0 && r.steady_p < 1.0);
        }
        // Bigger clusters, fewer heads.
        assert!(rows[2].steady_p < rows[0].steady_p);
    }
}
