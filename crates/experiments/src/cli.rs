//! Shared experiment-binary CLI plumbing.
//!
//! Every experiment binary used to hand-roll the same argv dance:
//! `init_serve_from_args` for `--serve-metrics`, `init_shards_from_args`
//! for `--shards`, an ad-hoc `--quick` scan, and a trailing
//! [`maybe_trace`] for `--trace-out` and friends. [`BinArgs`] is that
//! dance as one call pair — [`BinArgs::init`] at the top of `main`,
//! [`BinArgs::finish`] at the bottom — plus [`BinArgs::spec`], which
//! folds the parsed layout into a [`ScenarioSpec`] so a binary is a thin
//! wrapper over the same [`run_scenario`](crate::spec::run_scenario)
//! entry the jobs server executes.

use crate::harness::{Protocol, Scenario};
use crate::spec::{ScenarioSpec, SpecKind};
use crate::trace::{init_serve_from_args, init_shards_from_args, maybe_trace, ServeGuard};
use manet_geom::ShardDims;

/// Whether the bare `--quick` flag appears in the process arguments.
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The parsed shared flags of one experiment-binary invocation. Holds
/// the `--serve-metrics` guard, so keep it alive until end of `main`
/// (which [`BinArgs::finish`] does for you).
#[derive(Debug)]
pub struct BinArgs {
    label: &'static str,
    /// Parsed `--shards KXxKY`, also installed as the process-wide
    /// harness default.
    pub shards: Option<ShardDims>,
    /// Bare `--quick` flag: run the short test protocol.
    pub quick: bool,
    /// Held (not read) so the `--serve-metrics` endpoint outlives the
    /// experiment; dropped by [`BinArgs::finish`] honoring
    /// `--serve-hold`.
    _serve: ServeGuard,
}

impl BinArgs {
    /// Parses the shared flags, binds the live metrics endpoint when
    /// `--serve-metrics` asks for one, installs `--shards` as the
    /// process-wide default, and prints the topology header.
    pub fn init(label: &'static str) -> BinArgs {
        let serve = init_serve_from_args();
        let shards = init_shards_from_args();
        BinArgs {
            label,
            shards,
            quick: quick_from_args(),
            _serve: serve,
        }
    }

    /// The protocol these flags select: [`Protocol::quick`] under
    /// `--quick`, the paper default otherwise.
    pub fn protocol(&self) -> Protocol {
        if self.quick {
            Protocol::quick()
        } else {
            Protocol::default()
        }
    }

    /// The [`ScenarioSpec`] these flags select for `kind`: the preset
    /// with this invocation's shard layout and protocol folded in —
    /// exactly what `POST /jobs` with `{"kind": "<kind>"}` (plus the
    /// same overrides) would run.
    pub fn spec(&self, kind: SpecKind) -> ScenarioSpec {
        let protocol = self.protocol();
        ScenarioSpec {
            warmup: protocol.warmup,
            measure: protocol.measure,
            dt: protocol.dt,
            seeds: protocol.seeds,
            shards: self.shards,
            ..ScenarioSpec::preset(kind)
        }
    }

    /// End-of-`main` hook: runs the traced twin when `--trace-out` (or
    /// any other telemetry flag) asks for one, then drops the serve
    /// guard, honoring `--serve-hold`.
    pub fn finish(self, scenario: &Scenario, protocol: &Protocol) {
        maybe_trace(self.label, scenario, protocol);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_args_default_to_the_paper_protocol_without_flags() {
        // The test harness passes none of the shared flags.
        assert!(!quick_from_args());
        let args = BinArgs::init("test");
        assert_eq!(args.shards, None);
        assert!(!args.quick);
        assert_eq!(args.protocol(), Protocol::default());
        let spec = args.spec(SpecKind::Fig1VsRange);
        assert_eq!(spec, ScenarioSpec::preset(SpecKind::Fig1VsRange));
        args.finish(&Scenario::default(), &Protocol::default());
    }
}
