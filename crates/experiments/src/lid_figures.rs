//! Figures 4 and 5: the Lowest-ID head-ratio analysis.

use manet_cluster::{ClusterStats, Clustering, LowestId};
use manet_geom::{Metric, SquareRegion};
use manet_model::{lid, DegreeModel, NetworkParams};
use manet_sim::Topology;
use manet_util::stats::Summary;
use manet_util::table::{fmt_sig, Table};
use manet_util::Rng;

/// One row of Figure 4: the Eqn 16 residual and the approximation quality
/// at a given closed-neighborhood size `d+1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Row {
    /// Closed neighborhood size `d+1`.
    pub closed_neighborhood: f64,
    /// Exact `P` from Eqn 16 (bisection).
    pub p_exact: f64,
    /// Approximate `P = 1/√(d+1)` (Eqn 17).
    pub p_approx: f64,
    /// The dropped residual `(1−P)^{d+1}` (Figure 4a).
    pub residual: f64,
}

/// Figure 4: sweeps `d+1 ∈ {2 … 100}`.
pub fn fig4() -> Vec<Fig4Row> {
    (2..=100)
        .step_by(2)
        .map(|k| {
            let d = k as f64 - 1.0;
            let p_exact = lid::p_exact(d).expect("Eqn 16 brackets a root");
            Fig4Row {
                closed_neighborhood: k as f64,
                p_exact,
                p_approx: lid::p_approx(d),
                residual: lid::eqn16_residual(p_exact, d),
            }
        })
        .collect()
}

/// Renders Figure 4 as a table.
pub fn fig4_table(rows: &[Fig4Row]) -> Table {
    let mut t = Table::new(["d+1", "P exact (Eqn16)", "P approx (Eqn17)", "(1-P)^(d+1)"]);
    for r in rows {
        t.row([
            fmt_sig(r.closed_neighborhood, 3),
            fmt_sig(r.p_exact, 4),
            fmt_sig(r.p_approx, 4),
            fmt_sig(r.residual, 3),
        ]);
    }
    t
}

/// One row of Figure 5: expected vs simulated cluster counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Swept value (`N` for 5a, `r/a` for 5b).
    pub x: f64,
    /// Monte-Carlo mean cluster count from true LID formation.
    pub sim_clusters: f64,
    /// Cross-replication 95% CI half-width.
    pub sim_ci95: f64,
    /// The paper's analysis `N·P` with `P` from Eqn 18.
    pub paper_analysis: f64,
    /// This work's Caro–Wei comparison bound `N·P_CW`.
    pub caro_wei: f64,
}

/// Monte-Carlo LID formation on static uniform placements (the paper's
/// Figure 5 setting), measured over `replications` seeds.
fn simulate_formation(n: usize, side: f64, radius: f64, replications: u64) -> (f64, f64) {
    let region = SquareRegion::new(side);
    let mut counts = Summary::new();
    for seed in 0..replications {
        let mut rng = Rng::seed_from_u64(0xF1605EED ^ (seed * 0x9E37).wrapping_mul(n as u64));
        let positions: Vec<_> = (0..n).map(|_| region.sample_uniform(&mut rng)).collect();
        let topo = Topology::compute(&positions, region, radius, Metric::Euclidean);
        let clustering = Clustering::form(LowestId, &topo);
        debug_assert!(clustering.check_invariants(&topo).is_ok());
        counts.push(ClusterStats::measure(&clustering).cluster_count as f64);
    }
    (counts.mean(), counts.ci95_half_width())
}

/// Figure 5(a): cluster count vs network size `N` at fixed `r = 0.165·a`.
pub fn fig5a(replications: u64) -> Vec<Fig5Row> {
    let side = 1000.0;
    let radius = 165.0;
    [50usize, 100, 200, 400, 700, 1000]
        .into_iter()
        .map(|n| {
            let params = NetworkParams::new(n, side, radius, 1.0).expect("valid");
            let (sim, ci) = simulate_formation(n, side, radius, replications);
            Fig5Row {
                x: n as f64,
                sim_clusters: sim,
                sim_ci95: ci,
                paper_analysis: lid::expected_cluster_count(&params, DegreeModel::BorderCorrected),
                caro_wei: n as f64 * lid::p_caro_wei(&params, DegreeModel::BorderCorrected),
            }
        })
        .collect()
}

/// Figure 5(b): cluster count vs transmission range at fixed `N = 400`.
pub fn fig5b(replications: u64) -> Vec<Fig5Row> {
    let side = 1000.0;
    let n = 400usize;
    [0.05, 0.10, 0.165, 0.25, 0.35, 0.50]
        .into_iter()
        .map(|frac| {
            let radius = frac * side;
            let params = NetworkParams::new(n, side, radius, 1.0).expect("valid");
            let (sim, ci) = simulate_formation(n, side, radius, replications);
            Fig5Row {
                x: frac,
                sim_clusters: sim,
                sim_ci95: ci,
                paper_analysis: lid::expected_cluster_count(&params, DegreeModel::BorderCorrected),
                caro_wei: n as f64 * lid::p_caro_wei(&params, DegreeModel::BorderCorrected),
            }
        })
        .collect()
}

/// Renders a Figure 5 panel as a table.
pub fn fig5_table(x_label: &str, rows: &[Fig5Row]) -> Table {
    let mut t = Table::new([
        x_label,
        "clusters sim",
        "±95%",
        "paper (Eqn18)",
        "Caro-Wei (this work)",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.x, 4),
            fmt_sig(r.sim_clusters, 4),
            fmt_sig(r.sim_ci95, 2),
            fmt_sig(r.paper_analysis, 4),
            fmt_sig(r.caro_wei, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_residual_vanishes_and_curves_converge() {
        let rows = fig4();
        assert_eq!(rows.len(), 50);
        // Figure 4a: the residual is monotonically vanishing.
        assert!(rows.last().unwrap().residual < 1e-3);
        assert!(rows.first().unwrap().residual > rows.last().unwrap().residual);
        // Figure 4b: approximation within 5% of exact at large d+1.
        let last = rows.last().unwrap();
        assert!((last.p_exact - last.p_approx).abs() / last.p_exact < 0.05);
    }

    #[test]
    fn fig5a_shapes() {
        let rows = fig5a(3);
        // Simulated cluster count grows with N but sublinearly.
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.sim_clusters > first.sim_clusters);
        let n_ratio = last.x / first.x;
        assert!(last.sim_clusters / first.sim_clusters < n_ratio);
        // Paper analysis overestimates true LID cluster counts (see
        // EXPERIMENTS.md): every analytic point sits above simulation.
        for r in &rows {
            assert!(r.paper_analysis > r.sim_clusters, "row {:?}", r);
            // …and Caro–Wei undercuts simulation.
            assert!(
                r.caro_wei < r.sim_clusters + r.sim_ci95 + 1.0,
                "row {:?}",
                r
            );
        }
    }

    #[test]
    fn fig5b_cluster_count_decreases_with_range() {
        let rows = fig5b(3);
        for w in rows.windows(2) {
            assert!(
                w[1].sim_clusters <= w[0].sim_clusters + 1.0,
                "cluster count must shrink with range: {:?}",
                w
            );
        }
        // Tables render.
        let t = fig5_table("r/a", &rows);
        assert_eq!(t.len(), rows.len());
    }
}
