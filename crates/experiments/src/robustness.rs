//! ROB1 — control overhead under a lossy channel with node churn.
//!
//! The paper's frequencies (Eqns 4–13) are **lower bounds**: they assume
//! every control message is delivered and every node stays up. This
//! experiment injects a fault plane — per-message loss (Bernoulli or
//! Gilbert–Elliott burst) and crash/recover node churn — and runs the
//! self-healing stack (lossy HELLO beacons, retry-with-backoff cluster
//! maintenance, fallback re-sync routing). It reports the *measured*
//! overhead, decomposed into ordinary traffic vs retransmissions vs repair
//! traffic, against the analytical ideal at the measured head ratio. At
//! `p = 0` with no churn the fault machinery is pass-through and the
//! measured total collapses onto the ideal stack's numbers.

use crate::harness::{
    analysis_at, CancelToken, Estimate, Protocol, Scenario, ShardRun, StackDriver,
    CANCEL_CHECK_TICKS,
};
use manet_cluster::{Backoff, Clustering, LowestId, SelfHealing};
use manet_geom::ShardDims;
use manet_routing::intra::IntraClusterRouting;
use manet_sim::{
    ChurnSchedule, FaultPlan, HelloMode, HelloProtocol, LossModel, MessageKind, QuietCtx,
    SimBuilder, STREAM_CLUSTER,
};
use manet_stack::{ProtocolStack, StackReport};
use manet_util::stats::Summary;
use manet_util::table::{fmt_sig, Table};

/// Fault-plane configuration for one measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-message channel loss model (shared by all three layers, drawn
    /// from independent per-layer streams).
    pub loss: LossModel,
    /// Per-node crash rate, crashes/s (`0` disables churn).
    pub crash_rate: f64,
    /// Mean downtime per crash, seconds.
    pub mean_downtime: f64,
    /// Periodic HELLO beacon interval, seconds (soft timeout is 3×).
    pub hello_interval: f64,
    /// CLUSTER retry backoff.
    pub backoff: Backoff,
    /// Repair sweep period, ticks.
    pub sweep_interval: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loss: LossModel::Ideal,
            crash_rate: 0.0,
            mean_downtime: 20.0,
            hello_interval: 1.0,
            backoff: Backoff::default(),
            sweep_interval: 8,
        }
    }
}

/// Measured per-node control rates under faults (msgs/node/s unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultMeasured {
    /// Attempted HELLO beacons.
    pub f_hello: Estimate,
    /// First-attempt CLUSTER sends from ordinary mobility churn.
    pub f_cluster: Estimate,
    /// CLUSTER retransmissions (retries of lost sends).
    pub f_retransmit: Estimate,
    /// CLUSTER repair traffic (crashed-head fallout, post-recovery fixes).
    pub f_repair: Estimate,
    /// Regular ROUTE update messages.
    pub f_route: Estimate,
    /// ROUTE fallback re-sync messages.
    pub f_resync: Estimate,
    /// All attempted control messages (sum of the above).
    pub total: Estimate,
    /// Fraction of attempted CLUSTER + ROUTE messages the channel dropped.
    pub lost_fraction: Estimate,
    /// Time-averaged head ratio `P` over the window.
    pub head_ratio: Estimate,
    /// P1/P2 violations among live nodes after the quiescence drain
    /// (self-healing must push this to zero).
    pub violations_end: Estimate,
}

impl FaultMeasured {
    /// The analytical ideal total (HELLO + CLUSTER + ROUTE lower bounds) at
    /// this measurement's head ratio.
    pub fn ideal_bound(&self, scenario: &Scenario) -> f64 {
        let b = analysis_at(scenario, self.head_ratio.mean);
        b.f_hello + b.f_cluster + b.f_route
    }
}

/// Runs the self-healing stack (lossy HELLO + retrying cluster maintenance
/// + re-syncing intra-cluster routing) under `config` and measures rates.
///
/// Honors the process-wide [`crate::harness::default_shards`] layout.
pub fn measure_with_faults(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &FaultConfig,
) -> FaultMeasured {
    measure_with_faults_sharded(scenario, protocol, config, crate::harness::default_shards())
}

/// [`measure_with_faults`] over an optional shard layout (`None` =
/// monolithic; `Some(dims)` runs the topology stage on the ghost-margin
/// shard plane, bit-identical for a fixed seed at any dims).
///
/// # Panics
///
/// Panics when the layout's tiles would be narrower than the radio
/// radius; validate dims against the scenario up front for a friendlier
/// error.
pub fn measure_with_faults_sharded(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &FaultConfig,
    shards: Option<ShardDims>,
) -> FaultMeasured {
    let run = shards.map(ShardRun::new);
    measure_with_faults_ctl(scenario, protocol, config, run.as_ref(), None)
        .expect("a measurement without a cancel token cannot be cancelled")
}

/// The cancellable core of [`measure_with_faults`]: full [`ShardRun`]
/// options plus an optional [`CancelToken`] polled every
/// [`CANCEL_CHECK_TICKS`] ticks. Returns `None` when cancellation fired
/// mid-run. The uncancelled result is bit-identical to
/// [`measure_with_faults_sharded`] at the same layout — the jobs plane
/// and the robustness bin share this loop.
///
/// # Panics
///
/// Panics when the layout's tiles would be narrower than the radio
/// radius; validate dims against the scenario up front for a friendlier
/// error.
pub fn measure_with_faults_ctl(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &FaultConfig,
    run: Option<&ShardRun>,
    cancel: Option<&CancelToken>,
) -> Option<FaultMeasured> {
    let cancelled = |c: Option<&CancelToken>| c.is_some_and(|t| t.is_cancelled());
    let mut f_hello = Summary::new();
    let mut f_cluster = Summary::new();
    let mut f_retransmit = Summary::new();
    let mut f_repair = Summary::new();
    let mut f_route = Summary::new();
    let mut f_resync = Summary::new();
    let mut total = Summary::new();
    let mut lost_fraction = Summary::new();
    let mut head_ratio = Summary::new();
    let mut violations_end = Summary::new();

    for &seed in &protocol.seeds {
        if cancelled(cancel) {
            return None;
        }
        let n = scenario.nodes;
        let horizon = protocol.warmup + protocol.measure + 1.0;
        let churn = if config.crash_rate > 0.0 {
            ChurnSchedule::poisson(
                n,
                config.crash_rate,
                config.mean_downtime,
                horizon,
                seed ^ 0xC0_FFEE,
            )
            .expect("churn config validated by construction")
        } else {
            ChurnSchedule::none()
        };
        let plan = FaultPlan {
            loss: config.loss,
            churn,
            seed: seed ^ 0xFA_017,
        }
        .validated()
        .expect("loss config validated by construction");
        let world = SimBuilder::new()
            .side(scenario.side)
            .nodes(n)
            .radius(scenario.radius)
            .speed(scenario.speed)
            .mobility(scenario.mobility)
            .dt(protocol.dt)
            .seed(seed)
            .hello_mode(HelloMode::Disabled) // beacons are driven lossily below
            .fault(plan)
            .build();
        let hello = HelloProtocol::new(n, config.hello_interval, 3.0 * config.hello_interval);
        let clustering = Clustering::form(LowestId, world.topology());
        let healer = SelfHealing::new(clustering, config.backoff, config.sweep_interval);
        let stack = ProtocolStack::faulty(world, healer, IntraClusterRouting::new(), hello);
        let mut stack = StackDriver::with_shard_run(stack, run)
            .expect("shard layout incompatible with scenario radius");
        let mut quiet = QuietCtx::new();
        stack.prime(&mut quiet.ctx());

        let warm_ticks = (protocol.warmup / protocol.dt).round() as usize;
        for tick in 0..warm_ticks {
            if tick % CANCEL_CHECK_TICKS == 0 && cancelled(cancel) {
                return None;
            }
            stack.tick(&mut quiet.ctx());
        }

        // The stack records each tick's decomposed traffic into the shared
        // counters (the RETX/REPAIR categories included) and the rates are
        // read back from there, so the accounting path the paper's tooling
        // uses is exercised end to end.
        stack.world_mut().begin_measurement();
        let mut agg = StackReport::default();
        let mut p_samples = Summary::new();
        let ticks = (protocol.measure / protocol.dt).round() as usize;
        for tick in 0..ticks {
            if tick % CANCEL_CHECK_TICKS == 0 && cancelled(cancel) {
                return None;
            }
            let report = stack.tick(&mut quiet.ctx());
            p_samples.push(report.head_ratio);
            agg.absorb(report);
        }
        let elapsed = stack.world().measured_time();
        let counters = stack.world().counters().clone();
        let rate = |kind| counters.per_node_rate(kind, n, elapsed);

        // Quiescence drain: freeze the world, heal the channel, and give the
        // repair machinery one sweep's worth of passes to converge.
        let mut fine = FaultPlan::ideal().channel(STREAM_CLUSTER);
        let mut left = agg.cluster.violations_left;
        let (world, healer, _) = stack.split_mut();
        for _ in 0..config.sweep_interval + 2 {
            left = healer // stage-exempt: post-run repair drain, not a tick
                .step(world.topology(), world.alive(), &mut fine, &mut quiet.ctx())
                .violations_left;
        }

        let route = agg.route;
        let per_node = |count: u64| count as f64 / n as f64 / elapsed;
        f_hello.push(rate(MessageKind::Hello));
        f_cluster.push(rate(MessageKind::Cluster));
        f_retransmit.push(rate(MessageKind::Retransmit));
        f_repair.push(rate(MessageKind::Repair));
        f_route.push(per_node(route.route_messages));
        f_resync.push(per_node(route.resync_messages));
        total.push(per_node(agg.attempted_messages()));
        let attempted = agg.cluster.maintenance.attempted_messages() + route.attempted_messages();
        let lost = agg.cluster.maintenance.lost_sends + route.lost_messages;
        lost_fraction.push(if attempted == 0 {
            0.0
        } else {
            lost as f64 / attempted as f64
        });
        head_ratio.push(p_samples.mean());
        violations_end.push(left as f64);
    }

    Some(FaultMeasured {
        f_hello: f_hello.into(),
        f_cluster: f_cluster.into(),
        f_retransmit: f_retransmit.into(),
        f_repair: f_repair.into(),
        f_route: f_route.into(),
        f_resync: f_resync.into(),
        total: total.into(),
        lost_fraction: lost_fraction.into(),
        head_ratio: head_ratio.into(),
        violations_end: violations_end.into(),
    })
}

/// The [`FaultConfig`] of a Bernoulli-loss row at stationary loss `p`
/// (the ideal channel at `p = 0`) — the single source of truth shared by
/// [`sweep_loss`] and the jobs plane's `robustness` scenario kind.
pub fn bernoulli_config(p: f64, crash_rate: f64) -> FaultConfig {
    FaultConfig {
        loss: if p == 0.0 {
            LossModel::Ideal
        } else {
            LossModel::Bernoulli { p }
        },
        crash_rate,
        ..FaultConfig::default()
    }
}

/// The [`FaultConfig`] of a Gilbert–Elliott burst row whose *stationary*
/// loss matches `p`: the bad state is mostly-lossy and sticky, and
/// `p_gb` is chosen so `π_b · loss_bad = p` — shared by [`burst_row`]
/// and the jobs plane.
pub fn burst_config(p: f64, crash_rate: f64) -> FaultConfig {
    let loss_bad = 0.8;
    let p_bg = 0.25;
    let p_gb = p * p_bg / (loss_bad - p).max(1e-9);
    FaultConfig {
        loss: LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good: 0.0,
            loss_bad,
        },
        crash_rate,
        ..FaultConfig::default()
    }
}

/// One cancellable robustness row: Bernoulli (or, with `burst`, a
/// stationary-loss-matched Gilbert–Elliott channel) at loss `p`. Returns
/// `None` when cancellation fired mid-measurement.
pub fn row_ctl(
    scenario: &Scenario,
    protocol: &Protocol,
    p: f64,
    crash_rate: f64,
    burst: bool,
    run: Option<&ShardRun>,
    cancel: Option<&CancelToken>,
) -> Option<RobustnessRow> {
    let config = if burst {
        burst_config(p, crash_rate)
    } else {
        bernoulli_config(p, crash_rate)
    };
    let measured = measure_with_faults_ctl(scenario, protocol, &config, run, cancel)?;
    Some(RobustnessRow {
        loss_p: p,
        crash_rate,
        ideal_bound: measured.ideal_bound(scenario),
        measured,
    })
}

/// One sweep row: a loss probability × churn setting and its measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessRow {
    /// Stationary per-message loss probability of the row's channel.
    pub loss_p: f64,
    /// Per-node crash rate, crashes/s.
    pub crash_rate: f64,
    /// Measured rates.
    pub measured: FaultMeasured,
    /// Analytical ideal total at the measured head ratio.
    pub ideal_bound: f64,
}

/// Sweeps Bernoulli loss probabilities at a fixed churn setting.
pub fn sweep_loss(
    scenario: &Scenario,
    protocol: &Protocol,
    ps: &[f64],
    crash_rate: f64,
) -> Vec<RobustnessRow> {
    sweep_loss_sharded(scenario, protocol, ps, crash_rate, None)
}

/// [`sweep_loss`] over an optional shard layout (see
/// [`measure_with_faults_sharded`]).
pub fn sweep_loss_sharded(
    scenario: &Scenario,
    protocol: &Protocol,
    ps: &[f64],
    crash_rate: f64,
    shards: Option<ShardDims>,
) -> Vec<RobustnessRow> {
    let run = shards.map(ShardRun::new);
    sweep_ctl(
        scenario,
        protocol,
        ps,
        crash_rate,
        false,
        run.as_ref(),
        None,
    )
    .expect("a sweep without a cancel token cannot be cancelled")
}

/// The cancellable core of [`sweep_loss`] (with `burst`, of a
/// [`burst_row`] sweep): one [`row_ctl`] per loss probability. Returns
/// `None` when cancellation fired mid-sweep — partial rows are
/// discarded.
pub fn sweep_ctl(
    scenario: &Scenario,
    protocol: &Protocol,
    ps: &[f64],
    crash_rate: f64,
    burst: bool,
    run: Option<&ShardRun>,
    cancel: Option<&CancelToken>,
) -> Option<Vec<RobustnessRow>> {
    ps.iter()
        .map(|&p| row_ctl(scenario, protocol, p, crash_rate, burst, run, cancel))
        .collect()
}

/// A burst-loss row: a Gilbert–Elliott channel with the same stationary
/// loss as `p`, for contrasting burstiness against Bernoulli loss.
pub fn burst_row(
    scenario: &Scenario,
    protocol: &Protocol,
    p: f64,
    crash_rate: f64,
) -> RobustnessRow {
    burst_row_sharded(scenario, protocol, p, crash_rate, None)
}

/// [`burst_row`] over an optional shard layout (see
/// [`measure_with_faults_sharded`]).
pub fn burst_row_sharded(
    scenario: &Scenario,
    protocol: &Protocol,
    p: f64,
    crash_rate: f64,
    shards: Option<ShardDims>,
) -> RobustnessRow {
    let run = shards.map(ShardRun::new);
    row_ctl(scenario, protocol, p, crash_rate, true, run.as_ref(), None)
        .expect("a row without a cancel token cannot be cancelled")
}

/// Renders the sweep as a paper-style table.
pub fn table(rows: &[RobustnessRow]) -> Table {
    let mut t = Table::new([
        "loss p",
        "crash rate",
        "f_hello",
        "f_cluster",
        "f_retx",
        "f_repair",
        "f_route",
        "f_resync",
        "total",
        "ideal bound",
        "overhead ratio",
        "lost frac",
        "viol end",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.loss_p, 3),
            fmt_sig(r.crash_rate, 3),
            fmt_sig(r.measured.f_hello.mean, 4),
            fmt_sig(r.measured.f_cluster.mean, 4),
            fmt_sig(r.measured.f_retransmit.mean, 4),
            fmt_sig(r.measured.f_repair.mean, 4),
            fmt_sig(r.measured.f_route.mean, 4),
            fmt_sig(r.measured.f_resync.mean, 4),
            fmt_sig(r.measured.total.mean, 4),
            fmt_sig(r.ideal_bound, 4),
            fmt_sig(r.measured.total.mean / r.ideal_bound, 4),
            fmt_sig(r.measured.lost_fraction.mean, 3),
            fmt_sig(r.measured.violations_end.mean, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scenario() -> Scenario {
        Scenario {
            nodes: 120,
            side: 600.0,
            radius: 100.0,
            ..Scenario::default()
        }
    }

    #[test]
    fn ideal_config_has_no_fault_traffic() {
        let m = measure_with_faults(
            &quick_scenario(),
            &Protocol::quick(),
            &FaultConfig::default(),
        );
        assert_eq!(m.f_retransmit.mean, 0.0);
        assert_eq!(m.f_repair.mean, 0.0);
        assert_eq!(m.f_resync.mean, 0.0);
        assert_eq!(m.lost_fraction.mean, 0.0);
        assert_eq!(m.violations_end.mean, 0.0);
        // Periodic beaconing at 1 Hz.
        assert!(
            (m.f_hello.mean - 1.0).abs() < 0.05,
            "f_hello {}",
            m.f_hello.mean
        );
    }

    #[test]
    fn measured_total_beats_ideal_bound_and_grows_with_loss() {
        let scenario = quick_scenario();
        let rows = sweep_loss(&scenario, &Protocol::quick(), &[0.0, 0.2], 0.0);
        for r in &rows {
            assert!(
                r.measured.total.mean >= r.ideal_bound,
                "p={}: measured {} below bound {}",
                r.loss_p,
                r.measured.total.mean,
                r.ideal_bound
            );
            assert_eq!(
                r.measured.violations_end.mean, 0.0,
                "p={} did not heal",
                r.loss_p
            );
        }
        // Loss forces retransmissions and re-syncs on top of the ideal work.
        let (clean, lossy) = (&rows[0], &rows[1]);
        assert!(lossy.measured.f_retransmit.mean > 0.0);
        assert!(lossy.measured.f_resync.mean > 0.0);
        assert!(
            lossy.measured.total.mean > clean.measured.total.mean,
            "lossy {} vs clean {}",
            lossy.measured.total.mean,
            clean.measured.total.mean
        );
    }

    #[test]
    fn churn_produces_repair_traffic_and_still_heals() {
        let scenario = quick_scenario();
        let config = FaultConfig {
            loss: LossModel::Bernoulli { p: 0.1 },
            crash_rate: 0.005,
            mean_downtime: 15.0,
            ..FaultConfig::default()
        };
        let m = measure_with_faults(&scenario, &Protocol::quick(), &config);
        assert!(
            m.f_repair.mean > 0.0,
            "churn must surface as repair traffic"
        );
        assert_eq!(m.violations_end.mean, 0.0, "self-healing must converge");
    }

    #[test]
    fn burst_channel_matches_stationary_loss_target() {
        let r = burst_row(&quick_scenario(), &Protocol::quick(), 0.1, 0.0);
        // The GE channel's long-run drop fraction should be near the target.
        assert!(
            (r.measured.lost_fraction.mean - 0.1).abs() < 0.06,
            "lost fraction {} vs target 0.1",
            r.measured.lost_fraction.mean
        );
        assert_eq!(r.measured.violations_end.mean, 0.0);
    }
}
