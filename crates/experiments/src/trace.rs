//! Traced runs: the telemetry-instrumented twin of the harness loop.
//!
//! [`trace_run`] drives the full ideal stack (HELLO + clustering +
//! intra-cluster routing) with a live [`Probe`], producing a windowed
//! time-series recorder, a tick-phase wall-clock profile, and (optionally)
//! a JSONL trace file. Unlike `measure_lid` it traces from `t = 0` with no
//! warmup cut, so the recorded series *shows* the transient — the
//! trace-report tooling estimates the warmup point from the data instead
//! of assuming it.
//!
//! Every experiment binary accepts `--trace-out <path>` (via
//! [`maybe_trace`]): when present, a traced twin of the binary's default
//! scenario runs after the experiment proper and writes its JSONL trace
//! there, summarized on stdout. `bin/trace_report` re-reads such files.

use crate::harness::{Protocol, Scenario, ShardRun, StackDriver};
use manet_cluster::{Clustering, LowestId};
use manet_geom::ShardDims;
use manet_model::overhead::{contact_unit_cost, route_unit_cost, RouteLinkModel};
use manet_routing::intra::IntraClusterRouting;
use manet_sim::{Counters, HelloMode, MessageKind, QuietCtx, Scratch, SimBuilder, StepCtx};
use manet_stack::ProtocolStack;
use manet_telemetry::{
    chrome_trace_json, prometheus_text_full, AttributionLedger, AuditConfig, AuditMonitor,
    AuditReport, CauseTracker, Event, FlightRecorder, FlightTrigger, JsonlSink, MetricsServer,
    MsgClass, PhaseProfiler, Probe, ProfileReport, Publisher, RootCause, ShardSnapshot,
    SpanRecorder, SpanTimebase, Subscriber, TelemetrySnapshot, TraceMeta, TraceOut,
    WindowedRecorder,
};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Relative tolerance defining "settled": the warmup point is the first
/// window whose CLUSTER rate is within this fraction of the steady state.
pub const WARMUP_TOLERANCE: f64 = 0.1;

/// Telemetry options for a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Tumbling-window width for the time series, sim seconds.
    pub window: f64,
    /// JSONL trace output path (`None` = in-memory recording only).
    pub out: Option<PathBuf>,
    /// Run label stamped into the trace meta line.
    pub label: String,
    /// Thread a [`CauseTracker`] through the stack and stream every event
    /// into an [`AttributionLedger`] plus the runtime audit monitors.
    /// Off by default: an unattributed run emits the exact same event
    /// stream as before the attribution plane existed.
    pub attribution: bool,
    /// Prometheus text-format snapshot path, written once after the run.
    pub metrics_out: Option<PathBuf>,
    /// Arm a [`FlightRecorder`] retaining the last `K` events (`None` =
    /// no flight recorder; the plain event path is untouched).
    pub flight: Option<usize>,
    /// Where to dump the flight ring as replayable JSONL: on the first
    /// audit violation, or (when none fires) once at end of run so the
    /// black box is never silently empty.
    pub flight_out: Option<PathBuf>,
    /// Attach a [`SpanRecorder`] to the run: every tick/stage/shard span
    /// aggregates into per-(stage, shard) histograms and the last
    /// [`TelemetryConfig::spans_ring`] raw spans are retained for export.
    /// Off by default — the un-spanned path never reads the clock for
    /// spans and emits byte-identical traces.
    pub spans: bool,
    /// Chrome trace-event JSON output path, written once after the run
    /// (implies [`TelemetryConfig::spans`]).
    pub spans_out: Option<PathBuf>,
    /// Raw-span ring capacity (defaults to
    /// [`DEFAULT_SPAN_RING_CAPACITY`] when spans are on).
    pub spans_ring: Option<usize>,
    /// Export spans on the canonical timebase (sequence-derived
    /// timestamps, byte-identical across same-seed runs) instead of wall
    /// clock.
    pub spans_canonical: bool,
}

impl TelemetryConfig {
    /// In-memory telemetry with the default 5 s window.
    pub fn in_memory(label: &str) -> TelemetryConfig {
        TelemetryConfig {
            window: 5.0,
            out: None,
            label: label.to_string(),
            attribution: false,
            metrics_out: None,
            flight: None,
            flight_out: None,
            spans: false,
            spans_out: None,
            spans_ring: None,
            spans_canonical: false,
        }
    }

    /// Telemetry teed to a JSONL file with the default 5 s window.
    pub fn to_file(label: &str, path: PathBuf) -> TelemetryConfig {
        TelemetryConfig {
            out: Some(path),
            ..TelemetryConfig::in_memory(label)
        }
    }

    /// Enables causal attribution and the audit monitors.
    pub fn with_attribution(mut self) -> TelemetryConfig {
        self.attribution = true;
        self
    }

    /// Writes a Prometheus text-format metrics snapshot to `path` after
    /// the run. Implies attribution so the snapshot carries the
    /// per-root-cause families.
    pub fn with_metrics_out(mut self, path: PathBuf) -> TelemetryConfig {
        self.metrics_out = Some(path);
        self.attribution = true;
        self
    }

    /// Arms a flight recorder retaining the last `k` events.
    pub fn with_flight(mut self, k: usize) -> TelemetryConfig {
        self.flight = Some(k);
        self
    }

    /// Sets the flight-dump path (arms a default-capacity recorder when
    /// [`TelemetryConfig::flight`] was not set explicitly).
    pub fn with_flight_out(mut self, path: PathBuf) -> TelemetryConfig {
        self.flight_out = Some(path);
        if self.flight.is_none() {
            self.flight = Some(DEFAULT_FLIGHT_CAPACITY);
        }
        self
    }

    /// Experiment-binary hook: applies `--flight <K>` / `--flight-out
    /// <path>` from the process arguments. A no-op without the flags —
    /// in particular under unit tests, whose harness passes neither.
    pub fn with_flight_from_args(mut self) -> TelemetryConfig {
        if let Some(k) = flight_from_args() {
            self = self.with_flight(k);
        }
        if let Some(path) = flight_out_from_args() {
            self = self.with_flight_out(path);
        }
        self
    }

    /// Attaches a span recorder to the run (in-memory aggregation only
    /// unless [`TelemetryConfig::with_spans_out`] also names a file).
    pub fn with_spans(mut self) -> TelemetryConfig {
        self.spans = true;
        self
    }

    /// Writes the raw span ring as Chrome trace-event JSON to `path`
    /// after the run (load it at `ui.perfetto.dev` or `chrome://tracing`).
    pub fn with_spans_out(mut self, path: PathBuf) -> TelemetryConfig {
        self.spans_out = Some(path);
        self.spans = true;
        self
    }

    /// Sets the raw-span ring capacity.
    pub fn with_spans_ring(mut self, cap: usize) -> TelemetryConfig {
        self.spans_ring = Some(cap);
        self.spans = true;
        self
    }

    /// Switches span export to the canonical (sequence-derived,
    /// deterministic) timebase.
    pub fn with_spans_canonical(mut self) -> TelemetryConfig {
        self.spans_canonical = true;
        self
    }

    /// Experiment-binary hook: applies `--spans-out <path>` /
    /// `--spans-ring <K>` / `--spans-canonical` from the process
    /// arguments. A no-op without the flags.
    pub fn with_spans_from_args(mut self) -> TelemetryConfig {
        if let Some(path) = spans_out_from_args() {
            self = self.with_spans_out(path);
        }
        if let Some(k) = spans_ring_from_args() {
            self = self.with_spans_ring(k);
        }
        if spans_canonical_from_args() {
            self = self.with_spans_canonical();
        }
        self
    }

    /// The span-export timebase this config selects.
    pub fn span_timebase(&self) -> SpanTimebase {
        if self.spans_canonical {
            SpanTimebase::Canonical
        } else {
            SpanTimebase::Wall
        }
    }
}

/// Ring capacity when `--flight-out` is given without `--flight <K>`.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Raw-span ring capacity when spans are armed without `--spans-ring <K>`.
/// A quick traced run closes a few tens of spans per tick, so 64 Ki spans
/// retain several hundred ticks of full fidelity.
pub const DEFAULT_SPAN_RING_CAPACITY: usize = 1 << 16;

/// Causal-attribution outputs of a traced run, present when
/// [`TelemetryConfig::attribution`] was set.
#[derive(Debug)]
pub struct AttributionRun {
    /// Root-cause overhead ledger streamed over every event of the run.
    pub ledger: AttributionLedger,
    /// Runtime invariant audit: violations plus sample/event counts,
    /// including the end-of-run Counters reconciliation checks.
    pub audit: AuditReport,
}

/// Everything a traced run produced.
#[derive(Debug)]
pub struct TraceRun {
    /// The run's metadata (also the trace file's first line).
    pub meta: TraceMeta,
    /// Final message counters — the ground truth the recorder's window
    /// sums reconcile against.
    pub counters: Counters,
    /// The windowed time series.
    pub recorder: WindowedRecorder,
    /// Tick-phase wall-clock profile.
    pub profile: ProfileReport,
    /// Causal attribution outputs (`None` unless enabled in the config).
    pub attribution: Option<AttributionRun>,
    /// End-of-run shard + link-health snapshot (`None` on the monolithic
    /// path); also rendered into the Prometheus metrics snapshot.
    pub shard: Option<ShardSnapshot>,
    /// The flight recorder's final ring (`None` unless armed) — what a
    /// dump at end of run would contain, kept for tests and tooling.
    pub flight: Option<FlightRecorder>,
    /// The span recorder (`None` unless spans were enabled): per-(stage,
    /// shard) duration histograms plus the raw-span ring behind the
    /// Chrome trace export. `bin/span_report` builds its critical-path
    /// and imbalance tables from this.
    pub spans: Option<SpanRecorder>,
}

/// Live attribution state carried across the ticks of one traced run.
struct AttribState {
    tracker: CauseTracker,
    ledger: AttributionLedger,
    audit: AuditMonitor,
}

/// Tee subscriber: forwards each event to the trace output while also
/// streaming it into whichever optional consumers this run armed — the
/// attribution ledger, the audit monitor, and the flight recorder. Runs
/// with none of them armed never construct a fan at all, so the plain
/// traced path (and its bytes) is exactly what it was before the
/// observability plane existed.
struct TickFan<'a> {
    out: &'a mut dyn Subscriber,
    ledger: Option<&'a mut AttributionLedger>,
    audit: Option<&'a mut AuditMonitor>,
    flight: Option<&'a mut FlightRecorder>,
}

impl Subscriber for TickFan<'_> {
    fn event(&mut self, event: &Event) {
        self.out.event(event);
        if let Some(ledger) = self.ledger.as_deref_mut() {
            ledger.absorb(event);
        }
        if let Some(audit) = self.audit.as_deref_mut() {
            audit.event(event);
        }
        if let Some(flight) = self.flight.as_deref_mut() {
            flight.record(event);
        }
    }
}

/// Runs the ideal stack once (first seed of `protocol`) with telemetry
/// attached, tracing from `t = 0` for `warmup + measure` sim seconds.
///
/// The harness emits a batched `MsgSent` event for exactly the count it
/// records into the shared [`Counters`], per layer per tick, so the
/// recorder's per-class window sums reconcile with the final counters by
/// construction.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the JSONL sink.
pub fn trace_run(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &TelemetryConfig,
) -> io::Result<TraceRun> {
    trace_run_sharded(scenario, protocol, config, None)
}

/// [`trace_run`] over an optional shard layout (`None` = monolithic;
/// `Some(dims)` runs the topology stage on the ghost-margin shard plane).
/// The event stream, recorder, and counters are bit-identical across
/// layouts for a fixed seed — the root `tests/shard_plane.rs` pins the
/// traced JSONL byte-for-byte.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the JSONL sink.
///
/// # Panics
///
/// Panics when the layout's tiles would be narrower than the radio
/// radius; validate dims against the scenario up front for a friendlier
/// error.
pub fn trace_run_sharded(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &TelemetryConfig,
    shards: Option<ShardDims>,
) -> io::Result<TraceRun> {
    trace_run_chaos(
        scenario,
        protocol,
        config,
        shards.map(ShardRun::new).as_ref(),
    )
}

/// [`trace_run_sharded`] over full [`ShardRun`] options — in particular a
/// fallible interconnect config, which turns the traced run into a chaos
/// run: ghost syncs and migrations ride seeded lossy links, stalled
/// shards freeze, and the `interconnect_*` event kinds appear in the
/// trace. With an ideal (or absent) interconnect the bytes are identical
/// to [`trace_run`].
///
/// # Errors
///
/// Returns any I/O error from creating or writing the JSONL sink.
///
/// # Panics
///
/// Panics when the layout is too fine for the radius or the interconnect
/// config is invalid; chaos sweeps construct both in code.
pub fn trace_run_chaos(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &TelemetryConfig,
    shards: Option<&ShardRun>,
) -> io::Result<TraceRun> {
    let sink = match &config.out {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    trace_run_with_sink(scenario, protocol, config, shards, sink).map(|(run, _)| run)
}

/// Captures a traced run's JSONL bytes in memory instead of a file: the
/// writer-generic core over a `Vec<u8>` sink. The returned `String` is
/// the exact file `--trace-out` would have written (meta line, events,
/// profile line) — the jobs plane serves it from `GET /jobs/:id/trace`.
///
/// # Errors
///
/// Returns an I/O error when the sink write fails (unreachable for the
/// in-memory writer) or the trace bytes are not UTF-8 (unreachable for
/// the in-house codec).
pub fn trace_run_to_string(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &TelemetryConfig,
    shards: Option<&ShardRun>,
) -> io::Result<(TraceRun, String)> {
    let sink = JsonlSink::new(Vec::new());
    let (run, writer) = trace_run_with_sink(scenario, protocol, config, shards, Some(sink))?;
    let bytes = writer.expect("a provided sink always yields its writer back");
    let text =
        String::from_utf8(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok((run, text))
}

/// The writer-generic core of every traced run: drives the telemetry
/// tick loop against an explicit JSONL `sink` (ignoring
/// [`TelemetryConfig::out`], which only the file-path frontends read)
/// and hands the writer back alongside the [`TraceRun`] so callers can
/// recover in-memory trace bytes.
///
/// # Errors
///
/// Returns any I/O error from writing the JSONL sink.
///
/// # Panics
///
/// Panics when the layout is too fine for the radius or the interconnect
/// config is invalid; chaos sweeps construct both in code.
pub fn trace_run_with_sink<W: Write>(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &TelemetryConfig,
    shards: Option<&ShardRun>,
    sink: Option<JsonlSink<W>>,
) -> io::Result<(TraceRun, Option<W>)> {
    let seed = protocol.seeds.first().copied().unwrap_or(1);
    let duration = protocol.warmup + protocol.measure;
    let world = SimBuilder::new()
        .side(scenario.side)
        .nodes(scenario.nodes)
        .radius(scenario.radius)
        .speed(scenario.speed)
        .mobility(scenario.mobility)
        .dt(protocol.dt)
        .seed(seed)
        .hello_mode(HelloMode::EventDriven)
        .build();
    let meta = TraceMeta {
        label: config.label.clone(),
        nodes: scenario.nodes as u64,
        window: config.window,
        dt: protocol.dt,
        duration,
        seed,
    };
    let mut out = TraceOut::new(config.window, sink);
    out.write_meta(&meta);
    let mut profiler = PhaseProfiler::new();
    let mut attrib = config.attribution.then(|| AttribState {
        tracker: CauseTracker::new(),
        ledger: AttributionLedger::new(),
        audit: AuditMonitor::new(AuditConfig::default()),
    });

    let clustering = Clustering::form(LowestId, world.topology());
    let stack = ProtocolStack::ideal(world, clustering, IntraClusterRouting::new());
    let mut stack = StackDriver::with_shard_run(stack, shards)
        .expect("shard layout incompatible with scenario radius");
    stack.prime(&mut QuietCtx::new().ctx()); // baseline fill, uncharged

    let mut flight = config.flight.map(FlightRecorder::new);
    let mut spans = config.spans.then(|| {
        SpanRecorder::new().with_ring(config.spans_ring.unwrap_or(DEFAULT_SPAN_RING_CAPACITY))
    });
    let mut trigger = FlightTrigger::new();
    let live = live_publisher();
    let started = Instant::now();
    let mut published_windows = usize::MAX;

    let mut scratch = Scratch::new();
    let ticks = (duration / protocol.dt).round() as usize;
    for tick in 0..ticks {
        let mut fan;
        let probe = if attrib.is_some() || flight.is_some() {
            let (ledger, audit, tracker) = match attrib.as_mut() {
                Some(st) => (
                    Some(&mut st.ledger),
                    Some(&mut st.audit),
                    Some(&mut st.tracker),
                ),
                None => (None, None, None),
            };
            fan = TickFan {
                out: &mut out,
                ledger,
                audit,
                flight: flight.as_mut(),
            };
            Probe::with_causes(Some(&mut fan), Some(&mut profiler), tracker)
        } else {
            Probe::new(Some(&mut out), Some(&mut profiler))
        };
        let mut probe = probe.with_spans(spans.as_mut());
        let report = stack.tick(&mut StepCtx::new(&mut probe, &mut scratch));

        // Feed the invariant monitors a post-maintenance structural sample.
        if let Some(st) = attrib.as_mut() {
            st.audit.sample(&stack.audit_sample(report.time));
        }

        // Black box: dump the event ring the moment the audit trips.
        if let (Some(fr), Some(st)) = (flight.as_ref(), attrib.as_ref()) {
            if trigger.check(st.audit.violation_count()) {
                if let Some(path) = &config.flight_out {
                    fr.dump_to(path, &meta, "audit-violation")?;
                    println!(
                        "[flight] audit violation: ring dumped -> {}",
                        path.display()
                    );
                }
            }
        }

        // Live exporter: re-render and swap the snapshot once per
        // tumbling window (never per tick, never on the scraper's clock).
        if let Some(publisher) = live {
            let windows = out.recorder.windows().len();
            if windows != published_windows {
                published_windows = windows;
                publisher.publish(render_snapshot(
                    &out.recorder,
                    attrib.as_ref(),
                    stack.shard_snapshot().as_ref(),
                    flight.as_ref(),
                    spans.as_ref(),
                    &meta,
                    (tick + 1) as u64,
                    report.time,
                    started.elapsed(),
                ));
            }
        }
    }

    let profile = profiler.report();
    let recorder = std::mem::replace(&mut out.recorder, WindowedRecorder::new(config.window));
    let writer = out.finish_into(&profile)?;

    // A run that never tripped the audit still leaves a black box behind.
    if let (Some(fr), Some(path), false) = (flight.as_ref(), &config.flight_out, trigger.fired()) {
        fr.dump_to(path, &meta, "end-of-run")?;
    }
    if let Some(publisher) = live {
        publisher.publish(render_snapshot(
            &recorder,
            attrib.as_ref(),
            stack.shard_snapshot().as_ref(),
            flight.as_ref(),
            spans.as_ref(),
            &meta,
            ticks as u64,
            duration,
            started.elapsed(),
        ));
    }
    if let (Some(rec), Some(path)) = (spans.as_ref(), &config.spans_out) {
        std::fs::write(path, chrome_trace_json(rec, config.span_timebase()))?;
    }
    let attribution = attrib.map(|mut st| {
        for (class, kind) in [
            (MsgClass::Hello, MessageKind::Hello),
            (MsgClass::Cluster, MessageKind::Cluster),
            (MsgClass::Route, MessageKind::Route),
        ] {
            st.audit
                .reconcile(class, stack.world().counters().messages(kind));
        }
        AttributionRun {
            ledger: st.ledger,
            audit: st.audit.finish(),
        }
    });
    let shard = stack.shard_snapshot();
    if let Some(path) = &config.metrics_out {
        std::fs::write(
            path,
            prometheus_text_full(
                &recorder,
                attribution.as_ref().map(|a| &a.ledger),
                shard.as_ref(),
                spans.as_ref(),
            ),
        )?;
    }
    Ok((
        TraceRun {
            meta,
            counters: stack.world().counters().clone(),
            recorder,
            profile,
            attribution,
            shard,
            flight,
            spans,
        },
        writer,
    ))
}

/// Renders one [`TelemetrySnapshot`] for the live exporter: the same
/// Prometheus text `--metrics-out` writes at end of run, plus tick
/// progress for `/health` and the flight ring for `/flight`.
#[allow(clippy::too_many_arguments)]
fn render_snapshot(
    recorder: &WindowedRecorder,
    attrib: Option<&AttribState>,
    shard: Option<&ShardSnapshot>,
    flight: Option<&FlightRecorder>,
    spans: Option<&SpanRecorder>,
    meta: &TraceMeta,
    tick: u64,
    sim_time: f64,
    elapsed: Duration,
) -> TelemetrySnapshot {
    TelemetrySnapshot {
        metrics: prometheus_text_full(recorder, attrib.map(|st| &st.ledger), shard, spans),
        tick,
        sim_time,
        ticks_per_sec: tick as f64 / elapsed.as_secs_f64().max(1e-9),
        audit_violations: attrib.map_or(0, |st| st.audit.violation_count()),
        flight: flight.map_or_else(String::new, |fr| fr.dump_string(meta, "live")),
    }
}

/// Renders the human summary of a trace: meta, warmup estimate,
/// steady-state per-class rates, churn totals, and the phase profile.
///
/// Shared between [`maybe_trace`] (fresh runs) and `bin/trace_report`
/// (re-read JSONL files, where the profile may be absent).
pub fn report_text(
    meta: Option<&TraceMeta>,
    recorder: &WindowedRecorder,
    profile: Option<&ProfileReport>,
) -> String {
    let mut s = String::new();
    if let Some(m) = meta {
        let _ = writeln!(
            s,
            "trace: label={} nodes={} dt={} window={}s duration={}s seed={}",
            m.label, m.nodes, m.dt, m.window, m.duration, m.seed
        );
    }
    let _ = writeln!(
        s,
        "events: {} across {} windows of {}s",
        recorder.events_seen(),
        recorder.windows().len(),
        recorder.width()
    );
    match recorder.warmup_time(MsgClass::Cluster, WARMUP_TOLERANCE) {
        Some(t) => {
            let _ = writeln!(
                s,
                "warmup: CLUSTER rate settles within {:.0}% of steady state at t ≈ {t} s",
                WARMUP_TOLERANCE * 100.0
            );
        }
        None => {
            let _ = writeln!(s, "warmup: not enough windows to estimate");
        }
    }
    let mut rates = String::new();
    for class in MsgClass::ALL {
        if recorder.total_msgs(class) == 0 {
            continue;
        }
        if let Some(r) = recorder.steady_state_rate(class) {
            let _ = write!(rates, " {}={:.2}", class.name(), r);
        }
    }
    let _ = writeln!(
        s,
        "steady-state rates (msgs/s):{}",
        if rates.is_empty() { " none" } else { &rates }
    );
    let churn: u64 = recorder.windows().iter().map(|w| w.link_churn()).sum();
    let head_changes: u64 = recorder.head_change_series().iter().sum();
    let _ = writeln!(
        s,
        "link churn: {churn} events; head changes: {head_changes}"
    );
    let heads: Vec<f64> = recorder
        .cluster_count_series()
        .into_iter()
        .flatten()
        .collect();
    if !heads.is_empty() {
        let mean = heads.iter().sum::<f64>() / heads.len() as f64;
        let _ = writeln!(s, "mean cluster count: {mean:.1}");
    }
    match profile {
        Some(p) if !p.is_empty() => {
            let _ = writeln!(s, "tick-phase profile:");
            let _ = write!(s, "{}", p.to_table().to_ascii());
        }
        _ => {
            let _ = writeln!(s, "tick-phase profile: absent");
        }
    }
    s
}

/// Renders the root-cause attribution summary: the per-root ledger
/// breakdown and the measured-vs-analytic per-event unit-cost table.
///
/// The analytic unit costs come from the paper's per-event decomposition
/// (see `crates/core/src/overhead.rs`): an EventDriven link generation
/// costs 2 HELLO beacons; a head loss costs 1 CLUSTER message; a head
/// contact dissolves the losing cluster ([`contact_unit_cost`]); an
/// intra-cluster link change triggers one sync round through the cluster
/// that changed ([`route_unit_cost`]). `p̄` is estimated from the
/// recorder's gauged mean cluster count over `nodes`.
pub fn attribution_text(
    ledger: &AttributionLedger,
    recorder: &WindowedRecorder,
    nodes: u64,
) -> String {
    let mut s = String::new();
    let heads: Vec<f64> = recorder
        .cluster_count_series()
        .into_iter()
        .flatten()
        .collect();
    let mean_heads = if heads.is_empty() {
        0.0
    } else {
        heads.iter().sum::<f64>() / heads.len() as f64
    };
    let m_bar = if mean_heads > 0.0 && nodes > 0 {
        nodes as f64 / mean_heads
    } else {
        0.0
    };
    let _ = writeln!(
        s,
        "root-cause ledger: {} events, {} unanchored chains",
        ledger.events_seen(),
        ledger.unanchored_chains().len()
    );
    let _ = writeln!(
        s,
        "  {:<18} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "root cause", "events", "weight", "HELLO", "CLUSTER", "ROUTE"
    );
    for root in RootCause::ALL {
        let events = ledger.root_events(root);
        let msgs: [u64; 3] = [
            ledger.msgs(root, MsgClass::Hello),
            ledger.msgs(root, MsgClass::Cluster),
            ledger.msgs(root, MsgClass::Route),
        ];
        if events == 0 && msgs.iter().all(|&m| m == 0) {
            continue;
        }
        let _ = writeln!(
            s,
            "  {:<18} {:>7} {:>7} {:>8} {:>8} {:>8}",
            root.name(),
            events,
            ledger.root_weight_total(root),
            msgs[0],
            msgs[1],
            msgs[2]
        );
    }
    let _ = writeln!(
        s,
        "  uncaused batch msgs: HELLO={} CLUSTER={} ROUTE={}",
        ledger.uncaused_msgs(MsgClass::Hello),
        ledger.uncaused_msgs(MsgClass::Cluster),
        ledger.uncaused_msgs(MsgClass::Route)
    );
    let _ = writeln!(
        s,
        "unit costs, measured vs analytic (m\u{304} = {m_bar:.2} from mean heads {mean_heads:.1}):"
    );
    let p_bar = if m_bar > 0.0 { 1.0 / m_bar } else { 1.0 };
    for (root, class, predicted) in [
        (RootCause::LinkGen, MsgClass::Hello, 2.0),
        (RootCause::HeadLoss, MsgClass::Cluster, 1.0),
        (
            RootCause::HeadContact,
            MsgClass::Cluster,
            contact_unit_cost(p_bar),
        ),
        (
            RootCause::IntraClusterChange,
            MsgClass::Route,
            route_unit_cost(p_bar, RouteLinkModel::WithMemberMember),
        ),
    ] {
        match ledger.unit_cost(root, class) {
            Some(measured) => {
                let err = if predicted > 0.0 {
                    (measured - predicted) / predicted * 100.0
                } else {
                    f64::NAN
                };
                let _ = writeln!(
                    s,
                    "  {:<18} per {:<7} measured {:>7.3}  predicted {:>7.3}  err {:>+6.1}%",
                    root.name(),
                    class.name(),
                    measured,
                    predicted,
                    err
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "  {:<18} per {:<7} no root events observed",
                    root.name(),
                    class.name()
                );
            }
        }
    }
    s
}

/// Renders a one-line audit verdict for a finished run.
pub fn audit_text(report: &AuditReport) -> String {
    if report.is_clean() {
        format!(
            "audit: clean ({} samples, {} events)\n",
            report.samples, report.events
        )
    } else {
        let mut s = format!(
            "audit: {} violation(s) over {} samples:\n",
            report.violations.len(),
            report.samples
        );
        for v in &report.violations {
            let _ = writeln!(s, "  {v}");
        }
        s
    }
}

/// Extracts `--<flag> <path>` (or `--<flag>=<path>`) from the process
/// arguments.
fn path_flag_from_args(flag: &str) -> Option<PathBuf> {
    let long = format!("--{flag}");
    let prefixed = format!("--{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == long {
            return args.next().map(PathBuf::from);
        }
        if let Some(rest) = a.strip_prefix(&prefixed) {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// Extracts `--trace-out <path>` (or `--trace-out=<path>`) from the
/// process arguments.
pub fn trace_out_from_args() -> Option<PathBuf> {
    path_flag_from_args("trace-out")
}

/// Parses one `--shards` value (`KXxKY`) into dims, with the usage hint
/// every frontend shares. The fallible core of [`shards_from_args`];
/// `manet simulate` calls it directly from its own flag map.
///
/// # Errors
///
/// Returns the usage message when the value is malformed.
pub fn parse_shards(raw: &str) -> Result<ShardDims, String> {
    ShardDims::parse(raw)
        .map_err(|e| format!("--shards {raw}: {e} (expected KXxKY, e.g. --shards 2x2)"))
}

/// Extracts `--shards KXxKY` (or `--shards=KXxKY`) from the process
/// arguments. `None` (flag absent) means the monolithic path; `1x1` runs
/// the shard plane at a single shard, which is bit-identical.
///
/// # Panics
///
/// Panics with a usage message when the value is malformed — experiment
/// binaries surface this at startup, before any sweep runs.
pub fn shards_from_args() -> Option<ShardDims> {
    let raw = path_flag_from_args("shards")?;
    let raw = raw.to_string_lossy();
    match parse_shards(&raw) {
        Ok(dims) => Some(dims),
        Err(e) => panic!("{e}"),
    }
}

/// One-call experiment-binary hook for the shard path: parses `--shards`,
/// installs it as the process-wide harness default (see
/// [`crate::harness::set_default_shards`]), and prints the topology
/// header line. Returns the parsed dims for binaries that also thread
/// them explicitly.
pub fn init_shards_from_args() -> Option<ShardDims> {
    let shards = shards_from_args();
    crate::harness::set_default_shards(shards);
    println!("{}", shards_header(shards));
    shards
}

/// The run-header line describing the topology path: monolithic, or the
/// shard layout with its worker budget.
pub fn shards_header(shards: Option<ShardDims>) -> String {
    match shards {
        None => "topology: monolithic (pass --shards KXxKY to shard)".to_string(),
        Some(dims) => format!(
            "topology: sharded {dims} ({} shards, {} host cpus)",
            dims.count(),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        ),
    }
}

/// Extracts `--metrics-out <path>` (or `--metrics-out=<path>`) from the
/// process arguments.
pub fn metrics_out_from_args() -> Option<PathBuf> {
    path_flag_from_args("metrics-out")
}

/// Extracts `--serve-metrics <addr>` (e.g. `127.0.0.1:9184`; port 0 binds
/// an ephemeral port) from the process arguments.
pub fn serve_metrics_from_args() -> Option<String> {
    path_flag_from_args("serve-metrics").map(|p| p.to_string_lossy().into_owned())
}

/// Extracts `--serve-hold <secs>`: how long to keep serving after the
/// run finishes (ended early by `GET /quit`). Defaults to 0.
pub fn serve_hold_from_args() -> f64 {
    path_flag_from_args("serve-hold")
        .map(|p| {
            let raw = p.to_string_lossy();
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("--serve-hold {raw}: {e} (expected seconds)"))
        })
        .unwrap_or(0.0)
}

/// Extracts `--flight <K>` (flight-recorder ring capacity) from the
/// process arguments.
pub fn flight_from_args() -> Option<usize> {
    path_flag_from_args("flight").map(|p| {
        let raw = p.to_string_lossy();
        raw.parse::<usize>()
            .unwrap_or_else(|e| panic!("--flight {raw}: {e} (expected a ring capacity)"))
    })
}

/// Extracts `--flight-out <path>` (flight-dump JSONL path) from the
/// process arguments.
pub fn flight_out_from_args() -> Option<PathBuf> {
    path_flag_from_args("flight-out")
}

/// Whether the bare flag `--<flag>` appears in the process arguments.
fn bool_flag_from_args(flag: &str) -> bool {
    let long = format!("--{flag}");
    std::env::args().any(|a| a == long)
}

/// Extracts `--spans-out <path>` (Chrome trace-event JSON path) from the
/// process arguments.
pub fn spans_out_from_args() -> Option<PathBuf> {
    path_flag_from_args("spans-out")
}

/// Extracts `--spans-ring <K>` (raw-span ring capacity) from the process
/// arguments.
pub fn spans_ring_from_args() -> Option<usize> {
    path_flag_from_args("spans-ring").map(|p| {
        let raw = p.to_string_lossy();
        raw.parse::<usize>()
            .unwrap_or_else(|e| panic!("--spans-ring {raw}: {e} (expected a ring capacity)"))
    })
}

/// Whether `--spans-canonical` (deterministic sequence-derived span
/// timestamps) appears in the process arguments.
pub fn spans_canonical_from_args() -> bool {
    bool_flag_from_args("spans-canonical")
}

/// The process-wide live publisher, set once by [`init_serve_from_args`]
/// when `--serve-metrics` is present. Traced runs poll this and publish
/// a snapshot per tumbling window; without it (the default, and always
/// in unit tests) publication is skipped entirely.
static LIVE_PUBLISHER: OnceLock<Publisher> = OnceLock::new();

/// The live publisher installed by [`init_serve_from_args`], if any.
pub fn live_publisher() -> Option<&'static Publisher> {
    LIVE_PUBLISHER.get()
}

/// Installs `publisher` process-wide (what [`init_serve_from_args`] does
/// under `--serve-metrics`); returns `false` when one is already
/// installed. Exposed for integration tests that bind their own
/// [`MetricsServer`] without going through the CLI flags.
pub fn install_live_publisher(publisher: Publisher) -> bool {
    LIVE_PUBLISHER.set(publisher).is_ok()
}

/// Keeps the metrics endpoint alive until end of `main`. On drop, honors
/// `--serve-hold <secs>` (serving the final snapshot until `GET /quit`
/// or the timeout), then shuts the listener down and joins its thread.
#[derive(Debug)]
pub struct ServeGuard {
    server: Option<MetricsServer>,
    hold: Duration,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let Some(mut server) = self.server.take() else {
            return;
        };
        if !self.hold.is_zero() && !server.quit_requested() {
            println!(
                "[serve] holding http://{} for {:.0}s (GET /quit to end)",
                server.local_addr(),
                self.hold.as_secs_f64()
            );
            server.wait_for_quit(self.hold);
        }
        server.shutdown();
    }
}

/// One-call experiment-binary hook for the live exporter: when the
/// process was invoked with `--serve-metrics <addr>`, binds the endpoint,
/// prints the bound address, and installs the process-wide publisher so
/// every traced run in this process streams its windows there. Without
/// the flag (or on a second call) this is a no-op returning an inert
/// guard. Keep the guard alive until end of `main`.
pub fn init_serve_from_args() -> ServeGuard {
    let hold = Duration::from_secs_f64(serve_hold_from_args().max(0.0));
    let Some(addr) = serve_metrics_from_args() else {
        return ServeGuard { server: None, hold };
    };
    if LIVE_PUBLISHER.get().is_some() {
        return ServeGuard { server: None, hold };
    }
    match MetricsServer::serve(addr.as_str()) {
        Ok(server) => {
            println!(
                "[serve] listening on http://{} (endpoints: /metrics /health /flight /quit)",
                server.local_addr()
            );
            let _ = LIVE_PUBLISHER.set(server.publisher());
            ServeGuard {
                server: Some(server),
                hold,
            }
        }
        Err(e) => {
            println!("[serve] failed to bind {addr}: {e}");
            ServeGuard { server: None, hold }
        }
    }
}

/// Experiment-binary hook: when the process was invoked with
/// `--trace-out <path>`, run a traced twin of `scenario` under `protocol`,
/// write the JSONL trace to that path, and print the summary. Without the
/// flag this is a no-op, so binaries stay byte-identical to their
/// pre-telemetry behavior by default. The traced twin honors `--shards`
/// (the trace bytes are bit-identical either way).
pub fn maybe_trace(label: &str, scenario: &Scenario, protocol: &Protocol) {
    let trace_out = trace_out_from_args();
    let metrics_out = metrics_out_from_args();
    let serve = serve_metrics_from_args();
    let flight = flight_from_args();
    let flight_out = flight_out_from_args();
    let spans_out = spans_out_from_args();
    if trace_out.is_none()
        && metrics_out.is_none()
        && serve.is_none()
        && flight.is_none()
        && flight_out.is_none()
        && spans_out.is_none()
    {
        return;
    }
    // Binaries that already installed the endpoint get an inert guard;
    // the rest (the ~20 `maybe_trace`-only bins) get it bound here, so
    // `--serve-metrics` works uniformly across the fleet.
    let _serve = init_serve_from_args();
    let shards = shards_from_args();
    let mut config = match trace_out {
        Some(path) => {
            println!("\n[trace] {label}: traced run -> {}", path.display());
            TelemetryConfig::to_file(label, path)
        }
        None => {
            println!("\n[trace] {label}: traced run (in-memory)");
            TelemetryConfig::in_memory(label)
        }
    };
    if let Some(path) = metrics_out {
        println!("[trace] metrics snapshot -> {}", path.display());
        config = config.with_metrics_out(path);
    }
    if let Some(k) = flight {
        config = config.with_flight(k);
    }
    if let Some(path) = flight_out {
        println!("[trace] flight dump -> {}", path.display());
        config = config.with_flight_out(path);
    }
    if let Some(path) = &spans_out {
        println!("[trace] span trace -> {}", path.display());
    }
    config = config.with_spans_from_args();
    match trace_run_sharded(scenario, protocol, &config, shards) {
        Ok(run) => {
            print!(
                "{}",
                report_text(Some(&run.meta), &run.recorder, Some(&run.profile))
            );
            if let Some(spans) = &run.spans {
                println!(
                    "spans: {} recorded across {} ticks ({} retained in ring)",
                    spans.spans_recorded(),
                    spans.tick(),
                    spans.ring_len()
                );
            }
            if let Some(attr) = &run.attribution {
                print!(
                    "{}",
                    attribution_text(&attr.ledger, &run.recorder, run.meta.nodes)
                );
                print!("{}", audit_text(&attr.audit));
            }
        }
        Err(e) => println!("[trace] failed: {e}"),
    }
}

/// [`maybe_trace`] over the shared default scenario and protocol — the
/// one-liner most experiment binaries use.
pub fn maybe_trace_default(label: &str) {
    maybe_trace(label, &Scenario::default(), &Protocol::default());
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_telemetry::Phase;

    fn quick() -> (Scenario, Protocol) {
        (
            Scenario {
                nodes: 80,
                side: 500.0,
                radius: 100.0,
                ..Scenario::default()
            },
            Protocol {
                warmup: 10.0,
                measure: 30.0,
                seeds: vec![7],
                dt: 0.5,
            },
        )
    }

    #[test]
    fn trace_run_reconciles_with_counters_per_class() {
        let (scenario, protocol) = quick();
        let run = trace_run(&scenario, &protocol, &TelemetryConfig::in_memory("test"))
            .expect("in-memory run cannot fail on IO");
        assert!(run.counters.bytes_consistent());
        for (class, kind) in [
            (MsgClass::Hello, MessageKind::Hello),
            (MsgClass::Cluster, MessageKind::Cluster),
            (MsgClass::Route, MessageKind::Route),
        ] {
            assert_eq!(
                run.recorder.total_msgs(class),
                run.counters.messages(kind),
                "window sums must reconcile with counters for {}",
                class.name()
            );
            assert!(run.counters.messages(kind) > 0, "{} traffic", class.name());
        }
        // Profiled every tick: the five top-level phases partition it.
        let ticks = ((protocol.warmup + protocol.measure) / protocol.dt).round() as u64;
        for phase in Phase::TICK {
            assert_eq!(run.profile.get(phase).map(|s| s.count), Some(ticks));
        }
        // The shard sub-phases only appear on the sharded path.
        assert_eq!(run.profile.get(Phase::ShardFlush), None);
        assert_eq!(run.profile.get(Phase::ShardMerge), None);
        let text = report_text(Some(&run.meta), &run.recorder, Some(&run.profile));
        assert!(text.contains("steady-state rates"));
        assert!(text.contains("tick-phase profile"));
    }

    #[test]
    fn trace_out_flag_is_absent_in_tests() {
        assert_eq!(trace_out_from_args(), None);
        assert_eq!(metrics_out_from_args(), None);
        assert_eq!(shards_from_args(), None);
        assert_eq!(serve_metrics_from_args(), None);
        assert_eq!(flight_from_args(), None);
        assert_eq!(flight_out_from_args(), None);
        assert_eq!(serve_hold_from_args(), 0.0);
        assert_eq!(spans_out_from_args(), None);
        assert_eq!(spans_ring_from_args(), None);
        assert!(!spans_canonical_from_args());
        assert!(live_publisher().is_none());
        // And therefore maybe_trace is a no-op.
        let (scenario, protocol) = quick();
        maybe_trace("noop", &scenario, &protocol);
    }

    #[test]
    fn attributed_run_reconciles_ledger_audit_and_counters() {
        let (scenario, protocol) = quick();
        let config = TelemetryConfig::in_memory("attr").with_attribution();
        let run = trace_run(&scenario, &protocol, &config).expect("in-memory run");
        let attr = run.attribution.as_ref().expect("attribution enabled");
        // Invariant monitors stay silent on the ideal stack, and the
        // Counters <-> trace reconciliation is exact per class.
        assert!(
            attr.audit.is_clean(),
            "audit violations: {:?}",
            attr.audit.violations
        );
        // Every attributed message reconciles exactly with the shared
        // counters: the ledger charges per-event what the batched
        // rollups charge per-tick.
        for (class, kind) in [
            (MsgClass::Hello, MessageKind::Hello),
            (MsgClass::Cluster, MessageKind::Cluster),
            (MsgClass::Route, MessageKind::Route),
        ] {
            assert_eq!(
                attr.ledger.attributed_total(class),
                run.counters.messages(kind),
                "ledger must reconcile with counters for {}",
                class.name()
            );
        }
        // Every causal chain resolves back to a recorded root event.
        assert!(attr.ledger.unanchored_chains().is_empty());
        // The windowed series still reconciles (attribution does not
        // change what the recorder sees for batched classes).
        assert_eq!(
            run.recorder.total_msgs(MsgClass::Cluster),
            run.counters.messages(MessageKind::Cluster)
        );
        let text = attribution_text(&attr.ledger, &run.recorder, run.meta.nodes);
        assert!(text.contains("unit costs"));
        assert!(text.contains("link_gen"));
        assert!(audit_text(&attr.audit).contains("clean"));
    }

    #[test]
    fn attribution_off_leaves_run_without_ledger() {
        let (scenario, protocol) = quick();
        let run = trace_run(&scenario, &protocol, &TelemetryConfig::in_memory("plain"))
            .expect("in-memory run");
        assert!(run.attribution.is_none());
        assert!(run.spans.is_none());
    }

    /// A spanned run closes one tick span and one stage span per phase
    /// per tick, and the per-stage span totals equal the phase profiler's
    /// (the same clock read feeds both planes).
    #[test]
    fn spanned_run_reconciles_with_the_phase_profiler() {
        use manet_telemetry::SpanLabel;
        let (scenario, protocol) = quick();
        let config = TelemetryConfig::in_memory("spans").with_spans();
        let run = trace_run(&scenario, &protocol, &config).expect("in-memory run");
        let spans = run.spans.as_ref().expect("spans enabled");
        let ticks = ((protocol.warmup + protocol.measure) / protocol.dt).round() as u64;
        assert_eq!(spans.tick(), ticks);
        assert_eq!(spans.hist(SpanLabel::Tick, None).unwrap().count(), ticks);
        for phase in Phase::TICK {
            let h = spans
                .hist(SpanLabel::Stage(phase), None)
                .expect("stage spans on the main thread");
            let p = run.profile.get(phase).expect("phase profiled");
            assert_eq!(h.count(), p.count, "{}", phase.name());
            let err = (h.sum() - p.total).abs() / p.total.max(1e-12);
            assert!(
                err < 0.01,
                "{}: span sum {} vs profile {}",
                phase.name(),
                h.sum(),
                p.total
            );
        }
        // The raw ring retained every span of this short run.
        assert_eq!(spans.ring_len() as u64, spans.spans_recorded());
    }
}
