//! Traced runs: the telemetry-instrumented twin of the harness loop.
//!
//! [`trace_run`] drives the full ideal stack (HELLO + clustering +
//! intra-cluster routing) with a live [`Probe`], producing a windowed
//! time-series recorder, a tick-phase wall-clock profile, and (optionally)
//! a JSONL trace file. Unlike `measure_lid` it traces from `t = 0` with no
//! warmup cut, so the recorded series *shows* the transient — the
//! trace-report tooling estimates the warmup point from the data instead
//! of assuming it.
//!
//! Every experiment binary accepts `--trace-out <path>` (via
//! [`maybe_trace`]): when present, a traced twin of the binary's default
//! scenario runs after the experiment proper and writes its JSONL trace
//! there, summarized on stdout. `bin/trace_report` re-reads such files.

use crate::harness::{Protocol, Scenario};
use manet_cluster::{Clustering, LowestId, NoFaults};
use manet_routing::intra::IntraClusterRouting;
use manet_sim::{Counters, HelloMode, MessageKind, SimBuilder};
use manet_telemetry::{
    EventKind, JsonlSink, Layer, MsgClass, Phase, PhaseProfiler, Probe, ProfileReport, TraceMeta,
    TraceOut, WindowedRecorder,
};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// Relative tolerance defining "settled": the warmup point is the first
/// window whose CLUSTER rate is within this fraction of the steady state.
pub const WARMUP_TOLERANCE: f64 = 0.1;

/// Telemetry options for a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Tumbling-window width for the time series, sim seconds.
    pub window: f64,
    /// JSONL trace output path (`None` = in-memory recording only).
    pub out: Option<PathBuf>,
    /// Run label stamped into the trace meta line.
    pub label: String,
}

impl TelemetryConfig {
    /// In-memory telemetry with the default 5 s window.
    pub fn in_memory(label: &str) -> TelemetryConfig {
        TelemetryConfig {
            window: 5.0,
            out: None,
            label: label.to_string(),
        }
    }

    /// Telemetry teed to a JSONL file with the default 5 s window.
    pub fn to_file(label: &str, path: PathBuf) -> TelemetryConfig {
        TelemetryConfig {
            out: Some(path),
            ..TelemetryConfig::in_memory(label)
        }
    }
}

/// Everything a traced run produced.
#[derive(Debug)]
pub struct TraceRun {
    /// The run's metadata (also the trace file's first line).
    pub meta: TraceMeta,
    /// Final message counters — the ground truth the recorder's window
    /// sums reconcile against.
    pub counters: Counters,
    /// The windowed time series.
    pub recorder: WindowedRecorder,
    /// Tick-phase wall-clock profile.
    pub profile: ProfileReport,
}

/// Runs the ideal stack once (first seed of `protocol`) with telemetry
/// attached, tracing from `t = 0` for `warmup + measure` sim seconds.
///
/// The harness emits a batched `MsgSent` event for exactly the count it
/// records into the shared [`Counters`], per layer per tick, so the
/// recorder's per-class window sums reconcile with the final counters by
/// construction.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the JSONL sink.
pub fn trace_run(
    scenario: &Scenario,
    protocol: &Protocol,
    config: &TelemetryConfig,
) -> io::Result<TraceRun> {
    let seed = protocol.seeds.first().copied().unwrap_or(1);
    let duration = protocol.warmup + protocol.measure;
    let mut world = SimBuilder::new()
        .side(scenario.side)
        .nodes(scenario.nodes)
        .radius(scenario.radius)
        .speed(scenario.speed)
        .mobility(scenario.mobility)
        .dt(protocol.dt)
        .seed(seed)
        .hello_mode(HelloMode::EventDriven)
        .build();
    let meta = TraceMeta {
        label: config.label.clone(),
        nodes: scenario.nodes as u64,
        window: config.window,
        dt: protocol.dt,
        duration,
        seed,
    };
    let sink = match &config.out {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    let mut out = TraceOut::new(config.window, sink);
    out.write_meta(&meta);
    let mut profiler = PhaseProfiler::new();

    let mut clustering = Clustering::form(LowestId, world.topology());
    let mut routing = IntraClusterRouting::new();
    routing.update(world.topology(), &clustering); // baseline fill, uncharged

    let ticks = (duration / protocol.dt).round() as usize;
    for _ in 0..ticks {
        let mut probe = Probe::new(Some(&mut out), Some(&mut profiler));
        world.step_traced(&mut probe);
        let now = world.time();

        let t0 = probe.phase_start();
        let maint = clustering.maintain_traced(world.topology(), &mut NoFaults, now, &mut probe);
        probe.phase_end(Phase::Cluster, t0);
        let cluster_sent = maint.total_messages();
        if cluster_sent > 0 {
            probe.emit(
                now,
                Layer::Cluster,
                EventKind::MsgSent {
                    class: MsgClass::Cluster,
                    count: cluster_sent,
                },
            );
        }

        let t0 = probe.phase_start();
        let route =
            routing.update_traced(protocol.dt, world.topology(), &clustering, now, &mut probe);
        probe.phase_end(Phase::Routing, t0);
        let route_sent = route.attempted_messages();
        if route_sent > 0 {
            probe.emit(
                now,
                Layer::Routing,
                EventKind::MsgSent {
                    class: MsgClass::Route,
                    count: route_sent,
                },
            );
        }

        probe.emit(
            now,
            Layer::Cluster,
            EventKind::ClusterGauge {
                heads: clustering.head_count() as u64,
            },
        );

        world
            .counters_mut()
            .record_kind(MessageKind::Cluster, cluster_sent);
        world
            .counters_mut()
            .record_kind(MessageKind::Route, route_sent);
    }

    let profile = profiler.report();
    let recorder = std::mem::replace(&mut out.recorder, WindowedRecorder::new(config.window));
    out.finish(&profile)?;
    Ok(TraceRun {
        meta,
        counters: world.counters().clone(),
        recorder,
        profile,
    })
}

/// Renders the human summary of a trace: meta, warmup estimate,
/// steady-state per-class rates, churn totals, and the phase profile.
///
/// Shared between [`maybe_trace`] (fresh runs) and `bin/trace_report`
/// (re-read JSONL files, where the profile may be absent).
pub fn report_text(
    meta: Option<&TraceMeta>,
    recorder: &WindowedRecorder,
    profile: Option<&ProfileReport>,
) -> String {
    let mut s = String::new();
    if let Some(m) = meta {
        let _ = writeln!(
            s,
            "trace: label={} nodes={} dt={} window={}s duration={}s seed={}",
            m.label, m.nodes, m.dt, m.window, m.duration, m.seed
        );
    }
    let _ = writeln!(
        s,
        "events: {} across {} windows of {}s",
        recorder.events_seen(),
        recorder.windows().len(),
        recorder.width()
    );
    match recorder.warmup_time(MsgClass::Cluster, WARMUP_TOLERANCE) {
        Some(t) => {
            let _ = writeln!(
                s,
                "warmup: CLUSTER rate settles within {:.0}% of steady state at t ≈ {t} s",
                WARMUP_TOLERANCE * 100.0
            );
        }
        None => {
            let _ = writeln!(s, "warmup: not enough windows to estimate");
        }
    }
    let mut rates = String::new();
    for class in MsgClass::ALL {
        if recorder.total_msgs(class) == 0 {
            continue;
        }
        if let Some(r) = recorder.steady_state_rate(class) {
            let _ = write!(rates, " {}={:.2}", class.name(), r);
        }
    }
    let _ = writeln!(
        s,
        "steady-state rates (msgs/s):{}",
        if rates.is_empty() { " none" } else { &rates }
    );
    let churn: u64 = recorder.windows().iter().map(|w| w.link_churn()).sum();
    let head_changes: u64 = recorder.head_change_series().iter().sum();
    let _ = writeln!(
        s,
        "link churn: {churn} events; head changes: {head_changes}"
    );
    let heads: Vec<f64> = recorder
        .cluster_count_series()
        .into_iter()
        .flatten()
        .collect();
    if !heads.is_empty() {
        let mean = heads.iter().sum::<f64>() / heads.len() as f64;
        let _ = writeln!(s, "mean cluster count: {mean:.1}");
    }
    match profile {
        Some(p) if !p.is_empty() => {
            let _ = writeln!(s, "tick-phase profile:");
            let _ = write!(s, "{}", p.to_table().to_ascii());
        }
        _ => {
            let _ = writeln!(s, "tick-phase profile: absent");
        }
    }
    s
}

/// Extracts `--trace-out <path>` (or `--trace-out=<path>`) from the
/// process arguments.
pub fn trace_out_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(rest) = a.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// Experiment-binary hook: when the process was invoked with
/// `--trace-out <path>`, run a traced twin of `scenario` under `protocol`,
/// write the JSONL trace to that path, and print the summary. Without the
/// flag this is a no-op, so binaries stay byte-identical to their
/// pre-telemetry behavior by default.
pub fn maybe_trace(label: &str, scenario: &Scenario, protocol: &Protocol) {
    let Some(path) = trace_out_from_args() else {
        return;
    };
    println!("\n[trace] {label}: traced run -> {}", path.display());
    match trace_run(scenario, protocol, &TelemetryConfig::to_file(label, path)) {
        Ok(run) => print!(
            "{}",
            report_text(Some(&run.meta), &run.recorder, Some(&run.profile))
        ),
        Err(e) => println!("[trace] failed: {e}"),
    }
}

/// [`maybe_trace`] over the shared default scenario and protocol — the
/// one-liner most experiment binaries use.
pub fn maybe_trace_default(label: &str) {
    maybe_trace(label, &Scenario::default(), &Protocol::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> (Scenario, Protocol) {
        (
            Scenario {
                nodes: 80,
                side: 500.0,
                radius: 100.0,
                ..Scenario::default()
            },
            Protocol {
                warmup: 10.0,
                measure: 30.0,
                seeds: vec![7],
                dt: 0.5,
            },
        )
    }

    #[test]
    fn trace_run_reconciles_with_counters_per_class() {
        let (scenario, protocol) = quick();
        let run = trace_run(&scenario, &protocol, &TelemetryConfig::in_memory("test"))
            .expect("in-memory run cannot fail on IO");
        assert!(run.counters.bytes_consistent());
        for (class, kind) in [
            (MsgClass::Hello, MessageKind::Hello),
            (MsgClass::Cluster, MessageKind::Cluster),
            (MsgClass::Route, MessageKind::Route),
        ] {
            assert_eq!(
                run.recorder.total_msgs(class),
                run.counters.messages(kind),
                "window sums must reconcile with counters for {}",
                class.name()
            );
            assert!(run.counters.messages(kind) > 0, "{} traffic", class.name());
        }
        // Profiled every tick, all five phases.
        let ticks = ((protocol.warmup + protocol.measure) / protocol.dt).round() as u64;
        for phase in Phase::ALL {
            assert_eq!(run.profile.get(phase).map(|s| s.count), Some(ticks));
        }
        let text = report_text(Some(&run.meta), &run.recorder, Some(&run.profile));
        assert!(text.contains("steady-state rates"));
        assert!(text.contains("tick-phase profile"));
    }

    #[test]
    fn trace_out_flag_is_absent_in_tests() {
        assert_eq!(trace_out_from_args(), None);
        // And therefore maybe_trace is a no-op.
        let (scenario, protocol) = quick();
        maybe_trace("noop", &scenario, &protocol);
    }
}
