//! EXT6 — cluster stability vs speed and policy: head lifetimes,
//! membership residence, role-change rates, and the Claim 2 link-lifetime
//! companion.

use crate::harness::{build_world, default_shards, Scenario, StackDriver};
use manet_cluster::{ClusterPolicy, Clustering, HighestConnectivity, LowestId, StabilityTracker};
use manet_sim::{LinkLifetimes, QuietCtx};
use manet_stack::{NoRouting, ProtocolStack};
use manet_util::table::{fmt_sig, Table};

/// One measured stability row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityRow {
    /// Node speed, m/s.
    pub speed: f64,
    /// Mean completed head lifetime, seconds.
    pub head_lifetime: f64,
    /// Mean completed membership residence, seconds.
    pub membership_residence: f64,
    /// Role changes per node per second.
    pub change_rate: f64,
    /// Mean link lifetime (context), seconds.
    pub link_lifetime: f64,
    /// Claim 2's implied mean link lifetime `π²r/(8v)`.
    pub link_lifetime_theory: f64,
}

fn run_policy<P: ClusterPolicy>(
    scenario: &Scenario,
    policy: P,
    speed: f64,
    measure: f64,
) -> StabilityRow {
    let scenario = Scenario { speed, ..*scenario };
    let world = build_world(&scenario, 0.25, 0x57AB);
    let clustering = Clustering::form(policy, world.topology());
    let stack = ProtocolStack::ideal(world, clustering, NoRouting);
    let mut stack = StackDriver::with_shards(stack, default_shards())
        .expect("--shards layout incompatible with the scenario radius");
    let mut quiet = QuietCtx::new();
    stack.world_mut().run_for(40.0, &mut quiet.ctx());
    {
        let (world, clustering, _) = stack.split_mut();
        // stage-exempt: single-layer convergence probe, not the pipeline
        clustering.maintain(world.topology(), &mut quiet.ctx());
    }
    let mut tracker = StabilityTracker::new(stack.cluster(), stack.world().time());
    let mut links = LinkLifetimes::new();
    stack.world_mut().begin_measurement();
    let ticks = (measure / stack.world().dt()) as usize;
    for _ in 0..ticks {
        stack.tick(&mut quiet.ctx());
        let world = stack.world();
        tracker.observe(stack.cluster(), world.time());
        links.observe(world.time(), world.last_events());
    }
    StabilityRow {
        speed,
        head_lifetime: tracker.head_lifetimes().mean(),
        membership_residence: tracker.membership_residences().mean(),
        change_rate: tracker.change_rate(stack.world().measured_time()),
        link_lifetime: links.lifetimes().mean(),
        link_lifetime_theory: LinkLifetimes::claim2_mean_lifetime(scenario.radius, speed),
    }
}

/// Stability vs speed for the LID policy.
pub fn lid_speed_sweep(scenario: &Scenario, measure: f64) -> Vec<StabilityRow> {
    [5.0, 10.0, 20.0, 40.0]
        .into_iter()
        .map(|v| run_policy(scenario, LowestId, v, measure))
        .collect()
}

/// Stability at the default speed for LID vs HCC.
pub fn policy_comparison(scenario: &Scenario, measure: f64) -> Vec<(&'static str, StabilityRow)> {
    vec![
        (
            "lowest-id",
            run_policy(scenario, LowestId, scenario.speed, measure),
        ),
        (
            "highest-connectivity",
            run_policy(scenario, HighestConnectivity, scenario.speed, measure),
        ),
    ]
}

/// Renders the speed sweep.
pub fn speed_table(rows: &[StabilityRow]) -> Table {
    let mut t = Table::new([
        "v [m/s]",
        "head lifetime [s]",
        "membership [s]",
        "role changes /node/s",
        "link lifetime [s]",
        "pi^2 r/(8v)",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.speed, 3),
            fmt_sig(r.head_lifetime, 4),
            fmt_sig(r.membership_residence, 4),
            fmt_sig(r.change_rate, 3),
            fmt_sig(r.link_lifetime, 4),
            fmt_sig(r.link_lifetime_theory, 4),
        ]);
    }
    t
}

/// Renders the policy comparison.
pub fn policy_table(rows: &[(&'static str, StabilityRow)]) -> Table {
    let mut t = Table::new([
        "policy",
        "head lifetime [s]",
        "membership [s]",
        "role changes /node/s",
    ]);
    for (name, r) in rows {
        t.row([
            name.to_string(),
            fmt_sig(r.head_lifetime, 4),
            fmt_sig(r.membership_residence, 4),
            fmt_sig(r.change_rate, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_nodes_shorten_every_lifetime() {
        let scenario = Scenario {
            nodes: 120,
            side: 600.0,
            radius: 100.0,
            ..Scenario::default()
        };
        let rows = lid_speed_sweep(&scenario, 120.0);
        assert_eq!(rows.len(), 4);
        let (slow, fast) = (rows.first().unwrap(), rows.last().unwrap());
        assert!(fast.membership_residence < slow.membership_residence);
        assert!(fast.link_lifetime < slow.link_lifetime);
        assert!(fast.change_rate > slow.change_rate);
        // Link lifetimes track the Claim 2 closed form within noise.
        for r in &rows {
            let rel = (r.link_lifetime - r.link_lifetime_theory).abs() / r.link_lifetime_theory;
            assert!(rel < 0.25, "{r:?} (rel {rel:.3})");
        }
    }
}

/// EXT7 — mobility-aware head election on a heterogeneous fleet
/// (MobDHop/MOBIC premise): per-node speeds drawn from `[1, 19]` m/s, and
/// a churn-weighted policy (probe the per-node link churn, give slow
/// nodes high weight) compared with identity-based LID on the *same*
/// trajectories.
pub fn mobility_aware_comparison(measure: f64) -> manet_util::table::Table {
    use manet_cluster::{Clustering, StaticWeights};
    use manet_geom::{Metric, SquareRegion};
    use manet_mobility::EpochRandomDirection;
    use manet_sim::{HelloMode, MessageSizes, World};
    use manet_util::{Rng, Summary};

    let side = 1000.0;
    let n = 400usize;
    let radius = 150.0;
    let probe = 60.0;
    let dt = 0.25;

    // Deterministic heterogeneous fleet; rebuilt identically per policy.
    let build = || {
        let mut rng = Rng::seed_from_u64(0xE417);
        let erd = EpochRandomDirection::with_speed_range(
            SquareRegion::new(side),
            n,
            1.0,
            19.0,
            20.0,
            &mut rng,
        );
        let speeds = erd.speeds().to_vec();
        let world = World::new(
            Box::new(erd),
            radius,
            dt,
            Metric::toroidal(side),
            HelloMode::EventDriven,
            MessageSizes::default(),
            0xE418,
        );
        (world, speeds)
    };

    // Probe pass: count per-node link events to estimate churn.
    let mut quiet = manet_sim::QuietCtx::new();
    let (mut world, _) = build();
    let mut churn = vec![0u64; n];
    for _ in 0..(probe / dt) as usize {
        world.step(&mut quiet.ctx());
        for e in world.last_events() {
            churn[e.a as usize] += 1;
            churn[e.b as usize] += 1;
        }
    }
    let weights: Vec<f64> = churn.iter().map(|&c| 1.0 / (1.0 + c as f64)).collect();

    let mut t = manet_util::table::Table::new([
        "policy",
        "mean head speed [m/s]",
        "head lifetime [s]",
        "membership [s]",
        "role changes /node/s",
    ]);
    enum Which {
        Lid,
        Churn,
    }
    for (name, which) in [
        ("lowest-id", Which::Lid),
        ("churn-weighted (MOBIC-style)", Which::Churn),
    ] {
        let (mut world, speeds) = build();
        // Re-run the probe period so both policies cluster the same
        // steady-state geometry the weights were measured on.
        for _ in 0..(probe / dt) as usize {
            world.step(&mut quiet.ctx());
        }
        macro_rules! run {
            ($policy:expr) => {{
                let mut clustering = Clustering::form($policy, world.topology());
                let mut tracker = StabilityTracker::new(&clustering, world.time());
                let mut head_speed = Summary::new();
                world.begin_measurement();
                for _ in 0..(measure / dt) as usize {
                    world.step(&mut quiet.ctx());
                    // stage-exempt: single-layer cluster study, not the pipeline
                    clustering.maintain(world.topology(), &mut quiet.ctx());
                    tracker.observe(&clustering, world.time());
                }
                for u in 0..n as u32 {
                    if clustering.is_head(u) {
                        head_speed.push(speeds[u as usize]);
                    }
                }
                (tracker, head_speed)
            }};
        }
        let (tracker, head_speed) = match which {
            Which::Lid => run!(manet_cluster::LowestId),
            Which::Churn => run!(StaticWeights::new(weights.clone())),
        };
        t.row([
            name.to_string(),
            manet_util::table::fmt_sig(head_speed.mean(), 3),
            manet_util::table::fmt_sig(tracker.head_lifetimes().mean(), 4),
            manet_util::table::fmt_sig(tracker.membership_residences().mean(), 4),
            manet_util::table::fmt_sig(tracker.change_rate(world.measured_time()), 3),
        ]);
    }
    t
}

#[cfg(test)]
mod ext7_tests {
    #[test]
    fn mobility_aware_table_renders_two_policies() {
        let t = super::mobility_aware_comparison(60.0);
        assert_eq!(t.len(), 2);
        let rendered = t.to_ascii();
        assert!(rendered.contains("churn-weighted"));
    }
}
