//! Figures 1–3: control-message frequencies vs `r`, `v`, and `ρ`,
//! simulation against analysis.
//!
//! As in the paper, the cluster-head ratio `P` fed to the analytical
//! curves is **measured in real time during the simulation** ("P for LID
//! is measured in real time during the simulation", Section 4); everything
//! else in the analysis curve is closed-form.

use crate::harness::{analysis_at, measure_lid, Measured, Protocol, Scenario};
use manet_util::stats::rms_relative_error;
use manet_util::table::{fmt_sig, Table};

/// One sweep point: the swept value, the simulation measurement, and the
/// analysis evaluated at the measured head ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Value of the swept variable (`r`, `v`, or `ρ` scaled per figure).
    pub x: f64,
    /// Simulation measurements.
    pub sim: Measured,
    /// Analytical frequencies at the measured `P`.
    pub ana_f_hello: f64,
    /// Analytical CLUSTER frequency.
    pub ana_f_cluster: f64,
    /// Analytical ROUTE frequency.
    pub ana_f_route: f64,
}

/// A completed figure: its points plus agreement metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Human-readable sweep label (`"r/a"`, `"v [m/s]"`, …).
    pub x_label: &'static str,
    /// Sweep points in ascending `x`.
    pub points: Vec<SweepPoint>,
}

impl Figure {
    /// RMS relative error of simulation vs analysis for the three series
    /// `(hello, cluster, route)`.
    pub fn agreement(&self) -> (f64, f64, f64) {
        let ana_h: Vec<f64> = self.points.iter().map(|p| p.ana_f_hello).collect();
        let ana_c: Vec<f64> = self.points.iter().map(|p| p.ana_f_cluster).collect();
        let ana_r: Vec<f64> = self.points.iter().map(|p| p.ana_f_route).collect();
        let sim_h: Vec<f64> = self.points.iter().map(|p| p.sim.f_hello.mean).collect();
        let sim_c: Vec<f64> = self.points.iter().map(|p| p.sim.f_cluster.mean).collect();
        let sim_r: Vec<f64> = self.points.iter().map(|p| p.sim.f_route.mean).collect();
        (
            rms_relative_error(&ana_h, &sim_h).unwrap_or(f64::NAN),
            rms_relative_error(&ana_c, &sim_c).unwrap_or(f64::NAN),
            rms_relative_error(&ana_r, &sim_r).unwrap_or(f64::NAN),
        )
    }

    /// Renders the paper-style table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            self.x_label,
            "P (meas)",
            "d (meas)",
            "f_hello sim",
            "f_hello ana",
            "f_cluster sim",
            "f_cluster ana",
            "f_route sim",
            "f_route ana",
        ]);
        for p in &self.points {
            t.row([
                fmt_sig(p.x, 4),
                fmt_sig(p.sim.head_ratio.mean, 3),
                fmt_sig(p.sim.mean_degree.mean, 3),
                fmt_sig(p.sim.f_hello.mean, 3),
                fmt_sig(p.ana_f_hello, 3),
                fmt_sig(p.sim.f_cluster.mean, 3),
                fmt_sig(p.ana_f_cluster, 3),
                fmt_sig(p.sim.f_route.mean, 3),
                fmt_sig(p.ana_f_route, 3),
            ]);
        }
        t
    }
}

/// Figure 1's transmission-range grid, as fractions of the area side.
pub const FIG1_RADIUS_FRACS: [f64; 7] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35];
/// Figure 2's node-speed grid in m/s.
pub const FIG2_SPEEDS: [f64; 7] = [2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0];
/// Figure 3's node-count grid (density is `N / a²` at the default side).
pub const FIG3_NODES: [usize; 6] = [100, 200, 300, 400, 600, 900];

/// Closure-based sweep core: measures each scenario with `measure`,
/// evaluates the analysis at the measured head ratio, and assembles a
/// [`Figure`]. `measure` returning `None` (a cancelled run) aborts the
/// whole sweep — partial figures are never published.
pub fn sweep_with<M>(
    x_label: &'static str,
    scenarios: Vec<(f64, Scenario)>,
    mut measure: M,
) -> Option<Figure>
where
    M: FnMut(&Scenario) -> Option<Measured>,
{
    let mut points = Vec::new();
    for (x, scenario) in scenarios {
        let sim = measure(&scenario)?;
        let ana = analysis_at(&scenario, sim.head_ratio.mean);
        points.push(SweepPoint {
            x,
            sim,
            ana_f_hello: ana.f_hello,
            ana_f_cluster: ana.f_cluster,
            ana_f_route: ana.f_route,
        });
    }
    Some(Figure { x_label, points })
}

fn sweep(x_label: &'static str, scenarios: Vec<(f64, Scenario)>, protocol: &Protocol) -> Figure {
    sweep_with(x_label, scenarios, |s| Some(measure_lid(s, protocol)))
        .expect("a sweep without a cancel token cannot be cancelled")
}

/// Figure 1's scenario list: transmission range `r/a` over
/// [`FIG1_RADIUS_FRACS`] applied to `base`.
pub fn fig1_scenarios(base: &Scenario) -> Vec<(f64, Scenario)> {
    FIG1_RADIUS_FRACS
        .into_iter()
        .map(|frac| {
            (
                frac,
                Scenario {
                    radius: frac * base.side,
                    ..*base
                },
            )
        })
        .collect()
}

/// Figure 2's scenario list: node speed over [`FIG2_SPEEDS`].
pub fn fig2_scenarios(base: &Scenario) -> Vec<(f64, Scenario)> {
    FIG2_SPEEDS
        .into_iter()
        .map(|v| (v, Scenario { speed: v, ..*base }))
        .collect()
}

/// Figure 3's scenario list: node count over [`FIG3_NODES`] at fixed
/// area, so `x = N / a²` is the density.
pub fn fig3_scenarios(base: &Scenario) -> Vec<(f64, Scenario)> {
    let area = base.side * base.side;
    FIG3_NODES
        .into_iter()
        .map(|n| (n as f64 / area, Scenario { nodes: n, ..*base }))
        .collect()
}

/// Figure 1: frequencies vs transmission range `r/a ∈ {0.05 … 0.35}`.
pub fn fig1(protocol: &Protocol) -> Figure {
    sweep("r/a", fig1_scenarios(&Scenario::default()), protocol)
}

/// Figure 2: frequencies vs node speed `v ∈ {2 … 50} m/s`.
pub fn fig2(protocol: &Protocol) -> Figure {
    sweep("v [m/s]", fig2_scenarios(&Scenario::default()), protocol)
}

/// Figure 3: frequencies vs density (`N ∈ {100 … 900}` at fixed area, so
/// `ρ = N × 10⁻⁶ m⁻²`).
pub fn fig3(protocol: &Protocol) -> Figure {
    sweep(
        "rho [1/m^2]",
        fig3_scenarios(&Scenario::default()),
        protocol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_protocol() -> Protocol {
        Protocol {
            warmup: 30.0,
            measure: 90.0,
            seeds: vec![3],
            dt: 0.5,
        }
    }

    fn tiny_fig(radii: &[f64]) -> Figure {
        let base = Scenario {
            nodes: 150,
            side: 600.0,
            ..Scenario::default()
        };
        let scenarios = radii
            .iter()
            .map(|&frac| {
                (
                    frac,
                    Scenario {
                        radius: frac * base.side,
                        ..base
                    },
                )
            })
            .collect();
        sweep("r/a", scenarios, &tiny_protocol())
    }

    #[test]
    fn hello_grows_with_range_and_tracks_analysis() {
        let fig = tiny_fig(&[0.1, 0.3]);
        assert!(fig.points[1].sim.f_hello.mean > fig.points[0].sim.f_hello.mean);
        for p in &fig.points {
            let rel = (p.sim.f_hello.mean - p.ana_f_hello).abs() / p.ana_f_hello;
            assert!(
                rel < 0.25,
                "x={}: sim {} vs ana {}",
                p.x,
                p.sim.f_hello.mean,
                p.ana_f_hello
            );
        }
    }

    #[test]
    fn table_has_one_row_per_point() {
        let fig = tiny_fig(&[0.15]);
        let t = fig.table();
        assert_eq!(t.len(), 1);
        let (h, c, r) = fig.agreement();
        assert!(h.is_finite() && c.is_finite() && r.is_finite());
    }
}
