//! Direct validation of the paper's Claims 1 and 2.

use crate::harness::{build_world, Scenario, WorldDriver};
use manet_geom::{Metric, SpatialGrid, SquareRegion};
use manet_model::{DegreeModel, NetworkParams};
use manet_sim::{MobilityKind, QuietCtx};
use manet_util::stats::Summary;
use manet_util::table::{fmt_sig, Table};
use manet_util::Rng;

/// One row of the Claim 1 validation: expected degree, theory vs Monte
/// Carlo, under both the bounded-window (Miller) and torus geometries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claim1Row {
    /// Transmission range as a fraction of the side.
    pub r_over_a: f64,
    /// Monte-Carlo mean degree, bounded window (Euclidean metric).
    pub mc_window: f64,
    /// Claim 1 / Eqn 1 prediction (Miller CDF).
    pub theory_window: f64,
    /// Monte-Carlo mean degree on the torus.
    pub mc_torus: f64,
    /// Torus prediction `(N−1)πr²/a²`.
    pub theory_torus: f64,
}

/// Validates Claim 1 over a range sweep at `N = 400`.
pub fn claim1(replications: u64) -> Vec<Claim1Row> {
    let n = 400usize;
    let side = 1000.0;
    let region = SquareRegion::new(side);
    [0.05, 0.10, 0.15, 0.25, 0.40]
        .into_iter()
        .map(|frac| {
            let radius = frac * side;
            let params = NetworkParams::new(n, side, radius, 1.0).expect("valid");
            let mut window = Summary::new();
            let mut torus = Summary::new();
            for seed in 0..replications {
                let mut rng = Rng::seed_from_u64(0xC1A11 ^ seed.wrapping_mul(0x2545F491));
                let pts: Vec<_> = (0..n).map(|_| region.sample_uniform(&mut rng)).collect();
                for (metric, acc) in [
                    (Metric::Euclidean, &mut window),
                    (Metric::toroidal(side), &mut torus),
                ] {
                    let grid = SpatialGrid::build(&pts, region, radius, metric);
                    let mut out = Vec::new();
                    let mut total = 0usize;
                    for i in 0..n {
                        grid.neighbors_within(i, &mut out);
                        total += out.len();
                    }
                    acc.push(total as f64 / n as f64);
                }
            }
            Claim1Row {
                r_over_a: frac,
                mc_window: window.mean(),
                theory_window: DegreeModel::BorderCorrected.expected_degree(&params),
                mc_torus: torus.mean(),
                theory_torus: DegreeModel::TorusExact.expected_degree(&params),
            }
        })
        .collect()
}

/// Renders the Claim 1 table.
pub fn claim1_table(rows: &[Claim1Row]) -> Table {
    let mut t = Table::new([
        "r/a",
        "d window MC",
        "d window Eqn1",
        "d torus MC",
        "d torus theory",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.r_over_a, 3),
            fmt_sig(r.mc_window, 4),
            fmt_sig(r.theory_window, 4),
            fmt_sig(r.mc_torus, 4),
            fmt_sig(r.theory_torus, 4),
        ]);
    }
    t
}

/// One row of the Claim 2 validation: link change rate, simulated vs
/// `16·d·v/(π²·r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claim2Row {
    /// Node speed.
    pub speed: f64,
    /// Simulated per-node total link change rate.
    pub sim_rate: f64,
    /// Claim 2 prediction with the torus degree.
    pub theory_rate: f64,
}

/// Validates Claim 2 on the constant-velocity torus across a speed sweep.
pub fn claim2(measure_seconds: f64) -> Vec<Claim2Row> {
    [2.0, 5.0, 10.0, 20.0, 40.0]
        .into_iter()
        .map(|speed| {
            let scenario = Scenario {
                speed,
                mobility: MobilityKind::ConstantVelocity,
                nodes: 300,
                radius: 120.0,
                ..Scenario::default()
            };
            let mut world = WorldDriver::new(build_world(&scenario, 0.2, 0xC1A12));
            let mut quiet = QuietCtx::new();
            world.run_for(30.0, &mut quiet.ctx());
            world.begin_measurement();
            world.run_for(measure_seconds, &mut quiet.ctx());
            let n = world.node_count();
            let elapsed = world.measured_time();
            let sim_rate = world.counters().per_node_link_generation_rate(n, elapsed)
                + world.counters().per_node_link_break_rate(n, elapsed);
            let model = manet_model::OverheadModel::new(scenario.params(), DegreeModel::TorusExact);
            Claim2Row {
                speed,
                sim_rate,
                theory_rate: model.link_change_rate(),
            }
        })
        .collect()
}

/// Renders the Claim 2 table.
pub fn claim2_table(rows: &[Claim2Row]) -> Table {
    let mut t = Table::new(["v [m/s]", "λ sim", "λ = 16dv/(π²r)"]);
    for r in rows {
        t.row([
            fmt_sig(r.speed, 3),
            fmt_sig(r.sim_rate, 4),
            fmt_sig(r.theory_rate, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim1_theory_within_noise() {
        for r in claim1(20) {
            let rel_w = (r.mc_window - r.theory_window).abs() / r.theory_window;
            let rel_t = (r.mc_torus - r.theory_torus).abs() / r.theory_torus;
            assert!(rel_w < 0.03, "window r/a={}: {rel_w}", r.r_over_a);
            assert!(rel_t < 0.03, "torus r/a={}: {rel_t}", r.r_over_a);
            // The border effect is real: window degree < torus degree.
            assert!(r.mc_window < r.mc_torus);
        }
    }

    #[test]
    fn claim2_rate_tracks_theory() {
        for r in claim2(120.0) {
            let rel = (r.sim_rate - r.theory_rate).abs() / r.theory_rate;
            assert!(
                rel < 0.15,
                "v={}: sim {} vs theory {} (rel {rel:.3})",
                r.speed,
                r.sim_rate,
                r.theory_rate
            );
        }
    }
}

/// One row of the dynamic BCV-window validation: the paper's actual
/// analysis model, realized literally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BcvRow {
    /// Window side as a fraction of the outer torus side.
    pub window_fraction: f64,
    /// Mean in-window nodes (should be ≈ N_window by uniformity).
    pub mean_in_window: f64,
    /// Measured mean in-window degree (neighbors outside the window not
    /// counted).
    pub degree_sim: f64,
    /// Claim 1 prediction with the window's `N` and side.
    pub degree_theory: f64,
    /// Measured per-node link change rate restricted to in-window pairs.
    pub lambda_sim: f64,
    /// Claim 2 prediction `16·d·v/(π²·r)` with the border-corrected `d`.
    pub lambda_theory: f64,
}

/// Realizes the Bounded Constant Velocity model literally: CV nodes on a
/// large torus (approximating the unbounded plane), observed through a
/// central square window `S`. Both Claim 1 (border-corrected degree) and
/// Claim 2 (in-window link change rate) are measured exactly as the paper
/// defines them — links to nodes outside `S` do not exist.
pub fn bcv_window(outer: f64, measure_seconds: f64) -> Vec<BcvRow> {
    use manet_geom::Vec2;
    use manet_mobility::{ConstantVelocity, Mobility};
    use manet_sim::Topology;

    assert!(
        outer >= 1200.0,
        "outer torus must dwarf the transmission range"
    );
    let density = 400.0 / 1e6; // the default scenario's density
    let n_total = (density * outer * outer).round() as usize;
    let radius = 150.0;
    let speed = 10.0;
    let dt = 0.25;

    [1.0f64 / 3.0]
        .into_iter()
        .map(|window_fraction| {
            let win_side = outer * window_fraction;
            let lo = (outer - win_side) / 2.0;
            let hi = lo + win_side;
            let n_window = density * win_side * win_side;
            let window_params =
                NetworkParams::new(n_window.round() as usize, win_side, radius, speed)
                    .expect("valid window params");

            let region = SquareRegion::new(outer);
            let mut rng = Rng::seed_from_u64(0xBC5);
            let mut cv = ConstantVelocity::new(region, n_total, speed, &mut rng);

            // Window-restricted topology: only in-window nodes, Euclidean
            // metric (no wrap inside a window far from the torus seam).
            let window_topo = |cv: &ConstantVelocity| -> (Vec<u32>, Topology) {
                let ids: Vec<u32> = cv
                    .positions()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.x >= lo && p.x < hi && p.y >= lo && p.y < hi)
                    .map(|(i, _)| i as u32)
                    .collect();
                let pts: Vec<Vec2> = ids
                    .iter()
                    .map(|&i| {
                        let p = cv.positions()[i as usize];
                        Vec2::new(p.x - lo, p.y - lo)
                    })
                    .collect();
                let topo =
                    Topology::compute(&pts, SquareRegion::new(win_side), radius, Metric::Euclidean);
                (ids, topo)
            };

            // Warm up, then measure.
            for _ in 0..(30.0 / dt) as usize {
                cv.step(dt, &mut rng);
            }
            let (mut prev_ids, mut prev_topo) = window_topo(&cv);
            let mut degree = Summary::new();
            let mut in_window = Summary::new();
            let mut changes = 0u64;
            let mut node_seconds = 0.0f64;
            let ticks = (measure_seconds / dt) as usize;
            for _ in 0..ticks {
                cv.step(dt, &mut rng);
                let (ids, topo) = window_topo(&cv);
                degree.push(topo.mean_degree());
                in_window.push(ids.len() as f64);
                node_seconds += ids.len() as f64 * dt;
                // Count link changes among nodes present in both frames,
                // identified by their global ids (the paper's events: links
                // to departed/arrived nodes are window-boundary artifacts,
                // not CV link dynamics).
                let prev_links: std::collections::BTreeSet<(u32, u32)> = prev_topo
                    .links()
                    .map(|(a, b)| (prev_ids[a as usize], prev_ids[b as usize]))
                    .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                    .collect();
                let cur_links: std::collections::BTreeSet<(u32, u32)> = topo
                    .links()
                    .map(|(a, b)| (ids[a as usize], ids[b as usize]))
                    .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                    .collect();
                let stay: std::collections::BTreeSet<u32> = ids
                    .iter()
                    .copied()
                    .filter(|i| prev_ids.binary_search(i).is_ok())
                    .collect();
                for pair in prev_links.symmetric_difference(&cur_links) {
                    if stay.contains(&pair.0) && stay.contains(&pair.1) {
                        changes += 1;
                    }
                }
                prev_ids = ids;
                prev_topo = topo;
            }
            let d_theory = DegreeModel::BorderCorrected.expected_degree(&window_params);
            let lambda_theory =
                manet_mobility::rates::link_change_rate_for_degree(d_theory, radius, speed);
            BcvRow {
                window_fraction,
                mean_in_window: in_window.mean(),
                degree_sim: degree.mean(),
                degree_theory: d_theory,
                lambda_sim: 2.0 * changes as f64 / node_seconds,
                lambda_theory,
            }
        })
        .collect()
}

/// Renders the BCV-window validation table.
pub fn bcv_table(rows: &[BcvRow]) -> Table {
    let mut t = Table::new([
        "window/outer",
        "nodes in S",
        "d sim (window)",
        "d Eqn1",
        "lambda sim",
        "lambda Claim2",
    ]);
    for r in rows {
        t.row([
            fmt_sig(r.window_fraction, 3),
            fmt_sig(r.mean_in_window, 4),
            fmt_sig(r.degree_sim, 4),
            fmt_sig(r.degree_theory, 4),
            fmt_sig(r.lambda_sim, 4),
            fmt_sig(r.lambda_theory, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod bcv_tests {
    use super::*;

    #[test]
    fn bcv_window_matches_border_corrected_claims() {
        // A reduced instance (600 m window in a 1.8 km torus) keeps the
        // debug-mode test fast; the claim_validation binary runs full size.
        let rows = bcv_window(1800.0, 60.0);
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        // Uniformity: the window holds its share of nodes.
        let expect_n = 400.0 / 1e6 * 600.0 * 600.0;
        assert!(
            (r.mean_in_window - expect_n).abs() / expect_n < 0.08,
            "{r:?}"
        );
        // Claim 1 with border effect.
        let rel_d = (r.degree_sim - r.degree_theory).abs() / r.degree_theory;
        assert!(rel_d < 0.05, "degree: {r:?}");
        // Claim 2 with the border-corrected degree.
        let rel_l = (r.lambda_sim - r.lambda_theory).abs() / r.lambda_theory;
        assert!(rel_l < 0.2, "lambda: {r:?}");
    }
}
