//! Property-based tests for the utility crate.

// Compiled only with `--features slow-proptests`, which additionally
// requires re-adding the `proptest` dev-dependency (network access);
// the hermetic default build resolves zero external crates.
#![cfg(feature = "slow-proptests")]
use manet_util::rng::Rng;
use manet_util::solve::bisect;
use manet_util::stats::{linear_fit, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn f64_range_stays_in_range(seed in any::<u64>(), lo in -1e6f64..1e6, span in 1e-6f64..1e6) {
        let mut rng = Rng::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..32 {
            let x = rng.f64_range(lo..hi);
            prop_assert!(x >= lo && x < hi, "x={x} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn u64_below_stays_below(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.u64_below(bound) < bound);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in proptest::collection::vec(0u32..1000, 0..64)) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        expected.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn summary_merge_matches_sequential(a in proptest::collection::vec(-1e3f64..1e3, 0..50),
                                        b in proptest::collection::vec(-1e3f64..1e3, 0..50)) {
        let mut merged: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        merged.merge(&right);
        let whole: Summary = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((merged.sample_variance() - whole.sample_variance()).abs()
            <= 1e-5 * (1.0 + whole.sample_variance().abs()));
    }

    #[test]
    fn linear_fit_exact_on_lines(slope in -100f64..100.0, intercept in -100f64..100.0,
                                 n in 2usize..30) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    #[test]
    fn bisect_finds_roots_of_shifted_cubic(root in -10f64..10.0) {
        // f(x) = (x - root)^3 is monotone, so any bracket around root works.
        let f = |x: f64| (x - root).powi(3);
        let r = bisect(f, -11.0, 11.0, 1e-12, 500).unwrap();
        prop_assert!((r - root).abs() < 1e-6);
    }
}
