//! Sample collections with quantiles and simple distribution diagnostics.
//!
//! [`Samples`] keeps raw observations (unlike the streaming
//! [`crate::stats::Summary`]) so experiments can report
//! quantiles, render ASCII histograms, and test distributional
//! hypotheses — e.g. whether LID cluster sizes are exponential-tailed,
//! which drives the ROUTE dispersion correction.

use crate::stats::Summary;

/// An owned collection of `f64` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one observation (NaN is rejected).
    ///
    /// # Panics
    ///
    /// Panics on NaN input.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.values.push(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Streaming summary of the samples.
    pub fn summary(&self) -> Summary {
        self.values.iter().copied().collect()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between order
    /// statistics; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Raw moment `E[xᵏ]` (0 when empty).
    pub fn raw_moment(&self, k: u32) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().map(|x| x.powi(k as i32)).sum::<f64>() / self.values.len() as f64
    }

    /// Coefficient of variation `σ/μ` (0 when empty or zero-mean). An
    /// exponential distribution has CV = 1; CV > 0.5 signals dispersion a
    /// mean-value model will underestimate under convex weighting.
    pub fn coefficient_of_variation(&self) -> f64 {
        let s = self.summary();
        if s.mean() == 0.0 {
            0.0
        } else {
            s.sample_std_dev() / s.mean()
        }
    }

    /// Renders a fixed-width ASCII histogram with `bins` equal-width bins
    /// over the sample range.
    pub fn ascii_histogram(&self, bins: usize, width: usize) -> String {
        if self.values.is_empty() || bins == 0 {
            return String::from("(no samples)\n");
        }
        let min = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &x in &self.values {
            let b = (((x - min) / span) * bins as f64) as usize;
            counts[b.min(bins - 1)] += 1;
        }
        let peak = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in counts.iter().enumerate() {
            let lo = min + span * i as f64 / bins as f64;
            let hi = min + span * (i + 1) as f64 / bins as f64;
            let bar = "#".repeat(c * width / peak);
            out.push_str(&format!("[{lo:9.3}, {hi:9.3}) {c:6} {bar}\n"));
        }
        out
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let s: Samples = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(0.25), Some(2.0));
        assert_eq!(s.quantile(0.125), Some(1.5));
        assert_eq!(Samples::new().quantile(0.5), None);
    }

    #[test]
    fn moments_and_cv() {
        let s: Samples = [2.0, 2.0, 2.0].into_iter().collect();
        assert_eq!(s.raw_moment(1), 2.0);
        assert_eq!(s.raw_moment(3), 8.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        // Exponential samples have CV ≈ 1.
        let mut rng = crate::Rng::seed_from_u64(9);
        let exp: Samples = (0..40_000).map(|_| rng.exponential(0.5)).collect();
        assert!((exp.coefficient_of_variation() - 1.0).abs() < 0.03);
        assert!((exp.raw_moment(2) / exp.raw_moment(1).powi(2) - 2.0).abs() < 0.1);
    }

    #[test]
    fn histogram_renders_all_bins() {
        let s: Samples = (0..100).map(|i| i as f64).collect();
        let h = s.ascii_histogram(4, 20);
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains('#'));
        assert_eq!(Samples::new().ascii_histogram(4, 20), "(no samples)\n");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Samples::new().push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_rejected() {
        let s: Samples = [1.0].into_iter().collect();
        s.quantile(1.5);
    }
}
