//! Aligned ASCII tables and CSV emission for experiment output.
//!
//! Every figure-regeneration binary prints a [`Table`] to stdout (the
//! paper-style rows) and optionally writes the same data as CSV under
//! `target/figures/`.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use manet_util::table::Table;
///
/// let mut t = Table::new(["r/a", "f_hello (analysis)", "f_hello (sim)"]);
/// t.row(["0.10", "1.23", "1.31"]);
/// let text = t.to_ascii();
/// assert!(text.contains("f_hello"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders the table as RFC-4180-ish CSV (quotes cells containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with a sensible number of significant digits for tables.
///
/// Uses fixed notation for magnitudes in `[1e-3, 1e6)`, scientific otherwise.
pub fn fmt_sig(x: f64, digits: usize) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs();
    if (1e-3..1e6).contains(&mag) {
        let decimals = (digits as i32 - 1 - mag.log10().floor() as i32).max(0) as usize;
        format!("{x:.decimals$}")
    } else {
        format!("{x:.prec$e}", prec = digits.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["a", "long_header"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines are equally wide.
        assert!(lines[0].len() == lines[2].len() && lines[2].len() == lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["x", "y"]);
        t.row(["a,b", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_plain() {
        let mut t = Table::new(["x"]);
        t.row(["1.5"]);
        assert_eq!(t.to_csv(), "x\n1.5\n");
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("manet_util_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(["v"]);
        t.row(["9"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n9\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_sig_modes() {
        assert_eq!(fmt_sig(0.0, 3), "0");
        assert_eq!(fmt_sig(1234.5, 3), "1234"); // 4 integer digits, 0 decimals
        assert_eq!(fmt_sig(0.01234, 3), "0.0123");
        assert!(fmt_sig(1e9, 3).contains('e'));
        assert!(fmt_sig(1e-9, 3).contains('e'));
        assert_eq!(fmt_sig(f64::INFINITY, 3), "inf");
    }

    #[test]
    fn table_len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
