//! Streaming statistics, confidence intervals, and regression fits.
//!
//! The experiment harnesses aggregate per-seed measurements with [`Summary`]
//! and estimate Θ-notation growth exponents with [`loglog_slope`], which fits
//! `log y = α·log x + c` by ordinary least squares ([`linear_fit`]).

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use manet_util::stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width of the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Result of an ordinary least squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// Returns `None` when fewer than two points are given, the slices differ in
/// length, or all `x` are identical.
///
/// # Example
///
/// ```
/// use manet_util::stats::linear_fit;
///
/// let fit = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Estimates the growth exponent `α` such that `y ∝ x^α` by fitting a line in
/// log–log space. Pairs with non-positive coordinates are skipped.
///
/// Used to check the paper's Θ-notation claims (Section 6): e.g. HELLO
/// frequency should grow with exponent ≈ 1 in the transmission range.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    let mut lx = Vec::with_capacity(xs.len());
    let mut ly = Vec::with_capacity(ys.len());
    for (&x, &y) in xs.iter().zip(ys) {
        if x > 0.0 && y > 0.0 {
            lx.push(x.ln());
            ly.push(y.ln());
        }
    }
    linear_fit(&lx, &ly)
}

/// Root-mean-square relative error between paired observations, used to score
/// analysis-vs-simulation agreement. Pairs whose reference value is zero are
/// skipped; returns `None` when no usable pair exists or lengths differ.
pub fn rms_relative_error(reference: &[f64], measured: &[f64]) -> Option<f64> {
    if reference.len() != measured.len() {
        return None;
    }
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&r, &m) in reference.iter().zip(measured) {
        if r != 0.0 {
            let e = (m - r) / r;
            acc += e * e;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((acc / n as f64).sqrt())
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` when lengths differ, fewer than two points, or either
/// series is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let fit = linear_fit(xs, ys)?;
    let r = fit.r_squared.sqrt();
    Some(if fit.slope < 0.0 { -r } else { r })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..37].iter().copied().collect();
        let right: Summary = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 7.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 3.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn loglog_slope_recovers_power_law() {
        let xs: Vec<f64> = (1..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x.powf(1.5)).collect();
        let fit = loglog_slope(&xs, &ys).unwrap();
        assert!((fit.slope - 1.5).abs() < 1e-9, "slope {}", fit.slope);
    }

    #[test]
    fn loglog_slope_skips_nonpositive() {
        let fit = loglog_slope(&[0.0, 1.0, 2.0, 4.0], &[9.0, 1.0, 2.0, 4.0]).unwrap();
        assert!((fit.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rms_relative_error_zero_for_identical() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rms_relative_error(&a, &a), Some(0.0));
        assert_eq!(rms_relative_error(&a, &[1.0, 2.0]), None);
        assert_eq!(rms_relative_error(&[0.0], &[1.0]), None);
    }

    #[test]
    fn pearson_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }
}

/// Batch-means estimate of a steady-state time series' mean and 95% CI.
///
/// Correlated per-tick samples make the naive `Summary` CI overconfident;
/// splitting the series into `batches` contiguous batches and treating
/// batch means as (approximately) independent is the standard remedy for
/// steady-state simulation output (Law & Kelton). Returns
/// `(mean, ci95_half_width)`; `None` when fewer than `2·batches` samples
/// are available.
///
/// # Panics
///
/// Panics if `batches < 2`.
pub fn batch_means(series: &[f64], batches: usize) -> Option<(f64, f64)> {
    assert!(batches >= 2, "need at least 2 batches");
    if series.len() < 2 * batches {
        return None;
    }
    let batch_len = series.len() / batches;
    let mut means = Summary::new();
    for b in 0..batches {
        let chunk = &series[b * batch_len..(b + 1) * batch_len];
        means.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
    }
    Some((means.mean(), means.ci95_half_width()))
}

/// Lag-1 autocorrelation of a series (`None` for fewer than 3 samples or a
/// constant series). Values near 1 mean per-sample CIs are badly
/// overconfident; prefer [`batch_means`].
pub fn lag1_autocorrelation(series: &[f64]) -> Option<f64> {
    if series.len() < 3 {
        return None;
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var == 0.0 {
        return None;
    }
    let cov: f64 = series
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum();
    Some(cov / var)
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batch_means_of_iid_matches_summary() {
        let mut rng = crate::Rng::seed_from_u64(4);
        let series: Vec<f64> = (0..10_000).map(|_| rng.f64()).collect();
        let (mean, ci) = batch_means(&series, 20).unwrap();
        assert!((mean - 0.5).abs() < 0.02);
        assert!(ci > 0.0 && ci < 0.05);
    }

    #[test]
    fn batch_means_widens_ci_for_correlated_series() {
        // A slow random walk pinned to its mean: heavy autocorrelation.
        let mut rng = crate::Rng::seed_from_u64(5);
        let mut x = 0.0;
        let series: Vec<f64> = (0..20_000)
            .map(|_| {
                x = 0.999 * x + 0.01 * (rng.f64() - 0.5);
                x
            })
            .collect();
        let rho = lag1_autocorrelation(&series).unwrap();
        assert!(rho > 0.95, "rho {rho}");
        let naive: Summary = series.iter().copied().collect();
        let (_, batch_ci) = batch_means(&series, 10).unwrap();
        assert!(
            batch_ci > 2.0 * naive.ci95_half_width(),
            "batch CI {batch_ci} vs naive {}",
            naive.ci95_half_width()
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(batch_means(&[1.0, 2.0, 3.0], 2), None);
        assert_eq!(lag1_autocorrelation(&[1.0, 2.0]), None);
        assert_eq!(lag1_autocorrelation(&[5.0; 10]), None);
        let (m, _) = batch_means(&[1.0; 100], 4).unwrap();
        assert_eq!(m, 1.0);
    }
}
