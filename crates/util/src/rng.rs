//! Deterministic random number generation.
//!
//! The workspace avoids the `rand` crate in library code so that simulation
//! traces are reproducible across platforms and compiler versions. The
//! generator here is **Xoshiro256++** (Blackman & Vigna), seeded through
//! **SplitMix64** as its authors recommend. Both algorithms are public
//! domain and have published reference outputs, which the test suite checks.
//!
//! All sampling helpers live on [`Rng`] so that call sites read naturally:
//! `rng.f64_range(0.0..10.0)`, `rng.direction()`, `rng.shuffle(&mut v)`.

use std::fmt;
use std::ops::Range;

/// Advances a SplitMix64 state and returns the next output.
///
/// Used for seed expansion and as a tiny standalone generator in tests.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic Xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use manet_util::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.u64(), b.u64()); // same seed, same stream
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl fmt::Debug for Rng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The internal state is an implementation detail; printing it in full
        // would invite test code to depend on it.
        f.debug_struct("Rng")
            .field("state0", &self.s[0])
            .finish_non_exhaustive()
    }
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Creates a generator by expanding `seed` through SplitMix64.
    ///
    /// Any seed is valid, including zero (the expansion never produces the
    /// all-zero Xoshiro state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent generator for a sub-stream.
    ///
    /// Deterministic: the same `(parent seed, label)` pair always yields the
    /// same child stream. Used to give every node / experiment replica its
    /// own stream without coupling their consumption patterns.
    pub fn fork(&mut self, label: u64) -> Rng {
        let mixed = self.u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from_u64(mixed)
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard unbiased construction.
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or reversed, or either bound is not finite.
    #[inline]
    pub fn f64_range(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "f64_range requires a finite non-empty range, got {:?}",
            range
        );
        let x = range.start + (range.end - range.start) * self.f64();
        // Floating rounding can land exactly on `end`; clamp back inside.
        if x >= range.end {
            range.end - (range.end - range.start) * f64::EPSILON
        } else {
            x
        }
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below requires bound > 0");
        // Lemire's nearly-divisionless unbiased bounded sampling.
        let mut x = self.u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Returns a uniform angle in `[0, 2π)`.
    #[inline]
    pub fn angle(&mut self) -> f64 {
        self.f64() * std::f64::consts::TAU
    }

    /// Returns a uniformly random unit vector as `(cos θ, sin θ)`.
    #[inline]
    pub fn direction(&mut self) -> (f64, f64) {
        let a = self.angle();
        (a.cos(), a.sin())
    }

    /// Returns an exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive and finite"
        );
        // Inverse CDF; 1 - f64() is in (0, 1] so ln is finite.
        -(1.0 - self.f64()).ln() / rate
    }

    /// Returns a standard normal variate (Marsaglia polar method).
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.usize_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.usize_below(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference outputs for seed 0, published with the algorithm and used
        // by the xoshiro seeding recommendation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(&mut s), 0xF88B_B8A8_724C_81EC);
        assert_eq!(splitmix64(&mut s), 0x1B39_896A_51A8_749B);
    }

    #[test]
    fn xoshiro_matches_reference_implementation() {
        // Cross-checked against the C reference (xoshiro256plusplus.c) with
        // state seeded by four splitmix64 outputs from seed 0.
        let mut rng = Rng::seed_from_u64(0);
        let first = rng.u64();
        // Recompute independently: one step of the recurrence by hand.
        let mut sm = 0u64;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        let expect = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        assert_eq!(first, expect);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..32).map(|_| r.u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..32).map(|_| r.u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(100);
            (0..32).map(|_| r.u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn u64_below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(2);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.u64_below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::seed_from_u64(3);
        let rate = 4.0;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn direction_is_unit_length() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..100 {
            let (x, y) = rng.direction();
            assert!((x * x + y * y - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_yields_independent_looking_streams() {
        let mut parent = Rng::seed_from_u64(7);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let xs: Vec<u64> = (0..16).map(|_| a.u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn choose_empty_returns_none() {
        let mut rng = Rng::seed_from_u64(8);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    #[should_panic(expected = "bound > 0")]
    fn u64_below_zero_panics() {
        Rng::seed_from_u64(0).u64_below(0);
    }
}
