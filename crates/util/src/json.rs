//! Minimal in-house JSON support: a [`Value`] tree, a compact encoder, and
//! a recursive-descent parser.
//!
//! The workspace is hermetic (zero external crates), so the telemetry
//! plane's JSONL sinks and the `trace_report` summarizer carry their own
//! JSON layer. The encoder always produces valid, compact JSON; the parser
//! accepts any standard JSON document (objects, arrays, strings with
//! escapes, numbers, booleans, null) and reports the byte offset of the
//! first error.
//!
//! # Example
//!
//! ```
//! use manet_util::json::Value;
//!
//! let v = Value::Obj(vec![
//!     ("kind".into(), Value::from("link_up")),
//!     ("t".into(), Value::from(1.25)),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"kind":"link_up","t":1.25}"#);
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("t").and_then(Value::as_f64), Some(1.25));
//! ```

use std::fmt;

/// A JSON document node.
///
/// Objects preserve insertion order (they are association lists, not maps),
/// which keeps encoded telemetry lines stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered `(key, value)` list.
    Obj(Vec<(String, Value)>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Num(x as f64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::Num(x as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl Value {
    /// Member lookup on an object (`None` for other node types or a
    /// missing key; first match wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document from `text` (surrounding whitespace
    /// allowed, trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] carrying the byte offset and a static
    /// description of the first problem found.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Inf; encode as null rather than emit
                    // an unparsable document.
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Static description of the failure.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &'static str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| JsonError {
            offset: start,
            message: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_documents() {
        let v = Value::Obj(vec![
            ("type".into(), Value::from("event")),
            ("t".into(), Value::from(1.25)),
            ("count".into(), Value::from(42u64)),
            (
                "flags".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_encode_without_decimal_point() {
        assert_eq!(Value::from(3u64).to_string(), "3");
        assert_eq!(Value::Num(-7.0).to_string(), "-7");
        assert_eq!(Value::from(2.5).to_string(), "2.5");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash\ttab \u{1}ctl";
        let text = Value::from(s).to_string();
        assert_eq!(Value::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Value::parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("a"), None);
        assert_eq!(Value::from(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn numbers_parse_in_all_forms() {
        for (text, expect) in [
            ("0", 0.0),
            ("-12", -12.0),
            ("3.5", 3.5),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("-0.125", -0.125),
        ] {
            assert_eq!(Value::parse(text).unwrap().as_f64(), Some(expect), "{text}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Value::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(e.to_string().contains("byte 6"));
        assert!(Value::parse("").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1,}").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("truth").is_err());
        assert!(Value::parse(r#""\q""#).is_err());
        assert!(Value::parse(r#""\ud800x""#).is_err());
    }

    #[test]
    fn nested_and_empty_containers() {
        let v = Value::parse(r#"{"a": {}, "b": [[], [1]], "c": null}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Obj(vec![])));
        assert_eq!(
            v.get("b").and_then(Value::as_array).unwrap()[1],
            Value::Arr(vec![Value::Num(1.0)])
        );
        assert_eq!(v.get("c"), Some(&Value::Null));
    }
}
