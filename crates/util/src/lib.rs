//! Foundational utilities for the `clustered-manet` workspace.
//!
//! This crate deliberately has **no external dependencies** so that every
//! simulation result in the workspace is bit-for-bit reproducible across
//! platforms and toolchain versions:
//!
//! * [`rng`] — a deterministic, seedable random number generator
//!   (SplitMix64 for seeding, Xoshiro256++ for the stream), with the sampling
//!   helpers a network simulator needs (uniform ranges, directions,
//!   exponential variates, shuffles).
//! * [`stats`] — streaming summary statistics with confidence intervals,
//!   ordinary least squares, and log–log growth-exponent fits used by the
//!   asymptotic (Θ-notation) experiments.
//! * [`solve`] — robust scalar root finding and damped fixed-point iteration
//!   used to solve the Lowest-ID head-ratio equation.
//! * [`table`] — aligned ASCII table and CSV emission used by the experiment
//!   harnesses to print paper-style rows.
//! * [`json`] — a minimal JSON encoder/parser backing the telemetry plane's
//!   JSONL traces and the `trace_report` summarizer.
//!
//! # Example
//!
//! ```
//! use manet_util::rng::Rng;
//! use manet_util::stats::Summary;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let mut s = Summary::new();
//! for _ in 0..1000 {
//!     s.push(rng.f64());
//! }
//! assert!((s.mean() - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod rng;
pub mod solve;
pub mod stats;
pub mod table;

pub use hist::Samples;
pub use rng::Rng;
pub use stats::Summary;
