//! Scalar root finding and fixed-point iteration.
//!
//! The Lowest-ID head-ratio equation (paper Eqn 16) is solved as a root of
//! `g(P) = rhs(P) − P` on `(0, 1]` with [`bisect`]; [`fixed_point`] offers a
//! damped alternative used in tests to cross-validate the bisection result.

use std::fmt;

/// Error returned when a solver cannot produce a root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The supplied bracket does not satisfy `f(lo)·f(hi) ≤ 0`.
    NotBracketed,
    /// The iteration budget was exhausted before reaching the tolerance.
    MaxIterations,
    /// The function returned a non-finite value.
    NonFinite,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotBracketed => write!(f, "root is not bracketed by the interval"),
            SolveError::MaxIterations => write!(f, "iteration budget exhausted"),
            SolveError::NonFinite => write!(f, "function returned a non-finite value"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (or one of them to be
/// zero). Converges unconditionally for continuous `f`.
///
/// # Errors
///
/// * [`SolveError::NotBracketed`] if the signs of `f(lo)` and `f(hi)` match.
/// * [`SolveError::NonFinite`] if `f` produces NaN/∞.
///
/// # Example
///
/// ```
/// use manet_util::solve::bisect;
///
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), manet_util::solve::SolveError>(())
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, SolveError> {
    let mut flo = f(lo);
    let fhi = f(hi);
    if !flo.is_finite() || !fhi.is_finite() {
        return Err(SolveError::NonFinite);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(SolveError::NotBracketed);
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if !fmid.is_finite() {
            return Err(SolveError::NonFinite);
        }
        if fmid == 0.0 || (hi - lo) * 0.5 < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(SolveError::MaxIterations)
}

/// Iterates `x ← (1−damping)·x + damping·f(x)` until successive iterates are
/// within `tol`.
///
/// `damping = 1` is plain fixed-point iteration; values in `(0, 1)` stabilize
/// oscillating maps.
///
/// # Errors
///
/// * [`SolveError::MaxIterations`] if convergence is not reached.
/// * [`SolveError::NonFinite`] if the map produces NaN/∞.
pub fn fixed_point<F: FnMut(f64) -> f64>(
    mut f: F,
    mut x: f64,
    damping: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, SolveError> {
    assert!(damping > 0.0 && damping <= 1.0, "damping must be in (0, 1]");
    for _ in 0..max_iter {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(SolveError::NonFinite);
        }
        let next = (1.0 - damping) * x + damping * fx;
        if (next - x).abs() < tol {
            return Ok(next);
        }
        x = next;
    }
    Err(SolveError::MaxIterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_accepts_exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_unbracketed() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(SolveError::NotBracketed)
        );
    }

    #[test]
    fn bisect_rejects_non_finite() {
        assert_eq!(
            bisect(|_| f64::NAN, 0.0, 1.0, 1e-12, 100),
            Err(SolveError::NonFinite)
        );
    }

    #[test]
    fn fixed_point_converges_on_cosine() {
        // The Dottie number: x = cos x ≈ 0.739085.
        let r = fixed_point(|x| x.cos(), 1.0, 1.0, 1e-12, 1000).unwrap();
        assert!((r - 0.739_085_133_215_160_6).abs() < 1e-9);
    }

    #[test]
    fn fixed_point_damping_stabilizes_oscillation() {
        // x = 3.2·x·(1−x) oscillates undamped near the logistic 2-cycle, but
        // heavy damping converges to the unstable fixed point 1 − 1/3.2.
        let r = fixed_point(|x| 3.2 * x * (1.0 - x), 0.3, 0.2, 1e-10, 20_000).unwrap();
        assert!((r - (1.0 - 1.0 / 3.2)).abs() < 1e-6, "got {r}");
    }

    #[test]
    fn fixed_point_reports_budget_exhaustion() {
        assert_eq!(
            fixed_point(|x| x + 1.0, 0.0, 1.0, 1e-12, 10),
            Err(SolveError::MaxIterations)
        );
    }

    #[test]
    fn solve_error_display() {
        assert!(SolveError::NotBracketed.to_string().contains("bracket"));
        assert!(SolveError::MaxIterations.to_string().contains("budget"));
        assert!(SolveError::NonFinite.to_string().contains("finite"));
    }
}
