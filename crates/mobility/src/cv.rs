//! The Constant Velocity model on a torus.

use crate::Mobility;
use manet_geom::{BoundaryPolicy, SquareRegion, Vec2};
use manet_util::Rng;

/// Constant Velocity (CV) mobility (Cho & Hayes), realized on a torus.
///
/// Every node picks one direction uniformly at random at `t = 0` and moves
/// in it forever at the common speed `v`. On the wrap-around square this is
/// exactly the dynamics the paper's analysis assumes: uniform stationary
/// spatial distribution and per-node link generation/break rates of
/// `8ρrv/π` each (with the toroidal metric, i.e. no border effect).
///
/// # Example
///
/// ```
/// use manet_mobility::{ConstantVelocity, Mobility};
/// use manet_geom::SquareRegion;
/// use manet_util::Rng;
///
/// let mut rng = Rng::seed_from_u64(3);
/// let mut cv = ConstantVelocity::new(SquareRegion::new(100.0), 10, 5.0, &mut rng);
/// cv.step(1.0, &mut rng);
/// assert!(cv.positions().iter().all(|&p| cv.region().contains(p)));
/// ```
#[derive(Debug, Clone)]
pub struct ConstantVelocity {
    region: SquareRegion,
    speed: f64,
    positions: Vec<Vec2>,
    velocities: Vec<Vec2>,
}

impl ConstantVelocity {
    /// Creates `n` nodes at uniform positions with uniform directions.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative or not finite.
    pub fn new(region: SquareRegion, n: usize, speed: f64, rng: &mut Rng) -> Self {
        assert!(
            speed >= 0.0 && speed.is_finite(),
            "speed must be non-negative and finite"
        );
        let positions = crate::uniform_placement(region, n, rng);
        let velocities = (0..n)
            .map(|_| Vec2::from_angle(rng.angle()) * speed)
            .collect();
        ConstantVelocity {
            region,
            speed,
            positions,
            velocities,
        }
    }

    /// The common node speed `v`.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Per-node velocity vectors.
    pub fn velocities(&self) -> &[Vec2] {
        &self.velocities
    }
}

impl Mobility for ConstantVelocity {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    fn region(&self) -> SquareRegion {
        self.region
    }

    fn step(&mut self, dt: f64, _rng: &mut Rng) {
        for (p, v) in self.positions.iter_mut().zip(&self.velocities) {
            let (np, _) = self.region.advance(*p, *v, dt, BoundaryPolicy::Torus);
            *p = np;
        }
    }

    fn plan_step(&mut self, dt: f64, _rng: &mut Rng, plan: &mut crate::StepPlan) -> bool {
        // CV draws no randomness after construction: one leg per node.
        plan.begin();
        for &v in &self.velocities {
            plan.push_leg(v, dt);
            plan.end_node();
        }
        true
    }

    fn positions_mut(&mut self) -> Option<&mut [Vec2]> {
        Some(&mut self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_constant_speed, assert_near_uniform};

    #[test]
    fn moves_at_constant_speed() {
        let mut rng = Rng::seed_from_u64(1);
        let mut cv = ConstantVelocity::new(SquareRegion::new(100.0), 50, 7.0, &mut rng);
        for _ in 0..10 {
            assert_constant_speed(&mut cv, &mut rng, 7.0, 0.3);
        }
    }

    #[test]
    fn direction_never_changes() {
        let mut rng = Rng::seed_from_u64(2);
        let mut cv = ConstantVelocity::new(SquareRegion::new(100.0), 5, 3.0, &mut rng);
        let v0 = cv.velocities().to_vec();
        for _ in 0..100 {
            cv.step(0.5, &mut rng);
        }
        assert_eq!(cv.velocities(), v0.as_slice());
    }

    #[test]
    fn stationary_distribution_stays_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let mut cv = ConstantVelocity::new(SquareRegion::new(100.0), 4000, 5.0, &mut rng);
        for _ in 0..200 {
            cv.step(1.0, &mut rng);
        }
        assert_near_uniform(cv.positions(), 100.0, 4, 0.25);
    }

    #[test]
    fn plan_apply_is_bit_identical_to_step() {
        let region = SquareRegion::new(120.0);
        let mut rng = Rng::seed_from_u64(9);
        let mut stepped = ConstantVelocity::new(region, 30, 4.0, &mut rng);
        let mut planned = stepped.clone();
        let mut plan = crate::StepPlan::new();
        for _ in 0..25 {
            stepped.step(0.5, &mut rng);
            assert!(planned.plan_step(0.5, &mut rng, &mut plan));
            let pos = planned.positions_mut().unwrap();
            for (i, p) in pos.iter_mut().enumerate() {
                plan.apply_node(i, p, region);
            }
        }
        assert_eq!(stepped.positions(), planned.positions());
    }

    #[test]
    fn zero_speed_is_static() {
        let mut rng = Rng::seed_from_u64(4);
        let mut cv = ConstantVelocity::new(SquareRegion::new(50.0), 10, 0.0, &mut rng);
        let before = cv.positions().to_vec();
        cv.step(10.0, &mut rng);
        assert_eq!(cv.positions(), before.as_slice());
        assert_eq!(cv.speed(), 0.0);
        assert_eq!(cv.len(), 10);
        assert!(!cv.is_empty());
    }
}
