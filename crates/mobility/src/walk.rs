//! Classic Random Walk mobility with reflecting borders.

use crate::Mobility;
use manet_geom::{BoundaryPolicy, SquareRegion, Vec2};
use manet_util::Rng;

/// Random Walk mobility: each node repeatedly draws a direction uniformly
/// and a leg duration, walks the leg at the common speed, and reflects off
/// the region borders.
///
/// Differs from [`EpochRandomDirection`](crate::EpochRandomDirection) in two
/// analysis-relevant ways: legs are per-node (not synchronized) with random
/// durations, and borders reflect instead of wrapping, which perturbs the
/// link-change rate near the boundary.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    region: SquareRegion,
    speed: f64,
    min_leg: f64,
    max_leg: f64,
    positions: Vec<Vec2>,
    directions: Vec<Vec2>,
    leg_left: Vec<f64>,
}

impl RandomWalk {
    /// Creates `n` walkers with uniform positions and fresh legs.
    ///
    /// # Panics
    ///
    /// Panics unless `speed ≥ 0` and `0 < min_leg ≤ max_leg` (finite).
    pub fn new(
        region: SquareRegion,
        n: usize,
        speed: f64,
        min_leg: f64,
        max_leg: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            speed >= 0.0 && speed.is_finite(),
            "speed must be non-negative and finite"
        );
        assert!(
            min_leg > 0.0 && min_leg <= max_leg && max_leg.is_finite(),
            "need 0 < min_leg <= max_leg (finite)"
        );
        let positions = crate::uniform_placement(region, n, rng);
        let directions = (0..n).map(|_| Vec2::from_angle(rng.angle())).collect();
        let leg_left = (0..n).map(|_| draw_leg(min_leg, max_leg, rng)).collect();
        RandomWalk {
            region,
            speed,
            min_leg,
            max_leg,
            positions,
            directions,
            leg_left,
        }
    }

    /// The common walker speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

fn draw_leg(min_leg: f64, max_leg: f64, rng: &mut Rng) -> f64 {
    if min_leg == max_leg {
        min_leg
    } else {
        rng.f64_range(min_leg..max_leg)
    }
}

impl Mobility for RandomWalk {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    fn region(&self) -> SquareRegion {
        self.region
    }

    fn step(&mut self, dt: f64, rng: &mut Rng) {
        debug_assert!(dt >= 0.0);
        for i in 0..self.positions.len() {
            let mut remaining = dt;
            while remaining > 0.0 {
                let leg = remaining.min(self.leg_left[i]);
                let vel = self.directions[i] * self.speed;
                let (np, nv) =
                    self.region
                        .advance(self.positions[i], vel, leg, BoundaryPolicy::Reflect);
                self.positions[i] = np;
                // Reflection may have flipped the direction.
                if self.speed > 0.0 {
                    self.directions[i] = nv / self.speed;
                }
                self.leg_left[i] -= leg;
                remaining -= leg;
                if self.leg_left[i] <= 0.0 {
                    self.directions[i] = Vec2::from_angle(rng.angle());
                    self.leg_left[i] = draw_leg(self.min_leg, self.max_leg, rng);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inside_and_moves_at_speed() {
        let mut rng = Rng::seed_from_u64(30);
        let region = SquareRegion::new(60.0);
        let mut walk = RandomWalk::new(region, 30, 3.0, 1.0, 5.0, &mut rng);
        for _ in 0..300 {
            let before = walk.positions().to_vec();
            walk.step(0.4, &mut rng);
            for (a, b) in before.iter().zip(walk.positions()) {
                assert!(region.contains(*b));
                // Straight-line displacement can only shrink via reflection
                // or a mid-step turn, never exceed speed·dt.
                assert!(a.distance(*b) <= 3.0 * 0.4 + 1e-9);
            }
        }
    }

    #[test]
    fn legs_redraw_direction() {
        let mut rng = Rng::seed_from_u64(31);
        let mut walk = RandomWalk::new(SquareRegion::new(1000.0), 16, 1.0, 2.0, 2.0, &mut rng);
        let d0 = walk.directions.clone();
        walk.step(2.5, &mut rng);
        let changed = walk
            .directions
            .iter()
            .zip(&d0)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, 16, "every walker crossed exactly one leg boundary");
    }

    #[test]
    fn distribution_remains_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(32);
        let mut walk = RandomWalk::new(SquareRegion::new(100.0), 4000, 5.0, 5.0, 15.0, &mut rng);
        for _ in 0..150 {
            walk.step(1.0, &mut rng);
        }
        crate::test_support::assert_near_uniform(walk.positions(), 100.0, 4, 0.25);
    }

    #[test]
    fn accessors() {
        let mut rng = Rng::seed_from_u64(33);
        let walk = RandomWalk::new(SquareRegion::new(10.0), 4, 2.5, 1.0, 2.0, &mut rng);
        assert_eq!(walk.speed(), 2.5);
        assert_eq!(walk.len(), 4);
    }

    #[test]
    #[should_panic(expected = "min_leg")]
    fn bad_leg_bounds_panic() {
        let mut rng = Rng::seed_from_u64(34);
        RandomWalk::new(SquareRegion::new(10.0), 1, 1.0, 0.0, 2.0, &mut rng);
    }
}
