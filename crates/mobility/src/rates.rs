//! Closed-form link-dynamics rates for the Constant Velocity model.
//!
//! These are the mobility-side inputs to the paper's Claim 2. For nodes of
//! density `ρ` moving at common speed `v` in independent uniform directions
//! (the CV model), with transmission range `r`:
//!
//! * the mean relative speed between two nodes is `4v/π`
//!   ([`mean_relative_speed`]);
//! * each node gains new neighbors at rate `8ρrv/π` and loses them at the
//!   same rate ([`cv_link_generation_rate`], [`cv_link_break_rate`]);
//! * conditioning on `d` tracked neighbors instead of the unbounded-plane
//!   value `πr²ρ` rescales the total rate to `16·d·v/(π²·r)`
//!   ([`link_change_rate_for_degree`], the paper's Eqn 3).

use std::f64::consts::PI;

/// Mean of `|v₁ − v₂|` for two speed-`v` nodes with independent uniform
/// directions: `4v/π`.
pub fn mean_relative_speed(v: f64) -> f64 {
    4.0 * v / PI
}

/// CV per-node link **generation** rate on the unbounded plane: `8ρrv/π`.
///
/// Derivation: a disc of radius `r` presents a boundary of length `2πr` to a
/// flux of nodes of density `ρ` with mean relative speed `4v/π`; the inbound
/// crossing rate is `ρ·L·v̄/π = 8ρrv/π`.
pub fn cv_link_generation_rate(density: f64, r: f64, v: f64) -> f64 {
    8.0 * density * r * v / PI
}

/// CV per-node link **break** rate on the unbounded plane (equal to the
/// generation rate in the stationary regime): `8ρrv/π`.
pub fn cv_link_break_rate(density: f64, r: f64, v: f64) -> f64 {
    cv_link_generation_rate(density, r, v)
}

/// CV per-node **total** link change rate on the unbounded plane: `16ρrv/π`.
pub fn cv_link_change_rate(density: f64, r: f64, v: f64) -> f64 {
    2.0 * cv_link_generation_rate(density, r, v)
}

/// The paper's Claim 2: per-node link change rate expressed through the
/// tracked expected degree `d`, `λ = 16·d·v/(π²·r)`.
///
/// With `d = πr²ρ` (torus / unbounded plane) this reduces exactly to
/// [`cv_link_change_rate`]; with the border-corrected `d` of Claim 1 it is
/// the BCV in-window rate.
pub fn link_change_rate_for_degree(d: f64, r: f64, v: f64) -> f64 {
    16.0 * d * v / (PI * PI * r)
}

/// Per-link break (and steady-state replacement) rate implied by Claim 2:
/// `μ = 8v/(π²r)`.
///
/// A node's break rate `8dv/(π²r)` spread uniformly over its `d` links.
pub fn per_link_break_rate(r: f64, v: f64) -> f64 {
    8.0 * v / (PI * PI * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_util::Rng;

    #[test]
    fn mean_relative_speed_monte_carlo() {
        let mut rng = Rng::seed_from_u64(40);
        let v = 3.0;
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let a = manet_geom::Vec2::from_angle(rng.angle()) * v;
            let b = manet_geom::Vec2::from_angle(rng.angle()) * v;
            acc += (a - b).norm();
        }
        let mc = acc / n as f64;
        assert!((mc - mean_relative_speed(v)).abs() < 0.01, "MC {mc}");
    }

    #[test]
    fn degree_form_reduces_to_plane_form() {
        let (density, r, v) = (0.002, 120.0, 7.0);
        let d = PI * r * r * density;
        let via_degree = link_change_rate_for_degree(d, r, v);
        let direct = cv_link_change_rate(density, r, v);
        assert!((via_degree - direct).abs() < 1e-12 * direct.max(1.0));
    }

    #[test]
    fn rates_are_consistent() {
        let (density, r, v) = (0.001, 100.0, 5.0);
        assert_eq!(
            cv_link_change_rate(density, r, v),
            cv_link_generation_rate(density, r, v) + cv_link_break_rate(density, r, v)
        );
        // Per-link rate times degree equals the per-node break rate.
        let d = PI * r * r * density;
        let per_node_break = 8.0 * d * v / (PI * PI * r);
        assert!((per_link_break_rate(r, v) * d - per_node_break).abs() < 1e-12);
    }

    #[test]
    fn rates_scale_linearly() {
        let base = cv_link_change_rate(0.001, 100.0, 5.0);
        assert!((cv_link_change_rate(0.002, 100.0, 5.0) - 2.0 * base).abs() < 1e-12);
        assert!((cv_link_change_rate(0.001, 200.0, 5.0) - 2.0 * base).abs() < 1e-12);
        assert!((cv_link_change_rate(0.001, 100.0, 10.0) - 2.0 * base).abs() < 1e-12);
    }
}
