//! The paper's simulation mobility model: epoch-based random direction on a
//! wrap-around square.

use crate::Mobility;
use manet_geom::{BoundaryPolicy, SquareRegion, Vec2};
use manet_util::Rng;

/// Epoch-based random-direction mobility (the paper's "special case of RWP",
/// Section 4):
///
/// * at every epoch boundary (every `epoch` seconds) each node draws a fresh
///   direction uniformly from `[0, 2π)`;
/// * between epochs it moves in that direction at the common speed `v`;
/// * a node crossing the border reappears on the opposite border and keeps
///   moving (torus wrap) without changing direction.
///
/// The paper's description synchronizes all nodes on common epoch boundaries;
/// [`EpochRandomDirection::with_phase_jitter`] instead staggers the epoch
/// clocks uniformly, which removes the (analysis-irrelevant) simultaneity
/// artifact. Both variants preserve a uniform spatial distribution and the
/// CV link-change rate; the default matches the paper.
///
/// # Example
///
/// ```
/// use manet_mobility::{EpochRandomDirection, Mobility};
/// use manet_geom::SquareRegion;
/// use manet_util::Rng;
///
/// let mut rng = Rng::seed_from_u64(1);
/// let mut erd = EpochRandomDirection::new(SquareRegion::new(500.0), 20, 10.0, 30.0, &mut rng);
/// for _ in 0..100 { erd.step(0.5, &mut rng); }
/// assert!(erd.positions().iter().all(|&p| erd.region().contains(p)));
/// ```
#[derive(Debug, Clone)]
pub struct EpochRandomDirection {
    region: SquareRegion,
    speed: f64,
    epoch: f64,
    positions: Vec<Vec2>,
    directions: Vec<Vec2>,
    /// Per-node speeds (all equal to `speed` in the paper's model; the
    /// heterogeneous constructor draws them per node).
    speeds: Vec<f64>,
    /// Per-node time remaining until the next direction redraw.
    time_left: Vec<f64>,
}

impl EpochRandomDirection {
    /// Creates `n` nodes with synchronized epoch clocks (the paper's model).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative/not finite or `epoch` is not strictly
    /// positive/finite.
    pub fn new(region: SquareRegion, n: usize, speed: f64, epoch: f64, rng: &mut Rng) -> Self {
        Self::build(region, n, speed, epoch, rng, false)
    }

    /// Creates `n` nodes whose epoch clocks are uniformly staggered.
    pub fn with_phase_jitter(
        region: SquareRegion,
        n: usize,
        speed: f64,
        epoch: f64,
        rng: &mut Rng,
    ) -> Self {
        Self::build(region, n, speed, epoch, rng, true)
    }

    /// Creates `n` nodes whose speeds are drawn uniformly from
    /// `[v_min, v_max]` once at start — a heterogeneous fleet (pedestrians
    /// among vehicles), the setting where mobility-aware head election
    /// (MobDHop/MOBIC style) differs from identity-based election.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ v_min ≤ v_max` (finite) and `epoch > 0`.
    pub fn with_speed_range(
        region: SquareRegion,
        n: usize,
        v_min: f64,
        v_max: f64,
        epoch: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            v_min >= 0.0 && v_min <= v_max && v_max.is_finite(),
            "need 0 <= v_min <= v_max (finite)"
        );
        let mut model = Self::build(region, n, (v_min + v_max) / 2.0, epoch, rng, false);
        model.speeds = (0..n)
            .map(|_| {
                if v_min == v_max {
                    v_min
                } else {
                    rng.f64_range(v_min..v_max)
                }
            })
            .collect();
        model
    }

    fn build(
        region: SquareRegion,
        n: usize,
        speed: f64,
        epoch: f64,
        rng: &mut Rng,
        jitter: bool,
    ) -> Self {
        assert!(
            speed >= 0.0 && speed.is_finite(),
            "speed must be non-negative and finite"
        );
        assert!(
            epoch > 0.0 && epoch.is_finite(),
            "epoch must be positive and finite"
        );
        let positions = crate::uniform_placement(region, n, rng);
        let directions = (0..n).map(|_| Vec2::from_angle(rng.angle())).collect();
        let time_left = (0..n)
            .map(|_| {
                if jitter {
                    rng.f64_range(0.0..epoch)
                } else {
                    epoch
                }
            })
            .collect();
        EpochRandomDirection {
            region,
            speed,
            epoch,
            positions,
            directions,
            speeds: vec![speed; n],
            time_left,
        }
    }

    /// The common (or mean, for heterogeneous fleets) node speed `v`.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Per-node speeds.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The epoch length `τ` between direction redraws.
    pub fn epoch(&self) -> f64 {
        self.epoch
    }

    /// Current unit direction vectors.
    pub fn directions(&self) -> &[Vec2] {
        &self.directions
    }
}

impl Mobility for EpochRandomDirection {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    fn region(&self) -> SquareRegion {
        self.region
    }

    fn step(&mut self, dt: f64, rng: &mut Rng) {
        debug_assert!(dt >= 0.0);
        for i in 0..self.positions.len() {
            // A step may span several epoch boundaries; walk them in order so
            // the trajectory is independent of the tick size.
            let mut remaining = dt;
            while remaining > 0.0 {
                let leg = remaining.min(self.time_left[i]);
                let vel = self.directions[i] * self.speeds[i];
                let (np, _) =
                    self.region
                        .advance(self.positions[i], vel, leg, BoundaryPolicy::Torus);
                self.positions[i] = np;
                self.time_left[i] -= leg;
                remaining -= leg;
                if self.time_left[i] <= 0.0 {
                    self.directions[i] = Vec2::from_angle(rng.angle());
                    self.time_left[i] = self.epoch;
                }
            }
        }
    }

    fn plan_step(&mut self, dt: f64, rng: &mut Rng, plan: &mut crate::StepPlan) -> bool {
        debug_assert!(dt >= 0.0);
        // The same per-node epoch walk as `step`, minus the positional
        // advance: leg lengths depend only on `time_left`, so the RNG is
        // consumed in the identical node-id order while the recorded legs
        // let the caller replay the motion elsewhere.
        plan.begin();
        for i in 0..self.positions.len() {
            let mut remaining = dt;
            while remaining > 0.0 {
                let leg = remaining.min(self.time_left[i]);
                plan.push_leg(self.directions[i] * self.speeds[i], leg);
                self.time_left[i] -= leg;
                remaining -= leg;
                if self.time_left[i] <= 0.0 {
                    self.directions[i] = Vec2::from_angle(rng.angle());
                    self.time_left[i] = self.epoch;
                }
            }
            plan.end_node();
        }
        true
    }

    fn positions_mut(&mut self) -> Option<&mut [Vec2]> {
        Some(&mut self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_constant_speed, assert_near_uniform};

    #[test]
    fn constant_speed_within_an_epoch() {
        let mut rng = Rng::seed_from_u64(10);
        let mut erd =
            EpochRandomDirection::new(SquareRegion::new(200.0), 30, 4.0, 1000.0, &mut rng);
        for _ in 0..5 {
            assert_constant_speed(&mut erd, &mut rng, 4.0, 0.5);
        }
    }

    #[test]
    fn directions_redraw_exactly_at_epochs() {
        let mut rng = Rng::seed_from_u64(11);
        let mut erd = EpochRandomDirection::new(SquareRegion::new(200.0), 8, 1.0, 5.0, &mut rng);
        let d0 = erd.directions().to_vec();
        erd.step(4.9, &mut rng);
        assert_eq!(
            erd.directions(),
            d0.as_slice(),
            "no redraw before the epoch"
        );
        erd.step(0.2, &mut rng);
        // All nodes redraw at the synchronized boundary; a uniform redraw
        // matching the old direction has probability ~0.
        assert!(erd.directions().iter().zip(&d0).all(|(a, b)| a != b));
    }

    #[test]
    fn trajectory_is_tick_size_invariant() {
        let region = SquareRegion::new(100.0);
        let make = || {
            let mut rng = Rng::seed_from_u64(12);
            let erd = EpochRandomDirection::new(region, 10, 3.0, 7.0, &mut rng);
            (erd, rng)
        };
        // Walk 21 seconds in coarse vs fine ticks. Direction redraws consume
        // RNG in the same per-node order because steps never reorder nodes.
        let (mut coarse, mut rng_a) = make();
        for _ in 0..3 {
            coarse.step(7.0, &mut rng_a);
        }
        let (mut fine, mut rng_b) = make();
        for _ in 0..84 {
            fine.step(0.25, &mut rng_b);
        }
        for (a, b) in coarse.positions().iter().zip(fine.positions()) {
            assert!(a.distance(*b) < 1e-6, "coarse {a} vs fine {b}");
        }
    }

    #[test]
    fn preserves_uniform_distribution() {
        let mut rng = Rng::seed_from_u64(13);
        let mut erd =
            EpochRandomDirection::new(SquareRegion::new(100.0), 4000, 5.0, 10.0, &mut rng);
        for _ in 0..100 {
            erd.step(1.0, &mut rng);
        }
        assert_near_uniform(erd.positions(), 100.0, 4, 0.25);
    }

    #[test]
    fn phase_jitter_desynchronizes_redraws() {
        let mut rng = Rng::seed_from_u64(14);
        let mut erd = EpochRandomDirection::with_phase_jitter(
            SquareRegion::new(100.0),
            64,
            2.0,
            10.0,
            &mut rng,
        );
        let d0 = erd.directions().to_vec();
        erd.step(5.0, &mut rng);
        let changed = erd
            .directions()
            .iter()
            .zip(&d0)
            .filter(|(a, b)| a != b)
            .count();
        // About half of the staggered nodes should have hit a boundary.
        assert!((10..=54).contains(&changed), "changed = {changed}");
    }

    /// plan_step + apply_node must be bit-identical to step — same
    /// positions, same RNG consumption — across many ticks spanning epoch
    /// boundaries.
    #[test]
    fn plan_apply_is_bit_identical_to_step() {
        let region = SquareRegion::new(300.0);
        let make = || {
            let mut rng = Rng::seed_from_u64(42);
            let erd = EpochRandomDirection::with_phase_jitter(region, 50, 6.0, 3.0, &mut rng);
            (erd, rng)
        };
        let (mut stepped, mut rng_a) = make();
        let (mut planned, mut rng_b) = make();
        let mut plan = crate::StepPlan::new();
        for _ in 0..40 {
            stepped.step(0.7, &mut rng_a);
            assert!(planned.plan_step(0.7, &mut rng_b, &mut plan));
            assert_eq!(plan.node_count(), 50);
            let pos = planned.positions_mut().unwrap();
            for (i, p) in pos.iter_mut().enumerate() {
                plan.apply_node(i, p, region);
            }
        }
        assert_eq!(stepped.positions(), planned.positions());
        assert_eq!(stepped.directions(), planned.directions());
        // The RNG streams stayed in lockstep.
        assert_eq!(rng_a.angle(), rng_b.angle());
    }

    #[test]
    fn accessors() {
        let mut rng = Rng::seed_from_u64(15);
        let erd = EpochRandomDirection::new(SquareRegion::new(10.0), 3, 1.5, 2.5, &mut rng);
        assert_eq!(erd.speed(), 1.5);
        assert_eq!(erd.epoch(), 2.5);
        assert_eq!(erd.len(), 3);
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;
    use manet_geom::Metric;

    #[test]
    fn heterogeneous_speeds_are_respected_per_node() {
        let mut rng = Rng::seed_from_u64(70);
        let region = SquareRegion::new(500.0);
        let mut erd = EpochRandomDirection::with_speed_range(region, 40, 1.0, 20.0, 50.0, &mut rng);
        let speeds = erd.speeds().to_vec();
        assert!(speeds.iter().all(|&v| (1.0..20.0).contains(&v)));
        assert!(speeds.iter().any(|&v| v < 5.0) && speeds.iter().any(|&v| v > 15.0));
        let before = erd.positions().to_vec();
        erd.step(2.0, &mut rng);
        let metric = Metric::toroidal(500.0);
        for (i, (a, b)) in before.iter().zip(erd.positions()).enumerate() {
            let moved = metric.distance(*a, *b);
            assert!((moved - speeds[i] * 2.0).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn equal_bounds_collapse_to_common_speed() {
        let mut rng = Rng::seed_from_u64(71);
        let region = SquareRegion::new(100.0);
        let erd = EpochRandomDirection::with_speed_range(region, 5, 3.0, 3.0, 10.0, &mut rng);
        assert!(erd.speeds().iter().all(|&v| v == 3.0));
    }

    #[test]
    #[should_panic(expected = "v_min")]
    fn reversed_speed_bounds_panic() {
        let mut rng = Rng::seed_from_u64(72);
        EpochRandomDirection::with_speed_range(SquareRegion::new(10.0), 2, 5.0, 1.0, 1.0, &mut rng);
    }
}
