//! Classic Random Waypoint mobility.

use crate::Mobility;
use manet_geom::{SquareRegion, Vec2};
use manet_util::Rng;

/// Classic Random Waypoint (RWP) mobility.
///
/// Each node repeatedly: picks a destination uniformly in the region, a
/// speed uniformly in `[v_min, v_max]`, travels to the destination in a
/// straight line, pauses for `pause` seconds, and repeats.
///
/// Included because the paper (Section 3.2) argues RWP is unsuitable for
/// analysis — its stationary node distribution is center-biased and its
/// link-change rate intractable. The `mobility_sensitivity` experiment
/// demonstrates both properties empirically against
/// [`EpochRandomDirection`](crate::EpochRandomDirection).
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    region: SquareRegion,
    v_min: f64,
    v_max: f64,
    pause: f64,
    positions: Vec<Vec2>,
    states: Vec<NodeState>,
}

#[derive(Debug, Clone, Copy)]
enum NodeState {
    /// Moving toward a destination at a fixed speed.
    Moving { dest: Vec2, speed: f64 },
    /// Paused; seconds of pause remaining.
    Paused { remaining: f64 },
}

impl RandomWaypoint {
    /// Creates `n` nodes at uniform positions, each starting a fresh trip.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < v_min ≤ v_max` (finite) and `pause ≥ 0`.
    pub fn new(
        region: SquareRegion,
        n: usize,
        v_min: f64,
        v_max: f64,
        pause: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            v_min > 0.0 && v_min <= v_max && v_max.is_finite(),
            "need 0 < v_min <= v_max (finite); RWP with v_min = 0 famously has \
             degenerate average speed"
        );
        assert!(
            pause >= 0.0 && pause.is_finite(),
            "pause must be non-negative and finite"
        );
        let positions = crate::uniform_placement(region, n, rng);
        let states = positions
            .iter()
            .map(|_| NodeState::Moving {
                dest: region.sample_uniform(rng),
                speed: draw_speed(v_min, v_max, rng),
            })
            .collect();
        RandomWaypoint {
            region,
            v_min,
            v_max,
            pause,
            positions,
            states,
        }
    }

    /// Lower bound of the trip-speed distribution.
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Upper bound of the trip-speed distribution.
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Pause time between trips.
    pub fn pause(&self) -> f64 {
        self.pause
    }
}

fn draw_speed(v_min: f64, v_max: f64, rng: &mut Rng) -> f64 {
    if v_min == v_max {
        v_min
    } else {
        rng.f64_range(v_min..v_max)
    }
}

impl Mobility for RandomWaypoint {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    fn region(&self) -> SquareRegion {
        self.region
    }

    fn step(&mut self, dt: f64, rng: &mut Rng) {
        debug_assert!(dt >= 0.0);
        for i in 0..self.positions.len() {
            let mut remaining = dt;
            while remaining > 0.0 {
                match self.states[i] {
                    NodeState::Moving { dest, speed } => {
                        let to_dest = dest - self.positions[i];
                        let dist = to_dest.norm();
                        let travel = speed * remaining;
                        if travel >= dist {
                            // Arrive exactly, spend the proportional time.
                            self.positions[i] = dest;
                            remaining -= if speed > 0.0 { dist / speed } else { remaining };
                            self.states[i] = if self.pause > 0.0 {
                                NodeState::Paused {
                                    remaining: self.pause,
                                }
                            } else {
                                NodeState::Moving {
                                    dest: self.region.sample_uniform(rng),
                                    speed: draw_speed(self.v_min, self.v_max, rng),
                                }
                            };
                        } else {
                            self.positions[i] += to_dest * (travel / dist);
                            remaining = 0.0;
                        }
                    }
                    NodeState::Paused {
                        remaining: pause_left,
                    } => {
                        if pause_left > remaining {
                            self.states[i] = NodeState::Paused {
                                remaining: pause_left - remaining,
                            };
                            remaining = 0.0;
                        } else {
                            remaining -= pause_left;
                            self.states[i] = NodeState::Moving {
                                dest: self.region.sample_uniform(rng),
                                speed: draw_speed(self.v_min, self.v_max, rng),
                            };
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inside_region() {
        let mut rng = Rng::seed_from_u64(20);
        let region = SquareRegion::new(100.0);
        let mut rwp = RandomWaypoint::new(region, 40, 1.0, 10.0, 2.0, &mut rng);
        for _ in 0..500 {
            rwp.step(0.7, &mut rng);
            for &p in rwp.positions() {
                assert!(region.contains(p), "escaped: {p}");
            }
        }
    }

    #[test]
    fn displacement_bounded_by_max_speed() {
        let mut rng = Rng::seed_from_u64(21);
        let region = SquareRegion::new(100.0);
        let mut rwp = RandomWaypoint::new(region, 40, 2.0, 8.0, 0.0, &mut rng);
        for _ in 0..100 {
            let before = rwp.positions().to_vec();
            rwp.step(0.5, &mut rng);
            for (a, b) in before.iter().zip(rwp.positions()) {
                assert!(a.distance(*b) <= 8.0 * 0.5 + 1e-9);
            }
        }
    }

    #[test]
    fn pause_holds_nodes_still() {
        let mut rng = Rng::seed_from_u64(22);
        let region = SquareRegion::new(10.0);
        // Tiny region and slow speed: nodes arrive fast, then pause 1000 s.
        let mut rwp = RandomWaypoint::new(region, 10, 1.0, 1.0, 1000.0, &mut rng);
        for _ in 0..100 {
            rwp.step(1.0, &mut rng);
        }
        // By now every node has finished its (≤ 14.2 s) first trip.
        let before = rwp.positions().to_vec();
        rwp.step(5.0, &mut rng);
        assert_eq!(rwp.positions(), before.as_slice());
    }

    #[test]
    fn stationary_distribution_is_center_biased() {
        // The property the paper cites as making RWP analysis-hostile: after
        // mixing, the center of the region is denser than the border ring.
        let mut rng = Rng::seed_from_u64(23);
        let region = SquareRegion::new(100.0);
        let mut rwp = RandomWaypoint::new(region, 3000, 5.0, 5.0, 0.0, &mut rng);
        for _ in 0..600 {
            rwp.step(1.0, &mut rng);
        }
        let inner = rwp
            .positions()
            .iter()
            .filter(|p| p.x > 25.0 && p.x < 75.0 && p.y > 25.0 && p.y < 75.0)
            .count() as f64;
        // Under a uniform law the inner quarter-area square holds 25%.
        let frac = inner / 3000.0;
        assert!(frac > 0.32, "inner fraction {frac} not center-biased");
    }

    #[test]
    fn accessors() {
        let mut rng = Rng::seed_from_u64(24);
        let rwp = RandomWaypoint::new(SquareRegion::new(10.0), 2, 1.0, 2.0, 0.5, &mut rng);
        assert_eq!(rwp.v_min(), 1.0);
        assert_eq!(rwp.v_max(), 2.0);
        assert_eq!(rwp.pause(), 0.5);
    }

    #[test]
    #[should_panic(expected = "v_min")]
    fn zero_v_min_panics() {
        let mut rng = Rng::seed_from_u64(25);
        RandomWaypoint::new(SquareRegion::new(10.0), 2, 0.0, 2.0, 0.0, &mut rng);
    }
}
