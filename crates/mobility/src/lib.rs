//! Mobility models for mobile ad hoc network simulation.
//!
//! The paper's analysis rests on the **Constant Velocity (CV)** model
//! (Cho & Hayes) and its bounded variant **BCV**; its simulations use a
//! special **epoch-based random-direction** model on a wrap-around square,
//! chosen because it preserves CV's two analysis-friendly properties:
//! uniform node spatial distribution and a tractable link-change rate.
//! Classic **Random Waypoint** and **Random Walk** are included so the
//! paper's claim that they are analysis-hostile (center-biased stationary
//! distribution, intractable link dynamics) can be demonstrated empirically
//! (`mobility_sensitivity` experiment).
//!
//! All models implement [`Mobility`]; the simulator drives them through
//! trait objects.
//!
//! # Example
//!
//! ```
//! use manet_mobility::{EpochRandomDirection, Mobility};
//! use manet_geom::SquareRegion;
//! use manet_util::Rng;
//!
//! let mut rng = Rng::seed_from_u64(1);
//! let mut model = EpochRandomDirection::new(SquareRegion::new(1000.0), 50, 10.0, 20.0, &mut rng);
//! model.step(0.25, &mut rng);
//! assert_eq!(model.positions().len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cv;
mod erd;
pub mod rates;
mod rwp;
pub mod trace;
mod walk;

pub use cv::ConstantVelocity;
pub use erd::EpochRandomDirection;
pub use rwp::RandomWaypoint;
pub use trace::{RecordedTrace, TraceRecorder};
pub use walk::RandomWalk;

use manet_geom::{BoundaryPolicy, SquareRegion, Vec2};
use manet_util::Rng;

/// One tick of motion, precomputed as straight-line legs per node.
///
/// A [`StepPlan`] is the output of [`Mobility::plan_step`]: the sequential
/// pass has already performed every RNG draw and epoch bookkeeping the tick
/// needs (in node-id order, exactly as `step` would), so replaying the
/// recorded legs with [`StepPlan::apply_node`] is pure positional math.
/// Replays over disjoint position ranges are therefore safe to run on
/// worker threads and land bit-identical to the sequential `step`.
#[derive(Debug, Clone, Default)]
pub struct StepPlan {
    /// Concatenated `(velocity, duration)` legs, node-major.
    legs: Vec<(Vec2, f64)>,
    /// Node `i`'s legs are `legs[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
}

impl StepPlan {
    /// An empty plan (capacities warm up on first use).
    pub fn new() -> Self {
        StepPlan::default()
    }

    /// Resets the plan for a fresh tick, keeping allocations.
    pub fn begin(&mut self) {
        self.legs.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Records one straight-line leg for the node currently being planned.
    pub fn push_leg(&mut self, velocity: Vec2, duration: f64) {
        self.legs.push((velocity, duration));
    }

    /// Closes the current node's leg list.
    pub fn end_node(&mut self) {
        self.offsets.push(self.legs.len() as u32);
    }

    /// Number of planned nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Node `i`'s legs in execution order.
    pub fn legs_of(&self, i: usize) -> &[(Vec2, f64)] {
        &self.legs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Replays node `i`'s legs over `p` with toroidal wrap — the exact
    /// per-leg advance the sequential `step` of every planning model does.
    pub fn apply_node(&self, i: usize, p: &mut Vec2, region: SquareRegion) {
        for &(vel, leg) in self.legs_of(i) {
            let (np, _) = region.advance(*p, vel, leg, BoundaryPolicy::Torus);
            *p = np;
        }
    }
}

/// A mobility model owning the kinematic state of a fleet of nodes.
///
/// Implementations must keep every reported position inside
/// [`Mobility::region`] at all times.
pub trait Mobility {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Whether the model holds no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current positions, all inside [`Mobility::region`].
    fn positions(&self) -> &[Vec2];

    /// The deployment region.
    fn region(&self) -> SquareRegion;

    /// Advances every node by `dt` seconds.
    fn step(&mut self, dt: f64, rng: &mut Rng);

    /// Splits this tick into a sequential plan pass and a pure apply.
    ///
    /// A supporting model performs **all** of the tick's RNG draws and
    /// internal bookkeeping here (in node-id order, exactly as
    /// [`Mobility::step`] would) and records each node's straight-line
    /// legs into `plan` without moving anyone; the caller then replays the
    /// plan over [`Mobility::positions_mut`] — possibly on worker threads
    /// over disjoint ranges — and the result is bit-identical to `step`.
    ///
    /// Models whose motion cannot be expressed as pre-drawable legs (e.g.
    /// pause-state models) return `false` without touching anything; the
    /// caller falls back to the sequential `step`.
    fn plan_step(&mut self, dt: f64, rng: &mut Rng, plan: &mut StepPlan) -> bool {
        let _ = (dt, rng, plan);
        false
    }

    /// Mutable position storage for plan replay, when the model supports
    /// the plan/apply split (`None` otherwise).
    fn positions_mut(&mut self) -> Option<&mut [Vec2]> {
        None
    }
}

/// Places `n` i.i.d. uniform points in `region` (the initial condition every
/// model in this crate uses).
pub fn uniform_placement(region: SquareRegion, n: usize, rng: &mut Rng) -> Vec<Vec2> {
    (0..n).map(|_| region.sample_uniform(rng)).collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use manet_geom::Metric;

    /// Asserts that one `step(dt)` displaces every node by exactly
    /// `speed·dt` in torus distance (for constant-speed models on a torus).
    pub fn assert_constant_speed<M: Mobility>(model: &mut M, rng: &mut Rng, speed: f64, dt: f64) {
        let metric = Metric::toroidal(model.region().side());
        let before = model.positions().to_vec();
        model.step(dt, rng);
        for (a, b) in before.iter().zip(model.positions()) {
            let moved = metric.distance(*a, *b);
            assert!(
                (moved - speed * dt).abs() < 1e-9,
                "node moved {moved}, expected {}",
                speed * dt
            );
        }
    }

    /// Chi-square-ish uniformity check: occupancy of a k×k partition after
    /// many steps should be near-uniform.
    pub fn assert_near_uniform(positions: &[Vec2], side: f64, k: usize, tolerance: f64) {
        let mut counts = vec![0usize; k * k];
        for p in positions {
            let cx = ((p.x / side * k as f64) as usize).min(k - 1);
            let cy = ((p.y / side * k as f64) as usize).min(k - 1);
            counts[cy * k + cx] += 1;
        }
        let expected = positions.len() as f64 / (k * k) as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() <= tolerance * expected,
                "cell {i}: {c} vs expected {expected}"
            );
        }
    }
}
