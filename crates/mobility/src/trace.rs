//! Mobility trace recording, replay, and interchange.
//!
//! Research workflows need motion to be *reproducible across tools*: record
//! a trace once, replay it under different protocol stacks, or export it to
//! other simulators. This module provides:
//!
//! * [`TraceRecorder`] — samples any [`Mobility`] model at a fixed period
//!   into a [`RecordedTrace`];
//! * [`RecordedTrace`] — itself a [`Mobility`] model that replays the
//!   samples with linear interpolation (torus-aware), so a recorded run
//!   can be fed back into the simulator byte-for-byte;
//! * a plain-text serialization (`to_text`/`from_text`) and an **ns-2
//!   movement file** export (`to_ns2`), the de-facto interchange format of
//!   the MANET simulation literature (setdest/GloMoSim era).

use crate::Mobility;
use manet_geom::{SquareRegion, Vec2};
use manet_util::Rng;
use std::fmt::Write as _;

/// A fixed-period mobility trace: positions of every node at sample times
/// `0, period, 2·period, …`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    side: f64,
    period: f64,
    /// `frames[k][u]` = position of node `u` at time `k·period`.
    frames: Vec<Vec<Vec2>>,
    /// Replay state.
    cursor_time: f64,
    current: Vec<Vec2>,
}

/// Records a live mobility model into a [`RecordedTrace`].
#[derive(Debug)]
pub struct TraceRecorder {
    side: f64,
    period: f64,
    frames: Vec<Vec<Vec2>>,
}

impl TraceRecorder {
    /// Starts a recorder sampling every `period` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `period` is strictly positive and finite.
    pub fn new(region: SquareRegion, period: f64) -> Self {
        assert!(
            period > 0.0 && period.is_finite(),
            "period must be positive and finite"
        );
        TraceRecorder {
            side: region.side(),
            period,
            frames: Vec::new(),
        }
    }

    /// Captures the model's current positions as the next frame.
    pub fn capture<M: Mobility + ?Sized>(&mut self, model: &M) {
        self.frames.push(model.positions().to_vec());
    }

    /// Runs `model` forward for `frames` sample periods, capturing each
    /// (including the initial state), and returns the trace.
    pub fn record<M: Mobility + ?Sized>(
        mut self,
        model: &mut M,
        rng: &mut Rng,
        frames: usize,
    ) -> RecordedTrace {
        self.capture(model);
        for _ in 0..frames {
            model.step(self.period, rng);
            self.capture(model);
        }
        self.finish()
    }

    /// Finalizes into a replayable trace.
    ///
    /// # Panics
    ///
    /// Panics if nothing was captured or frames disagree on node count.
    pub fn finish(self) -> RecordedTrace {
        assert!(!self.frames.is_empty(), "no frames captured");
        let n = self.frames[0].len();
        assert!(
            self.frames.iter().all(|f| f.len() == n),
            "inconsistent node counts across frames"
        );
        let current = self.frames[0].clone();
        RecordedTrace {
            side: self.side,
            period: self.period,
            frames: self.frames,
            cursor_time: 0.0,
            current,
        }
    }
}

impl RecordedTrace {
    /// Sample period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of captured frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total covered time span.
    pub fn duration(&self) -> f64 {
        (self.frames.len().saturating_sub(1)) as f64 * self.period
    }

    /// Rewinds replay to `t = 0`.
    pub fn rewind(&mut self) {
        self.cursor_time = 0.0;
        self.current = self.frames[0].clone();
    }

    /// Position of node `u` at absolute time `t` (clamped to the trace
    /// span), interpolating linearly along the shortest torus path between
    /// surrounding frames.
    pub fn position_at(&self, u: usize, t: f64) -> Vec2 {
        let span = self.duration();
        let t = t.clamp(0.0, span);
        let k = ((t / self.period).floor() as usize).min(self.frames.len() - 1);
        if k + 1 >= self.frames.len() {
            return self.frames[k][u];
        }
        let alpha = (t - k as f64 * self.period) / self.period;
        let a = self.frames[k][u];
        let b = self.frames[k + 1][u];
        // Shortest displacement on the torus.
        let wrap = |d: f64| {
            let m = d.rem_euclid(self.side);
            if m > self.side * 0.5 {
                m - self.side
            } else {
                m
            }
        };
        let delta = Vec2::new(wrap(b.x - a.x), wrap(b.y - a.y));
        SquareRegion::new(self.side).wrap(a + delta * alpha)
    }

    /// Serializes to the crate's plain-text format:
    /// header `manet-trace v1 <side> <period> <frames> <nodes>` followed by
    /// one `x y` pair per line, frame-major.
    pub fn to_text(&self) -> String {
        let n = self.frames[0].len();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "manet-trace v1 {} {} {} {}",
            self.side,
            self.period,
            self.frames.len(),
            n
        );
        for frame in &self.frames {
            for p in frame {
                let _ = writeln!(out, "{} {}", p.x, p.y);
            }
        }
        out
    }

    /// Parses the [`to_text`](Self::to_text) format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty trace")?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 6 || parts[0] != "manet-trace" || parts[1] != "v1" {
            return Err(format!("bad header: {header:?}"));
        }
        let side: f64 = parts[2].parse().map_err(|e| format!("bad side: {e}"))?;
        let period: f64 = parts[3].parse().map_err(|e| format!("bad period: {e}"))?;
        let frame_count: usize = parts[4].parse().map_err(|e| format!("bad frames: {e}"))?;
        let n: usize = parts[5].parse().map_err(|e| format!("bad nodes: {e}"))?;
        if side <= 0.0 || period <= 0.0 || frame_count == 0 {
            return Err("non-positive header fields".into());
        }
        let mut frames = Vec::with_capacity(frame_count);
        for k in 0..frame_count {
            let mut frame = Vec::with_capacity(n);
            for u in 0..n {
                let line = lines
                    .next()
                    .ok_or_else(|| format!("truncated at frame {k} node {u}"))?;
                let mut it = line.split_whitespace();
                let x: f64 = it
                    .next()
                    .ok_or_else(|| format!("missing x at frame {k} node {u}"))?
                    .parse()
                    .map_err(|e| format!("bad x at frame {k} node {u}: {e}"))?;
                let y: f64 = it
                    .next()
                    .ok_or_else(|| format!("missing y at frame {k} node {u}"))?
                    .parse()
                    .map_err(|e| format!("bad y at frame {k} node {u}: {e}"))?;
                frame.push(Vec2::new(x, y));
            }
            frames.push(frame);
        }
        let current = frames[0].clone();
        Ok(RecordedTrace {
            side,
            period,
            frames,
            cursor_time: 0.0,
            current,
        })
    }

    /// Exports as an ns-2 movement script: initial `set X_/Y_/Z_` lines
    /// plus one `setdest` per node per frame transition.
    ///
    /// Note ns-2 nodes travel straight lines (no torus); wrap transitions
    /// appear as high-speed dashes, which is the standard artifact when
    /// exporting torus traces to ns-2 tooling.
    pub fn to_ns2(&self) -> String {
        let n = self.frames[0].len();
        let mut out = String::new();
        for (u, p) in self.frames[0].iter().enumerate() {
            let _ = writeln!(out, "$node_({u}) set X_ {}", p.x);
            let _ = writeln!(out, "$node_({u}) set Y_ {}", p.y);
            let _ = writeln!(out, "$node_({u}) set Z_ 0.0");
        }
        for k in 1..self.frames.len() {
            let t = k as f64 * self.period;
            for u in 0..n {
                let from = self.frames[k - 1][u];
                let to = self.frames[k][u];
                let speed = from.distance(to) / self.period;
                let _ = writeln!(
                    out,
                    "$ns_ at {:.6} \"$node_({u}) setdest {} {} {:.6}\"",
                    t - self.period,
                    to.x,
                    to.y,
                    speed
                );
            }
        }
        out
    }
}

impl Mobility for RecordedTrace {
    fn len(&self) -> usize {
        self.frames[0].len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.current
    }

    fn region(&self) -> SquareRegion {
        SquareRegion::new(self.side)
    }

    fn step(&mut self, dt: f64, _rng: &mut Rng) {
        self.cursor_time += dt;
        for u in 0..self.current.len() {
            self.current[u] = self.position_at(u, self.cursor_time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantVelocity;
    use manet_geom::Metric;

    fn record_cv(frames: usize) -> RecordedTrace {
        let region = SquareRegion::new(100.0);
        let mut rng = Rng::seed_from_u64(77);
        let mut cv = ConstantVelocity::new(region, 10, 4.0, &mut rng);
        TraceRecorder::new(region, 0.5).record(&mut cv, &mut rng, frames)
    }

    #[test]
    fn record_and_replay_match_at_sample_points() {
        let region = SquareRegion::new(100.0);
        let mut rng = Rng::seed_from_u64(77);
        let mut cv = ConstantVelocity::new(region, 10, 4.0, &mut rng);
        let initial = cv.positions().to_vec();
        let mut trace = TraceRecorder::new(region, 0.5).record(&mut cv, &mut rng, 20);
        assert_eq!(trace.frame_count(), 21);
        assert!((trace.duration() - 10.0).abs() < 1e-12);
        assert_eq!(trace.positions(), initial.as_slice());
        // After one period of replay, positions equal frame 1 exactly.
        let mut replay_rng = Rng::seed_from_u64(0);
        trace.step(0.5, &mut replay_rng);
        for u in 0..10 {
            assert!(trace.positions()[u].distance(trace.frames[1][u]) < 1e-9);
        }
    }

    #[test]
    fn interpolation_respects_constant_speed_on_torus() {
        let trace = record_cv(10);
        // Halfway between frames, a CV node has moved half a frame's worth
        // along the torus shortcut.
        let metric = Metric::toroidal(100.0);
        for u in 0..10 {
            let mid = trace.position_at(u, 0.25);
            let d0 = metric.distance(trace.frames[0][u], mid);
            let d1 = metric.distance(mid, trace.frames[1][u]);
            assert!((d0 - d1).abs() < 1e-9, "node {u}: {d0} vs {d1}");
            assert!((d0 + d1 - 4.0 * 0.5).abs() < 1e-9, "node {u} total");
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let trace = record_cv(5);
        let text = trace.to_text();
        let parsed = RecordedTrace::from_text(&text).unwrap();
        assert_eq!(parsed.frames, trace.frames);
        assert_eq!(parsed.period(), trace.period());
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(RecordedTrace::from_text("").is_err());
        assert!(RecordedTrace::from_text("bogus header").is_err());
        assert!(RecordedTrace::from_text("manet-trace v1 100 0.5 2 3\n1 2\n").is_err());
        assert!(RecordedTrace::from_text("manet-trace v1 100 0.5 1 1\nnot numbers\n").is_err());
        assert!(RecordedTrace::from_text("manet-trace v1 -5 0.5 1 1\n0 0\n").is_err());
    }

    #[test]
    fn ns2_export_mentions_every_node_and_frame() {
        let trace = record_cv(3);
        let ns2 = trace.to_ns2();
        for u in 0..10 {
            assert!(ns2.contains(&format!("$node_({u}) set X_")));
        }
        // 3 transitions × 10 nodes setdest lines.
        assert_eq!(ns2.matches("setdest").count(), 30);
    }

    #[test]
    fn replay_is_a_mobility_model_and_clamps_at_the_end() {
        let mut trace = record_cv(4);
        let mut rng = Rng::seed_from_u64(0);
        trace.step(100.0, &mut rng); // far past the end
        let last = trace.frames.last().unwrap().clone();
        assert_eq!(trace.positions(), last.as_slice());
        trace.rewind();
        assert_eq!(trace.positions(), trace.frames[0].as_slice());
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.region().side(), 100.0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        TraceRecorder::new(SquareRegion::new(10.0), 0.0);
    }
}
