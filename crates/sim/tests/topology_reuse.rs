//! Property tests for the allocation-reusing topology path (DESIGN.md §12):
//! `Topology::compute_into` over a reused buffer must equal a from-scratch
//! `Topology::compute`, whatever garbage the buffer held before — including
//! neighbor lists from a *larger* earlier network — and the tick diff must
//! stay a consistent, replayable stream after `retain_alive` edits both
//! endpoints of it.
//!
//! The cases are seeded (no external proptest dependency; the hermetic
//! build resolves zero crates). Larger sweeps ride behind the
//! `slow-proptests` feature like the rest of the property suites.

use manet_geom::{Metric, SpatialGrid, SquareRegion, Vec2};
use manet_sim::{LinkEventKind, Topology};
use manet_util::Rng;
use std::collections::BTreeSet;

fn random_positions(rng: &mut Rng, n: usize, side: f64) -> Vec<Vec2> {
    (0..n)
        .map(|_| Vec2::new(rng.f64() * side, rng.f64() * side))
        .collect()
}

fn assert_same(reused: &Topology, fresh: &Topology) {
    assert_eq!(reused.len(), fresh.len(), "node counts diverged");
    for i in 0..fresh.len() as u32 {
        assert_eq!(
            reused.neighbors(i),
            fresh.neighbors(i),
            "neighbor list of node {i} diverged"
        );
    }
}

/// Core property: recomputing into a dirty reused buffer gives exactly the
/// from-scratch topology, across changing node counts, radii, and metrics.
fn check_reuse(seed: u64, rounds: usize, max_nodes: usize) {
    let side = 500.0;
    let region = SquareRegion::new(side);
    let mut rng = Rng::seed_from_u64(seed);
    let mut reused = Topology::default();
    let mut grid: Option<SpatialGrid> = None;
    for round in 0..rounds {
        // Grow and shrink the network so truncate/resize paths both run.
        let n = 1 + rng.usize_below(max_nodes);
        let radius = rng.f64_range(10.0..side / 2.0);
        let metric = if rng.bernoulli(0.5) {
            Metric::toroidal(side)
        } else {
            Metric::Euclidean
        };
        let positions = random_positions(&mut rng, n, side);
        // Exercise both the cold build and the warm rebuild of the grid,
        // exactly as `World::step` does with its scratch buffers.
        match &mut grid {
            Some(g) => g.rebuild(&positions, region, radius, metric),
            None => grid = Some(SpatialGrid::build(&positions, region, radius, metric)),
        }
        let g = grid.as_ref().expect("grid built");
        reused.compute_into(g);
        let fresh = Topology::compute(&positions, region, radius, metric);
        assert_same(&reused, &fresh);
        // Symmetry + sortedness invariants hold on the reused buffer.
        for i in 0..n as u32 {
            let ns = reused.neighbors(i);
            assert!(
                ns.windows(2).all(|w| w[0] < w[1]),
                "round {round}: unsorted"
            );
            for &j in ns {
                assert_ne!(i, j, "self-link");
                assert!(reused.are_linked(j, i), "asymmetric link {i}-{j}");
            }
        }
    }
}

/// Core property: after `retain_alive` rewrites both topologies, the diff
/// stream still transforms the old link set exactly into the new one, in
/// `a < b` order with no duplicate events.
fn check_diff_stability(seed: u64, rounds: usize, max_nodes: usize) {
    let side = 400.0;
    let region = SquareRegion::new(side);
    let metric = Metric::toroidal(side);
    let mut rng = Rng::seed_from_u64(seed);
    for _ in 0..rounds {
        let n = 2 + rng.usize_below(max_nodes);
        let radius = rng.f64_range(20.0..side / 2.0);
        let p_dead = rng.f64() * 0.4;
        let alive: Vec<bool> = (0..n).map(|_| !rng.bernoulli(p_dead)).collect();

        let mut prev =
            Topology::compute(&random_positions(&mut rng, n, side), region, radius, metric);
        let mut next =
            Topology::compute(&random_positions(&mut rng, n, side), region, radius, metric);
        prev.retain_alive(&alive);
        next.retain_alive(&alive);

        let mut events = Vec::new();
        prev.diff_into(&next, &mut events);
        let mut links: BTreeSet<(u32, u32)> = prev.links().collect();
        let mut seen = BTreeSet::new();
        for e in &events {
            assert!(e.a < e.b, "event endpoints out of order: {e:?}");
            assert!(
                alive[e.a as usize] && alive[e.b as usize],
                "event touches a dead node: {e:?}"
            );
            let gen = matches!(e.kind, LinkEventKind::Generated);
            assert!(seen.insert((gen, e.a, e.b)), "duplicate event {e:?}");
            match e.kind {
                LinkEventKind::Generated => {
                    assert!(links.insert((e.a, e.b)), "generated existing link {e:?}")
                }
                LinkEventKind::Broken => {
                    assert!(links.remove(&(e.a, e.b)), "broke unknown link {e:?}")
                }
            };
        }
        let target: BTreeSet<(u32, u32)> = next.links().collect();
        assert_eq!(links, target, "replayed diff must land on the new topology");
    }
}

#[test]
fn reused_buffer_equals_from_scratch() {
    for seed in [1, 0xC0FFEE, 0x5EED_5EED] {
        check_reuse(seed, 20, 120);
    }
}

#[test]
fn diff_is_stable_after_retain_alive() {
    for seed in [2, 0xBEEF, 0xDEAD_10CC] {
        check_diff_stability(seed, 20, 100);
    }
}

/// Large sweeps (thousand-node networks, many rounds) behind the
/// `slow-proptests` gate, matching the convention of the other property
/// suites.
#[test]
#[cfg(feature = "slow-proptests")]
fn reused_buffer_equals_from_scratch_large() {
    for seed in 0..8u64 {
        check_reuse(0x1A46_E000 + seed, 12, 2000);
    }
}

#[test]
#[cfg(feature = "slow-proptests")]
fn diff_is_stable_after_retain_alive_large() {
    for seed in 0..8u64 {
        check_diff_stability(0xD1FF_0000 + seed, 12, 1500);
    }
}
