//! The zero-allocation contract of the steady-state tick (DESIGN.md §12):
//! once the scratch buffers have warmed up, `World::step` — mobility,
//! grid rebuild, `Topology::compute_into`, diff, HELLO accounting —
//! performs no heap allocation at all. Measured with a counting global
//! allocator wrapped around the system one.
//!
//! This file holds exactly one test so no concurrent test case can
//! allocate while the steady-state window is being counted.

use manet_sim::{HelloMode, QuietCtx, SimBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic increment with no other side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_world_step_is_allocation_free() {
    let mut world = SimBuilder::new()
        .nodes(400)
        .side(1000.0)
        .radius(150.0)
        .speed(10.0)
        .dt(0.5)
        .seed(1)
        .hello_mode(HelloMode::EventDriven)
        .build();
    let mut quiet = QuietCtx::new();
    // Warm up every capacity the hot loop touches: the spatial grid, the
    // double-buffered spare topology, per-node neighbor lists, and the
    // link-event vector.
    for _ in 0..1000 {
        world.step(&mut quiet.ctx());
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..100 {
        world.step(&mut quiet.ctx());
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state World::step must not allocate (got {} allocations over 100 ticks)",
        after - before
    );
}
