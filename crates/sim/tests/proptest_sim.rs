//! Property-based tests for the simulator's link tracking and accounting.

// Compiled only with `--features slow-proptests`, which additionally
// requires re-adding the `proptest` dev-dependency (network access);
// the hermetic default build resolves zero external crates.
#![cfg(feature = "slow-proptests")]
use manet_sim::{HelloMode, LinkEventKind, MessageKind, MobilityKind, QuietCtx, SimBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying the event stream from the initial topology reconstructs
    /// the final topology (events are a complete, consistent diff).
    #[test]
    fn event_stream_reconstructs_topology(seed in any::<u64>(),
                                          n in 5usize..80,
                                          speed in 0.0..40.0f64) {
        let mut world = SimBuilder::new()
            .side(500.0)
            .nodes(n)
            .radius(90.0)
            .speed(speed)
            .dt(1.0)
            .seed(seed)
            .build();
        let mut links: std::collections::BTreeSet<(u32, u32)> =
            world.topology().links().collect();
        let mut q = QuietCtx::new();
        for _ in 0..30 {
            world.step(&mut q.ctx());
            for e in world.last_events() {
                let key = (e.a, e.b);
                match e.kind {
                    LinkEventKind::Generated => {
                        prop_assert!(links.insert(key), "duplicate generation {key:?}");
                    }
                    LinkEventKind::Broken => {
                        prop_assert!(links.remove(&key), "break of unknown link {key:?}");
                    }
                }
            }
            let now: std::collections::BTreeSet<(u32, u32)> =
                world.topology().links().collect();
            prop_assert_eq!(&links, &now);
        }
    }

    /// HELLO accounting identity: event-driven beacons are exactly two per
    /// link generation, and byte counts follow the size table.
    #[test]
    fn hello_accounting_identity(seed in any::<u64>(), n in 5usize..60) {
        let mut world = SimBuilder::new()
            .side(400.0)
            .nodes(n)
            .radius(80.0)
            .speed(15.0)
            .dt(0.5)
            .seed(seed)
            .hello_mode(HelloMode::EventDriven)
            .build();
        let mut q = QuietCtx::new();
        for _ in 0..40 {
            world.step(&mut q.ctx());
        }
        let gens = world.counters().links_generated();
        prop_assert_eq!(world.counters().messages(MessageKind::Hello), 2 * gens);
        prop_assert_eq!(
            world.counters().bytes(MessageKind::Hello),
            2 * gens * world.sizes().hello as u64
        );
    }

    /// Degrees are symmetric and bounded by N−1 under any mobility model.
    #[test]
    fn topology_stays_consistent(seed in any::<u64>(), model_idx in 0usize..4) {
        let mobility = match model_idx {
            0 => MobilityKind::EpochRandomDirection { epoch: 10.0 },
            1 => MobilityKind::ConstantVelocity,
            2 => MobilityKind::RandomWaypoint { pause: 0.5 },
            _ => MobilityKind::RandomWalk { min_leg: 2.0, max_leg: 8.0 },
        };
        let n = 40usize;
        let mut world = SimBuilder::new()
            .side(300.0)
            .nodes(n)
            .radius(70.0)
            .speed(12.0)
            .dt(0.5)
            .seed(seed)
            .mobility(mobility)
            .build();
        let mut q = QuietCtx::new();
        for _ in 0..20 {
            world.step(&mut q.ctx());
            let topo = world.topology();
            for u in 0..n as u32 {
                prop_assert!(topo.degree(u) < n);
                for &w in topo.neighbors(u) {
                    prop_assert!(topo.are_linked(w, u), "asymmetric link {u}-{w}");
                    prop_assert_ne!(w, u, "self link");
                }
            }
        }
    }
}
