//! Link tracking: the unit-disk topology and its tick-to-tick diff.

use crate::NodeId;
use manet_geom::{Metric, SpatialGrid, SquareRegion, Vec2};
use manet_telemetry::Probe;

/// Whether a link appeared or disappeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkEventKind {
    /// Two nodes moved into transmission range of each other.
    Generated,
    /// Two previously linked nodes moved out of range.
    Broken,
}

/// A single link change between a pair of nodes, with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkEvent {
    /// What happened.
    pub kind: LinkEventKind,
    /// Lower-numbered endpoint.
    pub a: NodeId,
    /// Higher-numbered endpoint.
    pub b: NodeId,
}

/// Strategy for recomputing the per-tick unit-disk topology.
///
/// `World::step_with` delegates only the neighbor-list computation to the
/// builder; everything downstream — the alive mask, the diff, link events,
/// HELLO accounting, counters — is shared `World` code. Any builder that
/// produces the same sorted neighbor rows as [`GridTopology`] is therefore
/// observationally identical to the monolithic world by construction. The
/// shard plane (`manet-shard`) is the non-trivial implementation.
pub trait TopologyBuilder {
    /// Recomputes the topology of `positions` into `out`, reusing `out`'s
    /// row allocations and the scratch `grid` slot where applicable. Every
    /// row of `out` must end up sorted and cover exactly the unit-disk
    /// neighbors under `metric` — except that a builder with a degraded
    /// internal view (e.g. the shard plane under interconnect faults) may
    /// conservatively omit links, provided it emits the corresponding
    /// telemetry through `probe` at sim time `now`.
    #[allow(clippy::too_many_arguments)]
    fn build_into(
        &mut self,
        positions: &[Vec2],
        region: SquareRegion,
        radius: f64,
        metric: Metric,
        grid: &mut Option<SpatialGrid>,
        out: &mut Topology,
        probe: &mut Probe<'_>,
        now: f64,
    );
}

/// The default [`TopologyBuilder`]: one monolithic spatial hash grid,
/// rebuilt (not reallocated) in the scratch slot every tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridTopology;

impl TopologyBuilder for GridTopology {
    fn build_into(
        &mut self,
        positions: &[Vec2],
        region: SquareRegion,
        radius: f64,
        metric: Metric,
        grid: &mut Option<SpatialGrid>,
        out: &mut Topology,
        _probe: &mut Probe<'_>,
        _now: f64,
    ) {
        match grid {
            Some(g) => g.rebuild(positions, region, radius, metric),
            None => *grid = Some(SpatialGrid::build(positions, region, radius, metric)),
        }
        out.compute_into(grid.as_ref().expect("grid just built"));
    }
}

/// The current unit-disk topology: per-node sorted neighbor lists.
///
/// Rebuilt from node positions every tick; [`Topology::diff_into`] produces
/// the [`LinkEvent`] stream that drives the HELLO, CLUSTER, and ROUTE
/// protocol layers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Topology {
    neighbors: Vec<Vec<NodeId>>,
}

impl Topology {
    /// An empty topology over `n` nodes (no links).
    pub fn empty(n: usize) -> Self {
        Topology {
            neighbors: vec![Vec::new(); n],
        }
    }

    /// Computes the topology of `positions` under `metric` with unit-disk
    /// `radius`.
    pub fn compute(positions: &[Vec2], region: SquareRegion, radius: f64, metric: Metric) -> Self {
        let grid = SpatialGrid::build(positions, region, radius, metric);
        let mut topo = Topology::default();
        topo.compute_into(&grid);
        topo
    }

    /// Recomputes this topology in place from a grid already indexed over
    /// the tick's positions, reusing the per-node neighbor allocations.
    ///
    /// Equivalent to `*self = Topology::compute(..)` over the grid's
    /// inputs, but allocation-free in the steady state: neighbor lists only
    /// reallocate when a node's degree exceeds its list's past capacity.
    pub fn compute_into(&mut self, grid: &SpatialGrid) {
        let n = grid.len();
        self.neighbors.truncate(n);
        self.neighbors.resize_with(n, Vec::new);
        for (i, list) in self.neighbors.iter_mut().enumerate() {
            grid.neighbors_within(i, list);
        }
    }

    /// Resizes to `n` rows and exposes them mutably, for external
    /// [`TopologyBuilder`]s that fill neighbor lists themselves (e.g. by
    /// swapping in per-shard row buffers).
    ///
    /// Rows keep whatever stale content the previous tick left; the
    /// builder must overwrite (or swap out) every row, leaving each one
    /// sorted.
    pub fn rows_mut(&mut self, n: usize) -> &mut [Vec<NodeId>] {
        self.neighbors.truncate(n);
        self.neighbors.resize_with(n, Vec::new);
        &mut self.neighbors
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the topology covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Sorted neighbor list of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn neighbors(&self, i: NodeId) -> &[NodeId] {
        &self.neighbors[i as usize]
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: NodeId) -> usize {
        self.neighbors[i as usize].len()
    }

    /// Whether nodes `a` and `b` are directly linked.
    pub fn are_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors[a as usize].binary_search(&b).is_ok()
    }

    /// Mean degree over all nodes (0 for an empty topology).
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.neighbors.len() as f64
    }

    /// Total number of (undirected) links.
    pub fn link_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Iterates all links as `(a, b)` pairs with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.neighbors.iter().enumerate().flat_map(|(i, ns)| {
            let i = i as NodeId;
            ns.iter()
                .copied()
                .filter(move |&j| i < j)
                .map(move |j| (i, j))
        })
    }

    /// Removes every link incident to a node marked dead in `alive` (a
    /// crashed radio neither sends nor receives, so all its links vanish
    /// from the ground truth). Neighbor lists stay sorted.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len()` differs from the node count.
    pub fn retain_alive(&mut self, alive: &[bool]) {
        assert_eq!(
            self.neighbors.len(),
            alive.len(),
            "alive mask size mismatch"
        );
        for (i, list) in self.neighbors.iter_mut().enumerate() {
            if !alive[i] {
                list.clear();
            } else {
                list.retain(|&w| alive[w as usize]);
            }
        }
    }

    /// Appends to `out` the link events that transform `self` into `next`.
    ///
    /// Both topologies must cover the same node count; events are emitted
    /// once per pair (`a < b`) in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn diff_into(&self, next: &Topology, out: &mut Vec<LinkEvent>) {
        assert_eq!(
            self.len(),
            next.len(),
            "topology size changed between ticks"
        );
        for i in 0..self.neighbors.len() {
            let old = &self.neighbors[i];
            let new = &next.neighbors[i];
            // Merge-walk the two sorted lists.
            let (mut oi, mut ni) = (0, 0);
            let a = i as NodeId;
            while oi < old.len() || ni < new.len() {
                match (old.get(oi), new.get(ni)) {
                    (Some(&o), Some(&n)) if o == n => {
                        oi += 1;
                        ni += 1;
                    }
                    (Some(&o), Some(&n)) if o < n => {
                        if a < o {
                            out.push(LinkEvent {
                                kind: LinkEventKind::Broken,
                                a,
                                b: o,
                            });
                        }
                        oi += 1;
                    }
                    (Some(_), Some(&n)) => {
                        if a < n {
                            out.push(LinkEvent {
                                kind: LinkEventKind::Generated,
                                a,
                                b: n,
                            });
                        }
                        ni += 1;
                    }
                    (Some(&o), None) => {
                        if a < o {
                            out.push(LinkEvent {
                                kind: LinkEventKind::Broken,
                                a,
                                b: o,
                            });
                        }
                        oi += 1;
                    }
                    (None, Some(&n)) => {
                        if a < n {
                            out.push(LinkEvent {
                                kind: LinkEventKind::Generated,
                                a,
                                b: n,
                            });
                        }
                        ni += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_util::Rng;

    fn topo_from_lists(lists: Vec<Vec<NodeId>>) -> Topology {
        Topology { neighbors: lists }
    }

    #[test]
    fn compute_matches_pairwise_definition() {
        let region = SquareRegion::new(50.0);
        let mut rng = Rng::seed_from_u64(1);
        let positions: Vec<Vec2> = (0..60).map(|_| region.sample_uniform(&mut rng)).collect();
        let metric = Metric::toroidal(50.0);
        let topo = Topology::compute(&positions, region, 10.0, metric);
        for i in 0..60u32 {
            for j in 0..60u32 {
                if i == j {
                    continue;
                }
                let expect = metric.within(positions[i as usize], positions[j as usize], 10.0);
                assert_eq!(topo.are_linked(i, j), expect, "pair {i},{j}");
            }
        }
        // Symmetry of the neighbor lists.
        let total: usize = (0..60u32).map(|i| topo.degree(i)).sum();
        assert_eq!(total % 2, 0);
        assert_eq!(topo.link_count(), total / 2);
        assert!((topo.mean_degree() - total as f64 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn links_iterator_is_unique_and_ordered() {
        let t = topo_from_lists(vec![vec![1, 2], vec![0, 2], vec![0, 1]]);
        let links: Vec<_> = t.links().collect();
        assert_eq!(links, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn diff_detects_generation_and_break() {
        let before = topo_from_lists(vec![vec![1], vec![0], vec![]]);
        let after = topo_from_lists(vec![vec![2], vec![], vec![0]]);
        let mut events = Vec::new();
        before.diff_into(&after, &mut events);
        assert_eq!(
            events,
            vec![
                LinkEvent {
                    kind: LinkEventKind::Broken,
                    a: 0,
                    b: 1
                },
                LinkEvent {
                    kind: LinkEventKind::Generated,
                    a: 0,
                    b: 2
                },
            ]
        );
    }

    #[test]
    fn diff_of_identical_topologies_is_empty() {
        let t = topo_from_lists(vec![vec![1, 2], vec![0], vec![0]]);
        let mut events = Vec::new();
        t.diff_into(&t.clone(), &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn diff_interleaved_ids_all_cases() {
        // Exercises every branch of the merge walk.
        let before = topo_from_lists(vec![
            vec![1, 3, 5],
            vec![0],
            vec![],
            vec![0],
            vec![],
            vec![0],
        ]);
        let after = topo_from_lists(vec![
            vec![2, 3, 4],
            vec![],
            vec![0],
            vec![0],
            vec![0],
            vec![],
        ]);
        let mut events = Vec::new();
        before.diff_into(&after, &mut events);
        use LinkEventKind::*;
        let mut got = events;
        got.sort_by_key(|e| (e.a, e.b));
        assert_eq!(
            got,
            vec![
                LinkEvent {
                    kind: Broken,
                    a: 0,
                    b: 1
                },
                LinkEvent {
                    kind: Generated,
                    a: 0,
                    b: 2
                },
                LinkEvent {
                    kind: Generated,
                    a: 0,
                    b: 4
                },
                LinkEvent {
                    kind: Broken,
                    a: 0,
                    b: 5
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "size changed")]
    fn diff_rejects_mismatched_sizes() {
        let a = Topology::empty(3);
        let b = Topology::empty(4);
        a.diff_into(&b, &mut Vec::new());
    }

    #[test]
    fn retain_alive_strips_dead_links_both_ways() {
        let mut t = topo_from_lists(vec![vec![1, 2], vec![0, 2], vec![0, 1], vec![]]);
        t.retain_alive(&[true, false, true, true]);
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(1), &[] as &[NodeId]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.link_count(), 1);
        // All-alive mask is a no-op.
        let mut u = topo_from_lists(vec![vec![1], vec![0]]);
        let orig = u.clone();
        u.retain_alive(&[true, true]);
        assert_eq!(u.neighbors(0), orig.neighbors(0));
        assert_eq!(u.neighbors(1), orig.neighbors(1));
    }

    #[test]
    #[should_panic(expected = "alive mask")]
    fn retain_alive_rejects_wrong_mask_size() {
        Topology::empty(3).retain_alive(&[true, true]);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::empty(0);
        assert!(t.is_empty());
        assert_eq!(t.mean_degree(), 0.0);
        assert_eq!(t.link_count(), 0);
    }
}

impl Topology {
    /// Labels connected components; returns `(labels, component_count)`
    /// with labels in `0..count`, assigned in order of lowest contained
    /// node id.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.neighbors.len();
        let mut label = vec![usize::MAX; n];
        let mut count = 0;
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            label[start] = count;
            while let Some(u) = stack.pop() {
                for &w in &self.neighbors[u] {
                    if label[w as usize] == usize::MAX {
                        label[w as usize] = count;
                        stack.push(w as usize);
                    }
                }
            }
            count += 1;
        }
        (label, count)
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.neighbors.len() <= 1 || self.components().1 == 1
    }

    /// Fraction of unordered node pairs that are mutually reachable
    /// (1.0 for a connected topology, 0.0 for fully isolated nodes).
    pub fn pair_connectivity(&self) -> f64 {
        let n = self.neighbors.len();
        if n < 2 {
            return 1.0;
        }
        let (labels, count) = self.components();
        let mut sizes = vec![0u64; count];
        for &l in &labels {
            sizes[l] += 1;
        }
        let reachable: u64 = sizes.iter().map(|&s| s * (s - 1) / 2).sum();
        let total = (n as u64) * (n as u64 - 1) / 2;
        reachable as f64 / total as f64
    }
}

#[cfg(test)]
mod component_tests {
    use super::*;
    use manet_geom::{Metric, SquareRegion, Vec2};

    fn topo(positions: &[(f64, f64)], radius: f64) -> Topology {
        let pts: Vec<Vec2> = positions.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        Topology::compute(&pts, SquareRegion::new(1000.0), radius, Metric::Euclidean)
    }

    #[test]
    fn components_of_two_islands() {
        let t = topo(&[(0.0, 0.0), (1.0, 0.0), (500.0, 0.0), (501.0, 0.0)], 1.5);
        let (labels, count) = t.components();
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!t.is_connected());
        // Reachable pairs: 1 + 1 of 6.
        assert!((t.pair_connectivity() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn connected_path() {
        let pts: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, 0.0)).collect();
        let t = topo(&pts, 1.1);
        assert!(t.is_connected());
        assert_eq!(t.pair_connectivity(), 1.0);
        assert_eq!(t.components().1, 1);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(Topology::empty(0).is_connected());
        assert!(Topology::empty(1).is_connected());
        assert_eq!(Topology::empty(1).pair_connectivity(), 1.0);
        let isolated = Topology::empty(4);
        assert_eq!(isolated.components().1, 4);
        assert_eq!(isolated.pair_connectivity(), 0.0);
    }
}
