//! Fault injection: lossy channels and node churn.
//!
//! The paper derives *lower* bounds on control overhead under an ideal
//! channel: every HELLO/CLUSTER/ROUTE message is delivered and link breaks
//! are detected for free by soft timers. This module supplies the
//! counterfactual — a seeded, deterministic [`FaultPlan`] combining
//! per-message loss (IID Bernoulli or a two-state Gilbert–Elliott burst
//! channel) with a node churn schedule (crash/recover events) — so the
//! *gap* a real deployment pays above the bound becomes measurable.
//!
//! Everything here is deterministic: a [`Channel`] is a seeded realization
//! of a [`LossModel`], and per-layer channels are forked from the plan's
//! seed through fixed stream labels, so two runs with the same seed and
//! the same plan replay bit-identical fault sequences.
//!
//! [`FaultPlan::ideal`] (no loss, no churn) is the zero-cost default: the
//! ideal channel never consumes randomness and never drops, so the whole
//! simulator reduces exactly to the paper's lower-bound setting.

use crate::NodeId;
use manet_util::rng::{splitmix64, Rng};
use std::fmt;

/// Stream label for the HELLO layer's channel (see [`FaultPlan::channel`]).
pub const STREAM_HELLO: u64 = 1;
/// Stream label for the CLUSTER layer's channel.
pub const STREAM_CLUSTER: u64 = 2;
/// Stream label for the ROUTE layer's channel.
pub const STREAM_ROUTE: u64 = 3;

/// An invalid user-supplied fault-plane parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A probability parameter was outside `[0, 1]` (or not a number).
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A rate or duration parameter was not positive and finite.
    InvalidRate {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A churn event referenced a node outside the simulated population.
    NodeOutOfRange {
        /// Offending node id.
        node: NodeId,
        /// Population size.
        nodes: usize,
    },
    /// A stall event referenced a shard outside the shard layout.
    ShardOutOfRange {
        /// Offending shard index.
        shard: u16,
        /// Shard count.
        shards: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultError::InvalidProbability { name, value } => {
                write!(f, "{name} must be a probability in [0, 1], got {value}")
            }
            FaultError::InvalidRate { name, value } => {
                write!(f, "{name} must be positive and finite, got {value}")
            }
            FaultError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "churn event names node {node}, but only {nodes} nodes exist"
                )
            }
            FaultError::ShardOutOfRange { shard, shards } => {
                write!(
                    f,
                    "stall event names shard {shard}, but only {shards} shards exist"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

fn check_probability(name: &'static str, value: f64) -> Result<(), FaultError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(FaultError::InvalidProbability { name, value })
    }
}

/// Per-message loss model of the control channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// Perfect delivery — the paper's ideal-channel assumption. Default.
    #[default]
    Ideal,
    /// Independent loss: every message is dropped with probability `p`.
    Bernoulli {
        /// Per-message loss probability.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst-loss channel. The channel alternates
    /// between a *good* and a *bad* state with per-message transition
    /// probabilities; each state drops messages at its own rate, producing
    /// the time-correlated loss bursts of real radio links.
    GilbertElliott {
        /// P(good → bad) per delivery attempt.
        p_gb: f64,
        /// P(bad → good) per delivery attempt.
        p_bg: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Validates every parameter, returning the model unchanged on success.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidProbability`] for any parameter outside
    /// `[0, 1]`.
    pub fn validated(self) -> Result<Self, FaultError> {
        match self {
            LossModel::Ideal => {}
            LossModel::Bernoulli { p } => check_probability("loss probability p", p)?,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                check_probability("p_gb", p_gb)?;
                check_probability("p_bg", p_bg)?;
                check_probability("loss_good", loss_good)?;
                check_probability("loss_bad", loss_bad)?;
            }
        }
        Ok(self)
    }

    /// Whether this model never drops a message.
    pub fn is_ideal(&self) -> bool {
        match *self {
            LossModel::Ideal => true,
            LossModel::Bernoulli { p } => p == 0.0,
            LossModel::GilbertElliott {
                p_gb,
                loss_good,
                loss_bad,
                ..
            } => loss_good == 0.0 && (loss_bad == 0.0 || p_gb == 0.0),
        }
    }

    /// Long-run mean loss probability (stationary expectation).
    ///
    /// For Gilbert–Elliott this is `π_g·loss_good + π_b·loss_bad` with the
    /// stationary state split `π_b = p_gb / (p_gb + p_bg)`; a channel that
    /// can never leave its initial good state has `π_b = 0`.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::Ideal => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                if p_gb == 0.0 || p_gb + p_bg == 0.0 {
                    loss_good
                } else {
                    let pi_b = p_gb / (p_gb + p_bg);
                    (1.0 - pi_b) * loss_good + pi_b * loss_bad
                }
            }
        }
    }
}

/// A seeded, deterministic realization of a [`LossModel`].
///
/// Each protocol layer owns its own channel (forked from the plan seed via
/// a fixed stream label) so that loss draws in one layer never perturb
/// another layer's stream. An ideal channel consumes no randomness at all.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    model: LossModel,
    rng: Rng,
    /// Gilbert–Elliott state: currently in the bad state.
    bad: bool,
}

impl Channel {
    /// Creates a channel realizing `model` from `seed`.
    pub fn new(model: LossModel, seed: u64) -> Self {
        Channel {
            model,
            rng: Rng::seed_from_u64(seed),
            bad: false,
        }
    }

    /// The loss model realized by this channel.
    pub fn model(&self) -> LossModel {
        self.model
    }

    /// Whether this channel never drops a message.
    pub fn is_ideal(&self) -> bool {
        self.model.is_ideal()
    }

    /// Draws one delivery attempt: `true` = delivered, `false` = dropped.
    ///
    /// Gilbert–Elliott channels first take one state-transition step, so
    /// the burst process advances per attempted message.
    pub fn deliver(&mut self) -> bool {
        match self.model {
            LossModel::Ideal => true,
            LossModel::Bernoulli { p } => p == 0.0 || !self.rng.bernoulli(p),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                let flip = if self.bad { p_bg } else { p_gb };
                if self.rng.bernoulli(flip) {
                    self.bad = !self.bad;
                }
                let loss = if self.bad { loss_bad } else { loss_good };
                loss == 0.0 || !self.rng.bernoulli(loss)
            }
        }
    }
}

/// Whether a churn event takes a node down or brings it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnKind {
    /// The node fails: all its links vanish and it neither sends nor
    /// receives until it recovers.
    Crash,
    /// The node comes back up with empty protocol state.
    Recover,
}

/// A scheduled crash or recovery of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Simulation time at which the event fires.
    pub time: f64,
    /// The affected node.
    pub node: NodeId,
    /// Crash or recover.
    pub kind: ChurnKind,
}

/// A time-ordered schedule of [`ChurnEvent`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// The empty schedule (no churn) — the paper's immortal-node setting.
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// Builds a schedule from explicit events, sorting them by time (ties
    /// broken by node id, crashes before recoveries).
    pub fn new(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then_with(|| a.node.cmp(&b.node))
                .then_with(|| (a.kind == ChurnKind::Recover).cmp(&(b.kind == ChurnKind::Recover)))
        });
        ChurnSchedule { events }
    }

    /// Generates memoryless crash/recover churn over `[0, horizon)`:
    /// every node fails at rate `crash_rate` (per up-second) and stays
    /// down for an exponential time of mean `mean_downtime` seconds.
    ///
    /// Deterministic in `(nodes, rates, horizon, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidRate`] unless `crash_rate` is
    /// non-negative and finite and `mean_downtime` and `horizon` are
    /// positive and finite (`crash_rate == 0` yields an empty schedule).
    pub fn poisson(
        nodes: usize,
        crash_rate: f64,
        mean_downtime: f64,
        horizon: f64,
        seed: u64,
    ) -> Result<Self, FaultError> {
        if !(crash_rate >= 0.0 && crash_rate.is_finite()) {
            return Err(FaultError::InvalidRate {
                name: "crash_rate",
                value: crash_rate,
            });
        }
        if !(mean_downtime > 0.0 && mean_downtime.is_finite()) {
            return Err(FaultError::InvalidRate {
                name: "mean_downtime",
                value: mean_downtime,
            });
        }
        if !(horizon > 0.0 && horizon.is_finite()) {
            return Err(FaultError::InvalidRate {
                name: "horizon",
                value: horizon,
            });
        }
        let mut events = Vec::new();
        if crash_rate > 0.0 {
            let mut root = Rng::seed_from_u64(seed);
            for node in 0..nodes as NodeId {
                let mut rng = root.fork(node as u64);
                let mut t = rng.exponential(crash_rate);
                while t < horizon {
                    events.push(ChurnEvent {
                        time: t,
                        node,
                        kind: ChurnKind::Crash,
                    });
                    t += rng.exponential(1.0 / mean_downtime);
                    if t >= horizon {
                        break;
                    }
                    events.push(ChurnEvent {
                        time: t,
                        node,
                        kind: ChurnKind::Recover,
                    });
                    t += rng.exponential(crash_rate);
                }
            }
        }
        Ok(ChurnSchedule::new(events))
    }

    /// The events in firing order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks that every event names a node below `nodes`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::NodeOutOfRange`] for the first offender.
    pub fn check_population(&self, nodes: usize) -> Result<(), FaultError> {
        for e in &self.events {
            if e.node as usize >= nodes {
                return Err(FaultError::NodeOutOfRange {
                    node: e.node,
                    nodes,
                });
            }
        }
        Ok(())
    }
}

/// One scheduled shard-interconnect stall: shard `shard` stops sending
/// and receiving interconnect messages for `ticks` consecutive topology
/// ticks starting at `tick` (inclusive).
///
/// A stall freezes only the shard's interconnect endpoints — its compute
/// still runs, but on whatever ghost view it last received, and its peers
/// stop hearing from it. This is the shard-level analogue of a node
/// crash in [`ChurnSchedule`]: the process is alive but partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEvent {
    /// First stalled tick (the shard plane counts topology builds).
    pub tick: u64,
    /// The stalled shard (row-major shard index).
    pub shard: u16,
    /// Stall duration in ticks (at least 1 to have any effect).
    pub ticks: u32,
}

/// A tick-ordered schedule of [`StallEvent`]s, analogous to
/// [`ChurnSchedule`] but indexed by shard and discrete tick rather than
/// node and simulated time (the interconnect exchanges messages once per
/// topology tick, so ticks are its natural clock).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StallSchedule {
    events: Vec<StallEvent>,
}

impl StallSchedule {
    /// The empty schedule (no stalls) — the ideal interconnect setting.
    pub fn none() -> Self {
        StallSchedule::default()
    }

    /// Builds a schedule from explicit events, sorting them by tick (ties
    /// broken by shard index).
    pub fn new(mut events: Vec<StallEvent>) -> Self {
        events.sort_by(|a, b| a.tick.cmp(&b.tick).then_with(|| a.shard.cmp(&b.shard)));
        StallSchedule { events }
    }

    /// Generates memoryless stall churn over ticks `[0, horizon)`: every
    /// shard stalls at rate `stall_rate` (per up-tick) and stays frozen
    /// for an exponential duration of mean `mean_stall` ticks (rounded up
    /// to at least one tick).
    ///
    /// Deterministic in `(shards, rates, horizon, seed)`; each shard's
    /// draws come from an independent forked stream, so adding shards
    /// never perturbs the existing ones.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidRate`] unless `stall_rate` is
    /// non-negative and finite and `mean_stall` is positive and finite
    /// (`stall_rate == 0` yields an empty schedule).
    pub fn poisson(
        shards: usize,
        stall_rate: f64,
        mean_stall: f64,
        horizon: u64,
        seed: u64,
    ) -> Result<Self, FaultError> {
        if !(stall_rate >= 0.0 && stall_rate.is_finite()) {
            return Err(FaultError::InvalidRate {
                name: "stall_rate",
                value: stall_rate,
            });
        }
        if !(mean_stall > 0.0 && mean_stall.is_finite()) {
            return Err(FaultError::InvalidRate {
                name: "mean_stall",
                value: mean_stall,
            });
        }
        let mut events = Vec::new();
        if stall_rate > 0.0 {
            let mut root = Rng::seed_from_u64(seed);
            for shard in 0..shards.min(u16::MAX as usize) as u16 {
                let mut rng = root.fork(shard as u64);
                let mut t = rng.exponential(stall_rate);
                while (t as u64) < horizon {
                    let ticks = rng.exponential(1.0 / mean_stall).ceil().max(1.0) as u32;
                    events.push(StallEvent {
                        tick: t as u64,
                        shard,
                        ticks,
                    });
                    t += ticks as f64 + rng.exponential(stall_rate);
                }
            }
        }
        Ok(StallSchedule::new(events))
    }

    /// The events in firing order.
    pub fn events(&self) -> &[StallEvent] {
        &self.events
    }

    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `shard` is stalled at `tick` (covered by any event).
    pub fn stalled(&self, shard: u16, tick: u64) -> bool {
        self.events
            .iter()
            .any(|e| e.shard == shard && e.tick <= tick && tick < e.tick + e.ticks as u64)
    }

    /// Length of the contiguous stalled run of `shard` starting at
    /// `tick` (0 when the shard is up), merging overlapping events.
    pub fn stall_run(&self, shard: u16, tick: u64) -> u64 {
        let mut t = tick;
        while self.stalled(shard, t) {
            t += 1;
        }
        t - tick
    }

    /// Checks that every event names a shard below `shards`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::ShardOutOfRange`] for the first offender.
    pub fn check_shards(&self, shards: usize) -> Result<(), FaultError> {
        for e in &self.events {
            if e.shard as usize >= shards {
                return Err(FaultError::ShardOutOfRange {
                    shard: e.shard,
                    shards,
                });
            }
        }
        Ok(())
    }
}

/// A complete, seeded fault scenario: a channel loss model plus a node
/// churn schedule.
///
/// The default plan is [`FaultPlan::ideal`] — no loss, no churn — under
/// which every fault-aware code path reduces exactly to the paper's
/// lower-bound behavior.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-message loss model shared (as independent seeded realizations)
    /// by all protocol layers.
    pub loss: LossModel,
    /// Node crash/recover schedule.
    pub churn: ChurnSchedule,
    /// Root seed for every channel realization derived from this plan.
    pub seed: u64,
}

impl FaultPlan {
    /// The ideal plan: perfect channel, immortal nodes.
    pub fn ideal() -> Self {
        FaultPlan::default()
    }

    /// A pure Bernoulli-loss plan with no churn.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidProbability`] unless `p ∈ [0, 1]`.
    pub fn bernoulli(p: f64, seed: u64) -> Result<Self, FaultError> {
        Ok(FaultPlan {
            loss: LossModel::Bernoulli { p }.validated()?,
            churn: ChurnSchedule::none(),
            seed,
        })
    }

    /// Whether this plan can never drop a message or kill a node.
    pub fn is_ideal(&self) -> bool {
        self.loss.is_ideal() && self.churn.is_empty()
    }

    /// Validates the loss model parameters, returning the plan unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultError`] from [`LossModel::validated`].
    pub fn validated(self) -> Result<Self, FaultError> {
        self.loss.validated()?;
        Ok(self)
    }

    /// Forks a deterministic per-layer channel. Fixed `stream` labels
    /// ([`STREAM_HELLO`], [`STREAM_CLUSTER`], [`STREAM_ROUTE`]) keep the
    /// layers' loss draws independent of each other and of call order.
    pub fn channel(&self, stream: u64) -> Channel {
        let mut mix = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Channel::new(self.loss, splitmix64(&mut mix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_channel_delivers_everything_without_randomness() {
        let mut c = Channel::new(LossModel::Ideal, 7);
        let before = c.clone();
        for _ in 0..100 {
            assert!(c.deliver());
        }
        assert_eq!(c, before, "ideal channel must not consume randomness");
        assert!(c.is_ideal());
        assert_eq!(c.model().mean_loss(), 0.0);
    }

    #[test]
    fn bernoulli_loss_matches_p() {
        let mut c = Channel::new(LossModel::Bernoulli { p: 0.3 }, 42);
        let n = 20_000;
        let delivered = (0..n).filter(|_| c.deliver()).count();
        let rate = 1.0 - delivered as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "loss rate {rate}");
    }

    #[test]
    fn bernoulli_zero_is_ideal_and_lossless() {
        let model = LossModel::Bernoulli { p: 0.0 };
        assert!(model.is_ideal());
        let mut c = Channel::new(model, 1);
        assert!((0..1000).all(|_| c.deliver()));
    }

    #[test]
    fn gilbert_elliott_matches_stationary_loss() {
        let model = LossModel::GilbertElliott {
            p_gb: 0.05,
            p_bg: 0.25,
            loss_good: 0.01,
            loss_bad: 0.6,
        };
        let expect = model.mean_loss();
        // π_b = 0.05/0.30 = 1/6; mean = 5/6·0.01 + 1/6·0.6.
        assert!((expect - (5.0 / 6.0 * 0.01 + 0.6 / 6.0)).abs() < 1e-12);
        let mut c = Channel::new(model, 3);
        let n = 60_000;
        let lost = (0..n).filter(|_| !c.deliver()).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - expect).abs() < 0.01, "loss {rate} vs {expect}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // With sticky states, consecutive losses should be far likelier
        // than under IID loss of the same mean.
        let model = LossModel::GilbertElliott {
            p_gb: 0.02,
            p_bg: 0.1,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let mut c = Channel::new(model, 9);
        let draws: Vec<bool> = (0..40_000).map(|_| !c.deliver()).collect();
        let losses = draws.iter().filter(|&&l| l).count() as f64;
        let pairs = draws.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let p = losses / draws.len() as f64;
        let p_pair = pairs / (draws.len() - 1) as f64;
        assert!(
            p_pair > 2.0 * p * p,
            "burstiness: P(loss,loss) {p_pair:.4} should exceed iid {:.4}",
            p * p
        );
    }

    #[test]
    fn channels_are_deterministic_and_stream_independent() {
        let plan = FaultPlan::bernoulli(0.2, 77).unwrap();
        let draws = |mut c: Channel| (0..64).map(|_| c.deliver()).collect::<Vec<_>>();
        assert_eq!(
            draws(plan.channel(STREAM_HELLO)),
            draws(plan.channel(STREAM_HELLO))
        );
        assert_ne!(
            draws(plan.channel(STREAM_HELLO)),
            draws(plan.channel(STREAM_CLUSTER))
        );
        assert_ne!(
            draws(plan.channel(STREAM_CLUSTER)),
            draws(plan.channel(STREAM_ROUTE))
        );
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert!(matches!(
            FaultPlan::bernoulli(1.5, 0),
            Err(FaultError::InvalidProbability {
                name: "loss probability p",
                ..
            })
        ));
        assert!(LossModel::Bernoulli { p: f64::NAN }.validated().is_err());
        assert!(LossModel::GilbertElliott {
            p_gb: -0.1,
            p_bg: 0.5,
            loss_good: 0.0,
            loss_bad: 1.0
        }
        .validated()
        .is_err());
        let e = ChurnSchedule::poisson(10, -1.0, 5.0, 100.0, 0);
        assert!(matches!(
            e,
            Err(FaultError::InvalidRate {
                name: "crash_rate",
                ..
            })
        ));
        assert!(ChurnSchedule::poisson(10, 0.01, 0.0, 100.0, 0).is_err());
        assert!(ChurnSchedule::poisson(10, 0.01, 5.0, f64::INFINITY, 0).is_err());
        // Errors display usefully.
        let msg = FaultError::InvalidProbability {
            name: "p",
            value: 2.0,
        }
        .to_string();
        assert!(msg.contains("[0, 1]"));
    }

    #[test]
    fn poisson_churn_is_sorted_alternating_and_deterministic() {
        let a = ChurnSchedule::poisson(50, 0.01, 10.0, 500.0, 5).unwrap();
        let b = ChurnSchedule::poisson(50, 0.01, 10.0, 500.0, 5).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Sorted by time.
        for w in a.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Per node: alternating crash/recover starting with a crash.
        for node in 0..50 {
            let kinds: Vec<ChurnKind> = a
                .events()
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.kind)
                .collect();
            for (i, k) in kinds.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    ChurnKind::Crash
                } else {
                    ChurnKind::Recover
                };
                assert_eq!(*k, expect, "node {node} event {i}");
            }
        }
        assert!(a.check_population(50).is_ok());
        assert!(matches!(
            a.check_population(10),
            Err(FaultError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_rate_churn_is_empty() {
        let s = ChurnSchedule::poisson(20, 0.0, 10.0, 100.0, 1).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn ideal_plan_roundtrip() {
        let plan = FaultPlan::ideal();
        assert!(plan.is_ideal());
        assert!(plan.validated().is_ok());
        assert!(!FaultPlan::bernoulli(0.1, 0).unwrap().is_ideal());
        let churny = FaultPlan {
            loss: LossModel::Ideal,
            churn: ChurnSchedule::new(vec![ChurnEvent {
                time: 1.0,
                node: 0,
                kind: ChurnKind::Crash,
            }]),
            seed: 0,
        };
        assert!(!churny.is_ideal());
    }

    #[test]
    fn stall_schedule_covers_intervals_and_validates() {
        let s = StallSchedule::new(vec![
            StallEvent {
                tick: 10,
                shard: 1,
                ticks: 3,
            },
            StallEvent {
                tick: 4,
                shard: 0,
                ticks: 1,
            },
        ]);
        // Sorted by tick.
        assert_eq!(s.events()[0].tick, 4);
        assert!(s.stalled(0, 4));
        assert!(!s.stalled(0, 5));
        assert!(s.stalled(1, 10) && s.stalled(1, 12));
        assert!(!s.stalled(1, 13));
        assert!(!s.stalled(2, 10));
        assert_eq!(s.stall_run(1, 10), 3);
        assert_eq!(s.stall_run(1, 11), 2);
        assert_eq!(s.stall_run(1, 13), 0);
        assert!(s.check_shards(2).is_ok());
        assert!(matches!(
            s.check_shards(1),
            Err(FaultError::ShardOutOfRange {
                shard: 1,
                shards: 1
            })
        ));
        let msg = FaultError::ShardOutOfRange {
            shard: 7,
            shards: 4,
        }
        .to_string();
        assert!(msg.contains("shard 7"));
        assert!(StallSchedule::none().is_empty());
    }

    #[test]
    fn poisson_stalls_are_deterministic_and_non_overlapping_per_shard() {
        let a = StallSchedule::poisson(6, 0.02, 4.0, 400, 9).unwrap();
        let b = StallSchedule::poisson(6, 0.02, 4.0, 400, 9).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.check_shards(6).is_ok());
        // Per shard: events are disjoint and ordered (a shard cannot
        // stall while already stalled).
        for shard in 0..6u16 {
            let evs: Vec<&StallEvent> = a.events().iter().filter(|e| e.shard == shard).collect();
            for w in evs.windows(2) {
                assert!(w[0].tick + w[0].ticks as u64 <= w[1].tick);
            }
            for e in &evs {
                assert!(e.ticks >= 1);
            }
        }
        // Adding shards never perturbs existing streams.
        let wider = StallSchedule::poisson(8, 0.02, 4.0, 400, 9).unwrap();
        let narrow: Vec<&StallEvent> = wider.events().iter().filter(|e| e.shard < 6).collect();
        assert_eq!(narrow.len(), a.events().len());
        // Validation mirrors churn's.
        assert!(StallSchedule::poisson(4, -0.1, 4.0, 100, 0).is_err());
        assert!(StallSchedule::poisson(4, 0.1, 0.0, 100, 0).is_err());
        assert!(StallSchedule::poisson(4, 0.0, 4.0, 100, 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn explicit_schedule_sorts_events() {
        let s = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 5.0,
                node: 1,
                kind: ChurnKind::Recover,
            },
            ChurnEvent {
                time: 1.0,
                node: 2,
                kind: ChurnKind::Crash,
            },
            ChurnEvent {
                time: 1.0,
                node: 0,
                kind: ChurnKind::Crash,
            },
        ]);
        let times: Vec<f64> = s.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 1.0, 5.0]);
        assert_eq!(s.events()[0].node, 0);
    }
}
