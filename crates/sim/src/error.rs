//! Typed errors for user-supplied simulation parameters.
//!
//! The original seed API asserted on bad geometry/timing; those panics are
//! still available through the infallible constructors, but every
//! parameter reachable from user input now also has a `try_*` variant
//! returning [`SimError`] so embedding applications can surface
//! configuration mistakes without unwinding.

use crate::fault::FaultError;
use std::fmt;

/// An invalid user-supplied simulation parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// A scalar parameter that must be strictly positive and finite.
    NonPositive {
        /// Parameter name (e.g. `"dt"`, `"radius"`).
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The transmission range must stay below the region side (the paper's
    /// `r < a` requirement).
    RadiusExceedsSide {
        /// Transmission range `r`.
        radius: f64,
        /// Region side `a`.
        side: f64,
    },
    /// HELLO timing must satisfy `0 < interval ≤ timeout` (finite).
    HelloTiming {
        /// Beacon interval.
        interval: f64,
        /// Soft-timer timeout.
        timeout: f64,
    },
    /// An invalid fault-plane parameter.
    Fault(FaultError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::NonPositive { name, value } => {
                write!(f, "{name} must be positive and finite, got {value}")
            }
            SimError::RadiusExceedsSide { radius, side } => {
                write!(f, "the model requires r < a (got r = {radius}, a = {side})")
            }
            SimError::HelloTiming { interval, timeout } => {
                write!(
                    f,
                    "HELLO timing requires 0 < interval <= timeout, \
                     got interval = {interval}, timeout = {timeout}"
                )
            }
            SimError::Fault(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

/// Checks that `value` is strictly positive and finite.
pub(crate) fn positive(name: &'static str, value: f64) -> Result<f64, SimError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(SimError::NonPositive { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = positive("dt", 0.0).unwrap_err();
        assert!(e.to_string().contains("dt"));
        assert!(positive("radius", f64::NAN).is_err());
        assert_eq!(positive("radius", 2.0), Ok(2.0));
        let e = SimError::RadiusExceedsSide {
            radius: 5.0,
            side: 5.0,
        };
        assert!(e.to_string().contains("r < a"));
        let e = SimError::HelloTiming {
            interval: 2.0,
            timeout: 1.0,
        };
        assert!(e.to_string().contains("interval"));
    }

    #[test]
    fn fault_errors_convert_and_chain() {
        let fe = FaultError::InvalidProbability {
            name: "p",
            value: 2.0,
        };
        let se: SimError = fe.into();
        assert!(se.to_string().contains("[0, 1]"));
        assert!(std::error::Error::source(&se).is_some());
    }
}
