//! Control-message accounting.
//!
//! The paper's central metric is the per-node frequency (and bit rate) of
//! each control-message category over a measurement window. [`Counters`]
//! accumulates message and byte counts per [`MessageKind`]; the warmup
//! period is excluded by calling [`Counters::reset`] (or
//! `World::begin_measurement`) once the system reaches steady state.

use std::fmt;

/// The control-message categories tracked by the reproduction.
///
/// `Hello`, `Cluster`, and `Route` are the paper's three categories
/// (Section 2). The remaining kinds support the reactive inter-cluster
/// routing extension and the flat-DSDV baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Neighbor-discovery beacon.
    Hello,
    /// Cluster-maintenance message (role/affiliation change).
    Cluster,
    /// Proactive intra-cluster routing update (one routing-table entry).
    Route,
    /// Reactive inter-cluster route request (extension).
    RouteRequest,
    /// Reactive inter-cluster route reply (extension).
    RouteReply,
    /// Full-table dump of the flat proactive baseline (DSDV-like).
    TableDump,
    /// Retransmission of a lost CLUSTER message under the fault plane
    /// (backoff-scheduled resend; zero on an ideal channel).
    Retransmit,
    /// Repair traffic: messages spent re-establishing cluster structure
    /// after a detected fault (crashed head, decayed neighbor view).
    Repair,
}

impl MessageKind {
    /// All kinds, in display order.
    pub const ALL: [MessageKind; 8] = [
        MessageKind::Hello,
        MessageKind::Cluster,
        MessageKind::Route,
        MessageKind::RouteRequest,
        MessageKind::RouteReply,
        MessageKind::TableDump,
        MessageKind::Retransmit,
        MessageKind::Repair,
    ];

    fn index(self) -> usize {
        match self {
            MessageKind::Hello => 0,
            MessageKind::Cluster => 1,
            MessageKind::Route => 2,
            MessageKind::RouteRequest => 3,
            MessageKind::RouteReply => 4,
            MessageKind::TableDump => 5,
            MessageKind::Retransmit => 6,
            MessageKind::Repair => 7,
        }
    }
}

impl From<MessageKind> for manet_telemetry::MsgClass {
    /// The telemetry plane mirrors `MessageKind` one-to-one (it sits below
    /// this crate in the dependency graph, so the conversion lives here).
    fn from(kind: MessageKind) -> manet_telemetry::MsgClass {
        use manet_telemetry::MsgClass;
        match kind {
            MessageKind::Hello => MsgClass::Hello,
            MessageKind::Cluster => MsgClass::Cluster,
            MessageKind::Route => MsgClass::Route,
            MessageKind::RouteRequest => MsgClass::RouteRequest,
            MessageKind::RouteReply => MsgClass::RouteReply,
            MessageKind::TableDump => MsgClass::TableDump,
            MessageKind::Retransmit => MsgClass::Retransmit,
            MessageKind::Repair => MsgClass::Repair,
        }
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::Hello => "HELLO",
            MessageKind::Cluster => "CLUSTER",
            MessageKind::Route => "ROUTE",
            MessageKind::RouteRequest => "RREQ",
            MessageKind::RouteReply => "RREP",
            MessageKind::TableDump => "TABLE",
            MessageKind::Retransmit => "RETX",
            MessageKind::Repair => "REPAIR",
        };
        f.write_str(s)
    }
}

/// Sizes, in bytes, used to convert message counts into bit overheads
/// (the paper's `p_hello`, `p_cluster`, `p_route`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageSizes {
    /// Size of one HELLO beacon.
    pub hello: u32,
    /// Size of one CLUSTER maintenance message.
    pub cluster: u32,
    /// Size of one routing-table entry (a ROUTE message carries one entry in
    /// the lower-bound model).
    pub route_entry: u32,
}

impl Default for MessageSizes {
    /// `p_hello = 16 B`, `p_cluster = 24 B`, `p_route = 12 B` — compact
    /// packet layouts typical of MANET control traffic (see DESIGN.md §5).
    fn default() -> Self {
        MessageSizes {
            hello: 16,
            cluster: 24,
            route_entry: 12,
        }
    }
}

impl MessageSizes {
    /// Size in bytes for one message of `kind` (table dumps and discovery
    /// messages are counted as route entries).
    pub fn size_of(&self, kind: MessageKind) -> u32 {
        match kind {
            MessageKind::Hello => self.hello,
            MessageKind::Cluster => self.cluster,
            MessageKind::Route
            | MessageKind::RouteRequest
            | MessageKind::RouteReply
            | MessageKind::TableDump => self.route_entry,
            // A retransmission or repair carries a CLUSTER-format payload.
            MessageKind::Retransmit | MessageKind::Repair => self.cluster,
        }
    }
}

/// Accumulates message and byte counts per [`MessageKind`].
///
/// Counters carry their own [`MessageSizes`] so byte accounting is
/// consistent *by construction*: the preferred recording entry point,
/// [`Counters::record_kind`], derives bytes from the embedded size table,
/// and [`Counters::bytes_consistent`] checks the invariant
/// `bytes(kind) == messages(kind) * size_of(kind)` for callers that still
/// use the raw [`Counters::record`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    messages: [u64; 8],
    bytes: [u64; 8],
    /// Link events observed in the current window.
    links_generated: u64,
    /// Link breaks observed in the current window.
    links_broken: u64,
    /// The size table byte accounting is checked against.
    sizes: MessageSizes,
}

impl Counters {
    /// Creates zeroed counters with the default size table.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Creates zeroed counters with a custom size table.
    pub fn with_sizes(sizes: MessageSizes) -> Self {
        Counters {
            sizes,
            ..Counters::default()
        }
    }

    /// The embedded size table.
    pub fn sizes(&self) -> MessageSizes {
        self.sizes
    }

    /// Records `count` messages of `kind` totaling `bytes` bytes.
    ///
    /// Prefer [`Counters::record_kind`], which derives `bytes` from the
    /// embedded size table and cannot introduce byte-accounting drift.
    pub fn record(&mut self, kind: MessageKind, count: u64, bytes: u64) {
        let i = kind.index();
        self.messages[i] += count;
        self.bytes[i] += bytes;
    }

    /// Records `count` messages of `kind`, sized via `sizes`.
    ///
    /// Prefer [`Counters::record_kind`] unless a deliberately different
    /// size table is required.
    pub fn record_sized(&mut self, kind: MessageKind, count: u64, sizes: &MessageSizes) {
        self.record(kind, count, count * sizes.size_of(kind) as u64);
    }

    /// Records `count` messages of `kind`, sized via the embedded size
    /// table — the checked entry point that keeps
    /// [`Counters::bytes_consistent`] true by construction.
    pub fn record_kind(&mut self, kind: MessageKind, count: u64) {
        let i = kind.index();
        self.messages[i] += count;
        self.bytes[i] += count * self.sizes.size_of(kind) as u64;
    }

    /// Whether every kind's byte total equals `messages * size_of(kind)`
    /// under the embedded size table.
    pub fn bytes_consistent(&self) -> bool {
        MessageKind::ALL
            .into_iter()
            .all(|kind| self.bytes(kind) == self.messages(kind) * self.sizes.size_of(kind) as u64)
    }

    /// Records one link-generation event.
    pub fn record_link_generated(&mut self) {
        self.links_generated += 1;
    }

    /// Records one link-break event.
    pub fn record_link_broken(&mut self) {
        self.links_broken += 1;
    }

    /// Total messages of `kind` in the current window.
    pub fn messages(&self, kind: MessageKind) -> u64 {
        self.messages[kind.index()]
    }

    /// Total bytes of `kind` in the current window.
    pub fn bytes(&self, kind: MessageKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Link generations observed in the current window.
    pub fn links_generated(&self) -> u64 {
        self.links_generated
    }

    /// Link breaks observed in the current window.
    pub fn links_broken(&self) -> u64 {
        self.links_broken
    }

    /// Per-node message frequency of `kind` over a window of `elapsed`
    /// seconds shared by `nodes` nodes (messages / node / second).
    ///
    /// Returns 0 for an empty window or node set.
    pub fn per_node_rate(&self, kind: MessageKind, nodes: usize, elapsed: f64) -> f64 {
        if nodes == 0 || elapsed <= 0.0 {
            0.0
        } else {
            self.messages(kind) as f64 / nodes as f64 / elapsed
        }
    }

    /// Per-node bit rate of `kind` (bits / node / second).
    pub fn per_node_bit_rate(&self, kind: MessageKind, nodes: usize, elapsed: f64) -> f64 {
        if nodes == 0 || elapsed <= 0.0 {
            0.0
        } else {
            self.bytes(kind) as f64 * 8.0 / nodes as f64 / elapsed
        }
    }

    /// Per-node link generation rate over the window.
    pub fn per_node_link_generation_rate(&self, nodes: usize, elapsed: f64) -> f64 {
        if nodes == 0 || elapsed <= 0.0 {
            0.0
        } else {
            // Each event involves two endpoints; the per-node rate counts an
            // event at both ends (matching the analysis convention where each
            // node independently notices its own neighbor change).
            2.0 * self.links_generated as f64 / nodes as f64 / elapsed
        }
    }

    /// Per-node link break rate over the window.
    pub fn per_node_link_break_rate(&self, nodes: usize, elapsed: f64) -> f64 {
        if nodes == 0 || elapsed <= 0.0 {
            0.0
        } else {
            2.0 * self.links_broken as f64 / nodes as f64 / elapsed
        }
    }

    /// Zeroes every counter (start of a measurement window), preserving
    /// the embedded size table.
    pub fn reset(&mut self) {
        *self = Counters::with_sizes(self.sizes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut c = Counters::new();
        c.record(MessageKind::Hello, 3, 48);
        c.record(MessageKind::Hello, 1, 16);
        c.record(MessageKind::Route, 5, 60);
        assert_eq!(c.messages(MessageKind::Hello), 4);
        assert_eq!(c.bytes(MessageKind::Hello), 64);
        assert_eq!(c.messages(MessageKind::Route), 5);
        assert_eq!(c.messages(MessageKind::Cluster), 0);
    }

    #[test]
    fn record_sized_uses_size_table() {
        let sizes = MessageSizes::default();
        let mut c = Counters::new();
        c.record_sized(MessageKind::Cluster, 2, &sizes);
        assert_eq!(c.bytes(MessageKind::Cluster), 48);
    }

    #[test]
    fn record_kind_uses_embedded_sizes_and_stays_consistent() {
        let mut c = Counters::new();
        c.record_kind(MessageKind::Hello, 3);
        c.record_kind(MessageKind::Retransmit, 2);
        assert_eq!(c.bytes(MessageKind::Hello), 48);
        // RETX carries a CLUSTER-format payload (24 B).
        assert_eq!(c.bytes(MessageKind::Retransmit), 48);
        assert!(c.bytes_consistent());
        // Raw `record` can drift; the checker catches it.
        c.record(MessageKind::Route, 1, 999);
        assert!(!c.bytes_consistent());
    }

    #[test]
    fn with_sizes_survives_reset() {
        let sizes = MessageSizes {
            hello: 8,
            cluster: 40,
            route_entry: 20,
        };
        let mut c = Counters::with_sizes(sizes);
        c.record_kind(MessageKind::Hello, 2);
        assert_eq!(c.bytes(MessageKind::Hello), 16);
        c.reset();
        assert_eq!(c.sizes(), sizes);
        assert_eq!(c.messages(MessageKind::Hello), 0);
        c.record_kind(MessageKind::Cluster, 1);
        assert_eq!(c.bytes(MessageKind::Cluster), 40);
        assert!(c.bytes_consistent());
    }

    #[test]
    fn message_kind_maps_onto_telemetry_class() {
        use manet_telemetry::MsgClass;
        for (kind, class) in MessageKind::ALL.into_iter().zip(MsgClass::ALL) {
            assert_eq!(MsgClass::from(kind), class);
            assert_eq!(kind.to_string(), class.name());
        }
    }

    #[test]
    fn rates() {
        let mut c = Counters::new();
        c.record(MessageKind::Hello, 100, 1600);
        assert_eq!(c.per_node_rate(MessageKind::Hello, 10, 10.0), 1.0);
        assert_eq!(c.per_node_bit_rate(MessageKind::Hello, 10, 10.0), 128.0);
        assert_eq!(c.per_node_rate(MessageKind::Hello, 0, 10.0), 0.0);
        assert_eq!(c.per_node_rate(MessageKind::Hello, 10, 0.0), 0.0);
    }

    #[test]
    fn link_event_rates_count_both_endpoints() {
        let mut c = Counters::new();
        for _ in 0..50 {
            c.record_link_generated();
        }
        for _ in 0..30 {
            c.record_link_broken();
        }
        assert_eq!(c.links_generated(), 50);
        assert_eq!(c.links_broken(), 30);
        assert_eq!(c.per_node_link_generation_rate(10, 10.0), 1.0);
        assert_eq!(c.per_node_link_break_rate(10, 10.0), 0.6);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Counters::new();
        c.record(MessageKind::TableDump, 7, 70);
        c.record_link_generated();
        c.reset();
        assert_eq!(c, Counters::new());
    }

    #[test]
    fn kind_display_and_all() {
        let names: Vec<String> = MessageKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(
            names,
            ["HELLO", "CLUSTER", "ROUTE", "RREQ", "RREP", "TABLE", "RETX", "REPAIR"]
        );
    }

    #[test]
    fn default_sizes() {
        let s = MessageSizes::default();
        assert_eq!(s.size_of(MessageKind::Hello), 16);
        assert_eq!(s.size_of(MessageKind::Cluster), 24);
        assert_eq!(s.size_of(MessageKind::Route), 12);
        assert_eq!(s.size_of(MessageKind::TableDump), 12);
        assert_eq!(s.size_of(MessageKind::Retransmit), 24);
        assert_eq!(s.size_of(MessageKind::Repair), 24);
    }
}
