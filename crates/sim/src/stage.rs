//! Stage traits and the scoped fan-out helper for shard-local pipelines.
//!
//! The [`crate::TopologyBuilder`] pattern (DESIGN.md §13) — the world owns
//! the stage *order*, a trait object owns the stage *strategy* — is
//! generalized here to the rest of the tick. [`MobilityStage`] covers the
//! world-side motion advance; the HELLO/Cluster/Route stage traits live in
//! `manet-stack` next to the layers they drive. Monolithic defaults
//! delegate to the layers' single entry points, so a stack driven through
//! the default stages is bit-identical to the pre-stage code; the shard
//! plane overrides them with frame-parallel implementations that are
//! pinned byte-identical by the parity suites (DESIGN.md §17).

use crate::NodeId;
use manet_mobility::Mobility;
use manet_util::Rng;
use std::time::{Duration, Instant};

/// The mobility stage of the canonical tick: how node motion is advanced.
///
/// The default is the monolithic sequential advance. The shard plane
/// overrides it with the plan/apply split ([`Mobility::plan_step`]): RNG
/// draws stay sequential in node-id order, the pure positional replay fans
/// out over the scoped worker pool, and the result is bit-identical.
pub trait MobilityStage {
    /// Advances every node of `mobility` by `dt` seconds.
    fn advance(&mut self, mobility: &mut dyn Mobility, dt: f64, rng: &mut Rng) {
        mobility.step(dt, rng);
    }
}

/// The monolithic default builder is also the monolithic mobility stage,
/// so `&mut GridTopology` is a complete world-stage bundle.
impl MobilityStage for crate::GridTopology {}

/// The world-side stage bundle: one object supplying both the mobility
/// advance and the topology rebuild of `World::step_staged`.
///
/// Blanket-implemented, so any `MobilityStage + TopologyBuilder` type —
/// the shard plane, or [`crate::GridTopology`] for the monolithic default —
/// is a `WorldStages` automatically.
pub trait WorldStages: MobilityStage + crate::TopologyBuilder {}

impl<T: MobilityStage + crate::TopologyBuilder + ?Sized> WorldStages for T {}

/// An ownership partition of the node ids into frames (spatial tiles):
/// every node appears in exactly one frame, each frame's list ascending.
///
/// The shard plane rebuilds this from its per-shard owned prefixes each
/// tick and hands it to the scoped layer entry points, which fan pure
/// per-frame scans out over the worker pool and merge the per-frame
/// outputs deterministically in frame-index order.
#[derive(Debug, Clone, Default)]
pub struct FramePartition {
    /// Concatenated per-frame ascending owned ids.
    ids: Vec<NodeId>,
    /// Frame `f` owns `ids[offsets[f]..offsets[f+1]]`.
    offsets: Vec<u32>,
}

impl FramePartition {
    /// An empty partition (no frames).
    pub fn new() -> Self {
        FramePartition::default()
    }

    /// Rebuilds the partition in place from per-frame ascending id lists,
    /// keeping allocations.
    pub fn rebuild<'a>(&mut self, frames: impl Iterator<Item = &'a [NodeId]>) {
        self.ids.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for frame in frames {
            debug_assert!(frame.windows(2).all(|w| w[0] < w[1]), "frame ids ascend");
            self.ids.extend_from_slice(frame);
            self.offsets.push(self.ids.len() as u32);
        }
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Frame `f`'s owned ids, ascending.
    pub fn frame(&self, f: usize) -> &[NodeId] {
        &self.ids[self.offsets[f] as usize..self.offsets[f + 1] as usize]
    }

    /// Total owned ids across all frames.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the partition holds no ids.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Wall-clock self-timing of one frame's (or chunk's) work inside a scoped
/// fan-out: start instant and accumulated busy duration.
pub type FrameTiming = Option<(Instant, Duration)>;

/// The scoped worker pool a shard-local stage hands to a layer's
/// `*_scoped` entry point: the frame partition, the worker count, and
/// per-frame timing slots the fan-out helpers fill in.
///
/// Both helpers are exact fan-outs — every frame/chunk runs exactly once,
/// outputs land in caller-owned per-frame buffers, and the caller merges
/// them in frame-index order — so results are worker-count invariant. With
/// `workers <= 1` they run inline on the caller's thread (no spawn, no
/// allocation); timings accumulate across multiple passes so a stage with
/// several fan-outs still reports one busy-span per frame.
pub struct StageScope<'a> {
    frames: &'a FramePartition,
    workers: usize,
    timings: &'a mut [FrameTiming],
}

impl<'a> StageScope<'a> {
    /// A scope over `frames` with `workers` threads, accumulating per-slot
    /// busy timings into `timings` (sized `>= frames.frame_count()` and
    /// `>= workers`; slots are cleared by the caller between stages).
    pub fn new(frames: &'a FramePartition, workers: usize, timings: &'a mut [FrameTiming]) -> Self {
        assert!(timings.len() >= frames.frame_count().max(workers.max(1)));
        StageScope {
            frames,
            workers: workers.max(1),
            timings,
        }
    }

    /// The ownership partition.
    pub fn frames(&self) -> &FramePartition {
        self.frames
    }

    /// The worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn accumulate(slot: &mut FrameTiming, start: Instant, busy: Duration) {
        match slot {
            Some((_, d)) => *d += busy,
            None => *slot = Some((start, busy)),
        }
    }

    /// Runs `each(frame_index, owned_ids, &mut outs[frame_index])` for
    /// every frame, fanning frames out over the worker pool. Outputs are
    /// per-frame, so the caller's merge in frame-index order is
    /// deterministic regardless of scheduling.
    pub fn map_frames<T, F>(&mut self, outs: &mut [T], each: F)
    where
        T: Send,
        F: Fn(usize, &[NodeId], &mut T) + Sync,
    {
        let n = self.frames.frame_count();
        assert_eq!(outs.len(), n, "one output buffer per frame");
        if n == 0 {
            return;
        }
        let workers = self.workers.min(n);
        if workers <= 1 {
            for (f, out) in outs.iter_mut().enumerate() {
                let c0 = Instant::now();
                each(f, self.frames.frame(f), out);
                Self::accumulate(&mut self.timings[f], c0, c0.elapsed());
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        let frames = self.frames;
        let each = &each;
        std::thread::scope(|scope| {
            for (g, (outs, timings)) in outs
                .chunks_mut(chunk)
                .zip(self.timings.chunks_mut(chunk))
                .enumerate()
            {
                scope.spawn(move || {
                    for (k, (out, slot)) in outs.iter_mut().zip(timings).enumerate() {
                        let f = g * chunk + k;
                        let c0 = Instant::now();
                        each(f, frames.frame(f), out);
                        Self::accumulate(slot, c0, c0.elapsed());
                    }
                });
            }
        });
    }

    /// Runs `each(slot, offset, chunk)` over contiguous mutable chunks of
    /// `items`, one chunk per worker. For per-node state that cannot be
    /// split along frame lines (frames are spatially scattered id sets),
    /// this is the exact-cover alternative: `offset` is the chunk's start
    /// index, and chunk boundaries depend only on `items.len()` and the
    /// worker count, never on scheduling.
    pub fn map_chunks<I, F>(&mut self, items: &mut [I], each: F)
    where
        I: Send,
        F: Fn(usize, usize, &mut [I]) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let workers = self.workers.min(items.len());
        let chunk = items.len().div_ceil(workers);
        if workers <= 1 {
            let c0 = Instant::now();
            each(0, 0, items);
            Self::accumulate(&mut self.timings[0], c0, c0.elapsed());
            return;
        }
        let each = &each;
        std::thread::scope(|scope| {
            for (g, (items, slot)) in items
                .chunks_mut(chunk)
                .zip(self.timings.iter_mut())
                .enumerate()
            {
                scope.spawn(move || {
                    let c0 = Instant::now();
                    each(g, g * chunk, items);
                    Self::accumulate(slot, c0, c0.elapsed());
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition() -> FramePartition {
        let mut frames = FramePartition::new();
        frames.rebuild([&[0u32, 3, 5][..], &[1, 2][..], &[][..], &[4, 6, 7][..]].into_iter());
        frames
    }

    #[test]
    fn partition_round_trips_frames() {
        let frames = partition();
        assert_eq!(frames.frame_count(), 4);
        assert_eq!(frames.frame(0), &[0, 3, 5]);
        assert_eq!(frames.frame(2), &[] as &[NodeId]);
        assert_eq!(frames.frame(3), &[4, 6, 7]);
        assert_eq!(frames.len(), 8);
        assert!(!frames.is_empty());
    }

    /// map_frames is an exact cover with frame-indexed outputs, identical
    /// across worker counts (including the inline path).
    #[test]
    fn map_frames_is_worker_count_invariant() {
        let frames = partition();
        let mut reference: Option<Vec<Vec<NodeId>>> = None;
        for workers in [1usize, 2, 3, 8] {
            let mut timings = vec![None; frames.frame_count().max(workers)];
            let mut scope = StageScope::new(&frames, workers, &mut timings);
            let mut outs: Vec<Vec<NodeId>> = vec![Vec::new(); frames.frame_count()];
            scope.map_frames(&mut outs, |f, ids, out| {
                out.clear();
                out.extend(ids.iter().map(|&u| u + f as NodeId));
            });
            match &reference {
                None => reference = Some(outs),
                Some(r) => assert_eq!(&outs, r, "workers = {workers}"),
            }
            // Every non-empty frame got timed.
            for (f, t) in timings.iter().enumerate().take(frames.frame_count()) {
                assert!(t.is_some(), "frame {f} untimed");
            }
        }
    }

    #[test]
    fn map_chunks_covers_every_item_once() {
        let frames = FramePartition::new();
        for workers in [1usize, 2, 5] {
            let mut timings = vec![None; workers];
            let mut scope = StageScope::new(&frames, workers, &mut timings);
            let mut items = vec![0u32; 11];
            scope.map_chunks(&mut items, |_slot, offset, chunk| {
                for (k, it) in chunk.iter_mut().enumerate() {
                    *it += (offset + k) as u32 + 1;
                }
            });
            let expect: Vec<u32> = (1..=11).collect();
            assert_eq!(items, expect, "workers = {workers}");
        }
    }

    /// Timings accumulate across passes: two fan-outs, one busy-span per
    /// slot.
    #[test]
    fn timings_accumulate_across_passes() {
        let frames = partition();
        let mut timings = vec![None; frames.frame_count()];
        let mut scope = StageScope::new(&frames, 1, &mut timings);
        let mut outs = vec![0usize; frames.frame_count()];
        scope.map_frames(&mut outs, |_, ids, out| *out = ids.len());
        let first: Vec<Duration> = timings.iter().map(|t| t.unwrap().1).collect();
        let mut scope = StageScope::new(&frames, 1, &mut timings);
        let mut outs = vec![0usize; frames.frame_count()];
        scope.map_frames(&mut outs, |_, ids, out| *out = ids.len());
        for (t, f) in timings.iter().zip(&first) {
            assert!(t.unwrap().1 >= *f);
        }
    }
}
