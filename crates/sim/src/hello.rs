//! The HELLO protocol proper: periodic beacons + soft-timer neighbor
//! tables.
//!
//! The [`World`](crate::World) counts HELLO traffic; this module implements
//! the *protocol state* behind it — each node's view of its neighborhood,
//! built purely from received beacons and expired by soft timers. It exists
//! to test the paper's Section 3.5.1 argument empirically: the HELLO rate
//! must at least match the link generation rate, or the protocol view of
//! the topology decays (see the `hello_accuracy` experiment).

use crate::ctx::StepCtx;
use crate::error::SimError;
use crate::fault::Channel;
use crate::stage::StageScope;
use crate::topology::Topology;
use crate::NodeId;
#[cfg(test)]
use manet_telemetry::Probe;
use manet_telemetry::{EventKind, Layer, MsgClass, RootCause};

use std::collections::BTreeMap;

/// Soft-state neighbor tables driven by periodic HELLO beacons.
#[derive(Debug, Clone)]
pub struct HelloProtocol {
    interval: f64,
    timeout: f64,
    /// Next beacon time per node (staggered at start to avoid synchrony).
    next_beacon: Vec<f64>,
    /// `last_heard[u][w]` = when `u` last heard `w`.
    last_heard: Vec<BTreeMap<NodeId, f64>>,
    hellos_sent: u64,
}

/// Per-tick accuracy of the protocol's neighbor view against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ViewAccuracy {
    /// Directed neighbor relations in the ground truth.
    pub true_relations: u64,
    /// Ground-truth relations missing from the view (not yet heard).
    pub missing: u64,
    /// View entries that are no longer true links (stale, not yet timed
    /// out).
    pub stale: u64,
}

impl ViewAccuracy {
    /// Fraction of true relations missing from the view (0 when there are
    /// no relations).
    pub fn missing_fraction(&self) -> f64 {
        if self.true_relations == 0 {
            0.0
        } else {
            self.missing as f64 / self.true_relations as f64
        }
    }

    /// Stale entries per true relation.
    pub fn stale_fraction(&self) -> f64 {
        if self.true_relations == 0 {
            0.0
        } else {
            self.stale as f64 / self.true_relations as f64
        }
    }
}

impl HelloProtocol {
    /// Creates tables for `n` nodes beaconing every `interval` seconds and
    /// expiring entries after `timeout` seconds of silence.
    ///
    /// Beacons are staggered deterministically (node `u` first beacons at
    /// `u/n · interval`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < interval ≤ timeout` (finite).
    pub fn new(n: usize, interval: f64, timeout: f64) -> Self {
        HelloProtocol::try_new(n, interval, timeout).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`HelloProtocol::new`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HelloTiming`] unless `0 < interval ≤ timeout`
    /// (finite).
    pub fn try_new(n: usize, interval: f64, timeout: f64) -> Result<Self, SimError> {
        if !(interval > 0.0 && interval.is_finite() && timeout >= interval && timeout.is_finite()) {
            return Err(SimError::HelloTiming { interval, timeout });
        }
        let next_beacon = (0..n)
            .map(|u| interval * u as f64 / n.max(1) as f64)
            .collect();
        Ok(HelloProtocol {
            interval,
            timeout,
            next_beacon,
            last_heard: vec![BTreeMap::new(); n],
            hellos_sent: 0,
        })
    }

    /// Beacon interval.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Soft-timer timeout.
    pub fn timeout(&self) -> f64 {
        self.timeout
    }

    /// Total HELLO messages sent so far.
    pub fn hellos_sent(&self) -> u64 {
        self.hellos_sent
    }

    /// Advances the protocol to `ctx.now`: every live node whose beacon is
    /// due broadcasts, each (beacon, receiver) delivery is drawn from
    /// `channel`, and soft timers expire silent entries. Returns
    /// `(sent, lost)` — beacons *attempted* (overhead is paid at the
    /// sender) and deliveries dropped.
    ///
    /// Crashed nodes neither beacon nor keep soft state; their timers
    /// advance silently so recovery does not replay missed beacons.
    /// `topology` should already exclude crashed nodes' links (see
    /// `Topology::retain_alive`). With an ideal channel and an all-alive
    /// mask this is the ideal HELLO layer — no draws, no losses. Telemetry
    /// (batched `MsgSent` / `MsgLost` events) flows through `ctx.probe`;
    /// [`Probe::off`](manet_telemetry::Probe::off) makes the step quiet
    /// with identical state and draws.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len()` differs from the node count.
    pub fn step(
        &mut self,
        topology: &Topology,
        channel: &mut Channel,
        alive: &[bool],
        ctx: &mut StepCtx<'_, '_>,
    ) -> (u64, u64) {
        let now = ctx.now;
        let probe = &mut *ctx.probe;
        assert_eq!(
            self.next_beacon.len(),
            alive.len(),
            "alive mask size mismatch"
        );
        let mut sent = 0u64;
        let mut lost = 0u64;
        for (u, &up) in alive.iter().enumerate() {
            if !up {
                // Advance the timer silently so recovery does not replay the
                // beacons missed while down, and drop the dead node's soft
                // state (it recovers with empty tables).
                while self.next_beacon[u] <= now {
                    self.next_beacon[u] += self.interval;
                }
                self.last_heard[u].clear();
                continue;
            }
            while self.next_beacon[u] <= now {
                self.next_beacon[u] += self.interval;
                sent += 1;
                for &w in topology.neighbors(u as NodeId) {
                    if channel.deliver() {
                        self.last_heard[w as usize].insert(u as NodeId, now);
                    } else {
                        lost += 1;
                    }
                }
            }
        }
        for table in &mut self.last_heard {
            table.retain(|_, &mut t| now - t <= self.timeout);
        }
        self.hellos_sent += sent;
        if sent > 0 {
            probe.emit(
                now,
                Layer::Hello,
                EventKind::MsgSent {
                    class: MsgClass::Hello,
                    count: sent,
                },
            );
        }
        if lost > 0 {
            let cause = probe.root(RootCause::ChannelLoss);
            probe.emit_caused(
                now,
                Layer::Hello,
                EventKind::MsgLost {
                    class: MsgClass::Hello,
                    count: lost,
                },
                cause,
            );
        }
        (sent, lost)
    }

    /// Scoped variant of [`HelloProtocol::step`] for shard-local stages:
    /// the beacon loop — every channel draw and table insert, in node-id
    /// order — stays sequential, while the soft-timer expiry sweep (pure
    /// per-table work) fans out over `scope`'s worker pool in contiguous
    /// chunks. Counters, emissions, and every table are bit-identical to
    /// `step` for every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len()` differs from the node count.
    pub fn step_scoped(
        &mut self,
        topology: &Topology,
        channel: &mut Channel,
        alive: &[bool],
        ctx: &mut StepCtx<'_, '_>,
        scope: &mut StageScope<'_>,
    ) -> (u64, u64) {
        let now = ctx.now;
        let probe = &mut *ctx.probe;
        assert_eq!(
            self.next_beacon.len(),
            alive.len(),
            "alive mask size mismatch"
        );
        let mut sent = 0u64;
        let mut lost = 0u64;
        for (u, &up) in alive.iter().enumerate() {
            if !up {
                while self.next_beacon[u] <= now {
                    self.next_beacon[u] += self.interval;
                }
                self.last_heard[u].clear();
                continue;
            }
            while self.next_beacon[u] <= now {
                self.next_beacon[u] += self.interval;
                sent += 1;
                for &w in topology.neighbors(u as NodeId) {
                    if channel.deliver() {
                        self.last_heard[w as usize].insert(u as NodeId, now);
                    } else {
                        lost += 1;
                    }
                }
            }
        }
        let timeout = self.timeout;
        scope.map_chunks(&mut self.last_heard, |_slot, _offset, tables| {
            for table in tables {
                table.retain(|_, &mut t| now - t <= timeout);
            }
        });
        self.hellos_sent += sent;
        if sent > 0 {
            probe.emit(
                now,
                Layer::Hello,
                EventKind::MsgSent {
                    class: MsgClass::Hello,
                    count: sent,
                },
            );
        }
        if lost > 0 {
            let cause = probe.root(RootCause::ChannelLoss);
            probe.emit_caused(
                now,
                Layer::Hello,
                EventKind::MsgLost {
                    class: MsgClass::Hello,
                    count: lost,
                },
                cause,
            );
        }
        (sent, lost)
    }

    /// Node `u`'s current view of its neighborhood.
    pub fn view(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.last_heard[u as usize].keys().copied()
    }

    /// Compares every node's view against the ground-truth topology.
    pub fn accuracy(&self, topology: &Topology) -> ViewAccuracy {
        let mut acc = ViewAccuracy::default();
        for u in 0..self.last_heard.len() {
            let truth = topology.neighbors(u as NodeId);
            acc.true_relations += truth.len() as u64;
            for &w in truth {
                if !self.last_heard[u].contains_key(&w) {
                    acc.missing += 1;
                }
            }
            for &w in self.last_heard[u].keys() {
                if !topology.are_linked(u as NodeId, w) {
                    acc.stale += 1;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Scratch;
    use crate::fault::{Channel, LossModel};
    use manet_geom::{Metric, SquareRegion, Vec2};

    /// One quiet ideal-channel step at time `now` (the pre-ctx `step`).
    fn tick(h: &mut HelloProtocol, now: f64, topo: &Topology) -> u64 {
        let mut ideal = Channel::new(LossModel::Ideal, 0);
        let alive = vec![true; topo.len()];
        lossy_tick(h, now, topo, &mut ideal, &alive).0
    }

    /// One quiet step at time `now` over an explicit channel and mask.
    fn lossy_tick(
        h: &mut HelloProtocol,
        now: f64,
        topo: &Topology,
        channel: &mut Channel,
        alive: &[bool],
    ) -> (u64, u64) {
        let mut probe = Probe::off();
        let mut scratch = Scratch::new();
        h.step(
            topo,
            channel,
            alive,
            &mut StepCtx::new(&mut probe, &mut scratch).at(now),
        )
    }

    fn static_topo() -> Topology {
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
        ];
        Topology::compute(&pts, SquareRegion::new(10.0), 1.1, Metric::Euclidean)
    }

    #[test]
    fn views_fill_after_one_interval() {
        let topo = static_topo();
        let mut h = HelloProtocol::new(3, 1.0, 3.0);
        tick(&mut h, 1.0, &topo);
        let acc = h.accuracy(&topo);
        assert_eq!(acc.missing, 0, "every node beaconed at least once by t=1");
        assert_eq!(acc.stale, 0);
        assert_eq!(acc.true_relations, 4); // path 0-1-2: 2 links × 2 directions
        assert!(h.hellos_sent() >= 3);
    }

    #[test]
    fn stale_entries_persist_until_timeout() {
        let topo = static_topo();
        let mut h = HelloProtocol::new(3, 1.0, 2.5);
        tick(&mut h, 1.0, &topo);
        // Node 2 moves away: links (1,2) vanish.
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(9.0, 0.0),
        ];
        let far = Topology::compute(&pts, SquareRegion::new(10.0), 1.1, Metric::Euclidean);
        // Shortly after, 1 still believes in 2 (soft state).
        tick(&mut h, 1.5, &far);
        let acc = h.accuracy(&far);
        assert!(acc.stale > 0, "view should lag ground truth");
        // After the timeout the entry expires.
        tick(&mut h, 4.1, &far);
        let acc = h.accuracy(&far);
        assert_eq!(acc.stale, 0, "soft timer must clear stale entries");
    }

    #[test]
    fn beacons_fire_once_per_interval_per_node() {
        let topo = static_topo();
        let mut h = HelloProtocol::new(3, 2.0, 4.0);
        let mut total = 0;
        for k in 1..=8 {
            total += tick(&mut h, k as f64, &topo);
        }
        // 8 s / 2 s = 4 beacons per node (plus the staggered t≈0 ones).
        assert!((12..=15).contains(&total), "total {total}");
        assert_eq!(h.interval(), 2.0);
        assert_eq!(h.timeout(), 4.0);
    }

    #[test]
    fn accuracy_fractions() {
        let a = ViewAccuracy {
            true_relations: 10,
            missing: 2,
            stale: 5,
        };
        assert!((a.missing_fraction() - 0.2).abs() < 1e-12);
        assert!((a.stale_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ViewAccuracy::default().missing_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn bad_timing_panics() {
        HelloProtocol::new(2, 2.0, 1.0);
    }

    #[test]
    fn try_new_returns_typed_timing_error() {
        let err = HelloProtocol::try_new(2, 2.0, 1.0).unwrap_err();
        assert!(err.to_string().contains("interval"));
        assert!(HelloProtocol::try_new(2, 0.0, 1.0).is_err());
        assert!(HelloProtocol::try_new(2, 1.0, 2.0).is_ok());
    }

    #[test]
    fn lossy_step_with_ideal_channel_matches_ideal_helper() {
        let topo = static_topo();
        let mut a = HelloProtocol::new(3, 1.0, 3.0);
        let mut b = a.clone();
        let mut ideal = Channel::new(LossModel::Ideal, 0);
        let alive = [true; 3];
        for k in 1..=6 {
            let now = k as f64 * 0.5;
            assert_eq!(
                tick(&mut a, now, &topo),
                lossy_tick(&mut b, now, &topo, &mut ideal, &alive).0
            );
        }
        assert_eq!(a.accuracy(&topo), b.accuracy(&topo));
        assert_eq!(a.hellos_sent(), b.hellos_sent());
    }

    #[test]
    fn lost_beacons_decay_the_view() {
        let topo = static_topo();
        let mut h = HelloProtocol::new(3, 1.0, 1.5);
        // Everything is lost: views never fill, yet beacons are still
        // counted as attempted sends.
        let mut dead_air = Channel::new(LossModel::Bernoulli { p: 1.0 }, 4);
        let alive = [true; 3];
        let (sent, _) = lossy_tick(&mut h, 1.0, &topo, &mut dead_air, &alive);
        assert!(sent >= 3);
        assert_eq!(h.hellos_sent(), sent);
        let acc = h.accuracy(&topo);
        assert_eq!(acc.missing, acc.true_relations, "no beacon got through");
    }

    #[test]
    fn traced_lossy_step_counts_and_emits_losses() {
        use manet_telemetry::{Event, Subscriber};

        #[derive(Default)]
        struct Collect(Vec<Event>);
        impl Subscriber for Collect {
            fn event(&mut self, e: &Event) {
                self.0.push(*e);
            }
        }

        let topo = static_topo();
        let mut h = HelloProtocol::new(3, 1.0, 1.5);
        let mut dead_air = Channel::new(LossModel::Bernoulli { p: 1.0 }, 4);
        let mut sink = Collect::default();
        let (sent, lost) = {
            let mut probe = Probe::subscriber(&mut sink);
            let mut scratch = Scratch::new();
            h.step(
                &topo,
                &mut dead_air,
                &[true; 3],
                &mut StepCtx::new(&mut probe, &mut scratch).at(1.0),
            )
        };
        assert!(sent >= 3);
        // Path 0-1-2: each beacon reaches every ground-truth neighbor and
        // every delivery drops, so losses equal the directed relations
        // covered by this step's beacons.
        assert!(lost >= sent, "each beacon had at least one neighbor");
        let sent_events: u64 = sink
            .0
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MsgSent { count, .. } => Some(count),
                _ => None,
            })
            .sum();
        let lost_events: u64 = sink
            .0
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MsgLost { count, .. } => Some(count),
                _ => None,
            })
            .sum();
        assert_eq!(sent_events, sent);
        assert_eq!(lost_events, lost);
        assert!(sink.0.iter().all(|e| e.layer == Layer::Hello));
    }

    #[test]
    fn crashed_nodes_lose_state_and_stay_silent() {
        let full = static_topo();
        let mut h = HelloProtocol::new(3, 1.0, 10.0);
        let mut ideal = Channel::new(LossModel::Ideal, 0);
        lossy_tick(&mut h, 1.0, &full, &mut ideal, &[true; 3]);
        assert!(h.view(1).count() > 0);
        // Node 1 crashes: its links vanish from the masked ground truth.
        let mut masked = full.clone();
        masked.retain_alive(&[true, false, true]);
        let before = h.hellos_sent();
        let (sent, _) = lossy_tick(&mut h, 2.0, &masked, &mut ideal, &[true, false, true]);
        // Two survivors beaconed; the crashed node did not.
        assert_eq!(sent, 2);
        assert_eq!(h.hellos_sent(), before + 2);
        assert_eq!(h.view(1).count(), 0, "crashed node drops its tables");
        // Long outage: timers advance silently, no replay burst on recovery.
        lossy_tick(&mut h, 9.0, &masked, &mut ideal, &[true, false, true]);
        let (recovered_sent, _) = lossy_tick(&mut h, 10.0, &full, &mut ideal, &[true; 3]);
        assert_eq!(
            recovered_sent, 3,
            "exactly one beacon per node after recovery"
        );
    }
}
