//! A deterministic, time-stepped wireless ad hoc network simulator.
//!
//! The simulator models what the paper measures and nothing more: node
//! motion (via any [`manet_mobility::Mobility`] model), unit-disk links
//! under a configurable [`manet_geom::Metric`], the link **generation** and
//! **break** events the motion induces, the HELLO neighbor-discovery
//! protocol, and per-message-type control-overhead accounting. Radio
//! details (interference, MAC, propagation) play no role in the paper's
//! metrics and are deliberately out of scope — see DESIGN.md §2.
//!
//! Protocol layers (clustering in `manet-cluster`, routing in
//! `manet-routing`) are driven *on top of* the simulator: each
//! [`World::step`] returns the tick's [`LinkEvent`]s, the layers react and
//! report how many control messages they emitted, and the shared
//! [`Counters`] accumulate them.
//!
//! # Example
//!
//! ```
//! use manet_sim::{MessageKind, QuietCtx, SimBuilder};
//!
//! let mut world = SimBuilder::new()
//!     .side(500.0)
//!     .nodes(80)
//!     .radius(100.0)
//!     .speed(10.0)
//!     .seed(7)
//!     .build();
//! let mut quiet = QuietCtx::new();
//! world.run_for(30.0, &mut quiet.ctx());          // warm up
//! world.begin_measurement();
//! world.run_for(60.0, &mut quiet.ctx());
//! let f_hello = world.counters().per_node_rate(
//!     MessageKind::Hello,
//!     world.node_count(),
//!     world.measured_time(),
//! );
//! assert!(f_hello > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod counters;
pub mod ctx;
pub mod error;
pub mod fault;
pub mod hello;
pub mod lifetime;
pub mod stage;
pub mod topology;
pub mod world;

pub use builder::{MobilityKind, SimBuilder};
pub use counters::{Counters, MessageKind, MessageSizes};
pub use ctx::{Attempt, FaultHooks, NoFaults, QuietCtx, Scratch, StepCtx, TickSpan};
pub use error::SimError;
pub use fault::{
    Channel, ChurnEvent, ChurnKind, ChurnSchedule, FaultError, FaultPlan, LossModel, StallEvent,
    StallSchedule, STREAM_CLUSTER, STREAM_HELLO, STREAM_ROUTE,
};
pub use hello::{HelloProtocol, ViewAccuracy};
pub use lifetime::LinkLifetimes;
pub use stage::{FramePartition, FrameTiming, MobilityStage, StageScope, WorldStages};
pub use topology::{GridTopology, LinkEvent, LinkEventKind, Topology, TopologyBuilder};
pub use world::{HelloMode, StepReport, World};

/// Identifier of a node, an index into the simulation's node arrays.
pub type NodeId = u32;
