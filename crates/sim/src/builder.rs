//! Fluent construction of simulation worlds.

use crate::counters::MessageSizes;
use crate::error::{positive, SimError};
use crate::fault::FaultPlan;
use crate::world::{HelloMode, World};
use manet_geom::{Metric, SquareRegion};
use manet_mobility::{
    ConstantVelocity, EpochRandomDirection, Mobility, RandomWalk, RandomWaypoint,
};
use manet_util::Rng;

/// Which mobility model the builder instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityKind {
    /// The paper's simulation model: epoch-based random direction on a
    /// wrap-around square (toroidal metric). Default.
    EpochRandomDirection {
        /// Seconds between synchronized direction redraws.
        epoch: f64,
    },
    /// Constant Velocity on a torus (toroidal metric).
    ConstantVelocity,
    /// Classic Random Waypoint in a bounded square (Euclidean metric).
    RandomWaypoint {
        /// Pause time on arrival, seconds.
        pause: f64,
    },
    /// Random Walk with reflecting borders (Euclidean metric).
    RandomWalk {
        /// Minimum leg duration, seconds.
        min_leg: f64,
        /// Maximum leg duration, seconds.
        max_leg: f64,
    },
}

/// Builder for [`World`] with the workspace's default experiment geometry.
///
/// Defaults (see DESIGN.md §5): side 1000 m, 400 nodes, range 150 m, speed
/// 10 m/s, epoch-random-direction mobility with τ = 20 s, tick 0.25 s,
/// event-driven HELLO, default message sizes, seed 1.
///
/// # Example
///
/// ```
/// use manet_sim::SimBuilder;
///
/// let world = SimBuilder::new().nodes(100).radius(120.0).seed(3).build();
/// assert_eq!(world.node_count(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimBuilder {
    side: f64,
    nodes: usize,
    radius: f64,
    speed: f64,
    dt: f64,
    seed: u64,
    mobility: MobilityKind,
    hello: HelloMode,
    sizes: MessageSizes,
    fault: FaultPlan,
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder {
            side: 1000.0,
            nodes: 400,
            radius: 150.0,
            speed: 10.0,
            dt: 0.25,
            seed: 1,
            mobility: MobilityKind::EpochRandomDirection { epoch: 20.0 },
            hello: HelloMode::EventDriven,
            sizes: MessageSizes::default(),
            fault: FaultPlan::ideal(),
        }
    }
}

impl SimBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        SimBuilder::default()
    }

    /// Side length `a` of the square region, meters.
    pub fn side(mut self, side: f64) -> Self {
        self.side = side;
        self
    }

    /// Number of nodes `N`.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Transmission range `r`, meters.
    pub fn radius(mut self, radius: f64) -> Self {
        self.radius = radius;
        self
    }

    /// Common node speed `v`, m/s.
    pub fn speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Tick length, seconds.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// RNG seed (controls placement, motion, and protocol tie-breaking).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mobility model.
    pub fn mobility(mut self, kind: MobilityKind) -> Self {
        self.mobility = kind;
        self
    }

    /// HELLO emission mode.
    pub fn hello_mode(mut self, mode: HelloMode) -> Self {
        self.hello = mode;
        self
    }

    /// Message size table for byte accounting.
    pub fn message_sizes(mut self, sizes: MessageSizes) -> Self {
        self.sizes = sizes;
        self
    }

    /// Fault plan: channel loss model plus node churn schedule. The default
    /// [`FaultPlan::ideal`] reproduces the paper's lossless, immortal-node
    /// setting exactly.
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Node density `N/a²` implied by the current configuration.
    pub fn density(&self) -> f64 {
        self.nodes as f64 / (self.side * self.side)
    }

    /// Builds the world.
    ///
    /// The distance metric is chosen to match the mobility model's boundary
    /// behavior: toroidal for wrap-around models, Euclidean for bounded
    /// ones.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (non-positive side/radius/dt, or a
    /// transmission range that is not below the region side, which the
    /// paper's model requires: `r < a`). Use [`SimBuilder::try_build`] for
    /// a typed error instead.
    pub fn build(self) -> World {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the world, returning a typed [`SimError`] on invalid
    /// geometry, timing, or fault-plan parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonPositive`] for non-positive side/radius/dt,
    /// [`SimError::RadiusExceedsSide`] unless `r < a`, and
    /// [`SimError::Fault`] for an invalid fault plan.
    pub fn try_build(self) -> Result<World, SimError> {
        positive("side", self.side)?;
        positive("radius", self.radius)?;
        positive("dt", self.dt)?;
        if self.radius >= self.side {
            return Err(SimError::RadiusExceedsSide {
                radius: self.radius,
                side: self.side,
            });
        }
        let region = SquareRegion::new(self.side);
        // Distinct, deterministic streams for placement/motion vs the world.
        let mut placement_rng = Rng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9));
        let (mobility, metric): (Box<dyn Mobility>, Metric) = match self.mobility {
            MobilityKind::EpochRandomDirection { epoch } => (
                Box::new(EpochRandomDirection::new(
                    region,
                    self.nodes,
                    self.speed,
                    epoch,
                    &mut placement_rng,
                )),
                Metric::toroidal(self.side),
            ),
            MobilityKind::ConstantVelocity => (
                Box::new(ConstantVelocity::new(
                    region,
                    self.nodes,
                    self.speed,
                    &mut placement_rng,
                )),
                Metric::toroidal(self.side),
            ),
            MobilityKind::RandomWaypoint { pause } => (
                Box::new(RandomWaypoint::new(
                    region,
                    self.nodes,
                    self.speed.max(f64::MIN_POSITIVE),
                    self.speed.max(f64::MIN_POSITIVE),
                    pause,
                    &mut placement_rng,
                )),
                Metric::Euclidean,
            ),
            MobilityKind::RandomWalk { min_leg, max_leg } => (
                Box::new(RandomWalk::new(
                    region,
                    self.nodes,
                    self.speed,
                    min_leg,
                    max_leg,
                    &mut placement_rng,
                )),
                Metric::Euclidean,
            ),
        };
        World::try_new(
            mobility,
            self.radius,
            self.dt,
            metric,
            self.hello,
            self.sizes,
            self.seed,
            self.fault,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_world() {
        let w = SimBuilder::new().nodes(50).build();
        assert_eq!(w.node_count(), 50);
        assert_eq!(w.radius(), 150.0);
        assert_eq!(w.dt(), 0.25);
        assert_eq!(w.region().side(), 1000.0);
        assert_eq!(w.metric(), Metric::toroidal(1000.0));
    }

    #[test]
    fn density_helper() {
        let b = SimBuilder::new().side(100.0).nodes(400);
        assert!((b.density() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn bounded_models_get_euclidean_metric() {
        let w = SimBuilder::new()
            .nodes(10)
            .mobility(MobilityKind::RandomWaypoint { pause: 1.0 })
            .build();
        assert_eq!(w.metric(), Metric::Euclidean);
        let w = SimBuilder::new()
            .nodes(10)
            .mobility(MobilityKind::RandomWalk {
                min_leg: 1.0,
                max_leg: 2.0,
            })
            .build();
        assert_eq!(w.metric(), Metric::Euclidean);
    }

    #[test]
    fn same_seed_same_world() {
        let make = || {
            let mut w = SimBuilder::new().nodes(40).seed(77).build();
            let mut q = crate::QuietCtx::new();
            w.run_for(5.0, &mut q.ctx());
            w.positions().to_vec()
        };
        assert_eq!(make(), make());
    }

    #[test]
    #[should_panic(expected = "r < a")]
    fn radius_at_least_side_panics() {
        SimBuilder::new().side(100.0).radius(100.0).build();
    }

    #[test]
    fn try_build_returns_typed_errors() {
        use crate::SimError;
        let err = SimBuilder::new()
            .side(100.0)
            .radius(100.0)
            .try_build()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::RadiusExceedsSide {
                radius: 100.0,
                side: 100.0
            }
        );
        assert!(SimBuilder::new().side(0.0).try_build().is_err());
        assert!(SimBuilder::new().dt(-1.0).try_build().is_err());
        let err = SimBuilder::new()
            .fault(crate::FaultPlan {
                loss: crate::LossModel::Bernoulli { p: 2.0 },
                churn: Default::default(),
                seed: 0,
            })
            .try_build()
            .unwrap_err();
        assert!(matches!(err, SimError::Fault(_)));
    }

    #[test]
    fn ideal_fault_plan_is_counter_identical_to_baseline() {
        use crate::{FaultPlan, MessageKind};
        let trace = |with_plan: bool| {
            let mut b = SimBuilder::new().nodes(80).seed(21);
            if with_plan {
                b = b.fault(FaultPlan::ideal());
            }
            let mut w = b.build();
            let mut q = crate::QuietCtx::new();
            w.run_for(20.0, &mut q.ctx());
            let c = w.counters().clone();
            (
                c.messages(MessageKind::Hello),
                c.links_generated(),
                c.links_broken(),
                w.positions().to_vec(),
            )
        };
        assert_eq!(trace(false), trace(true));
    }
}
