//! Link lifetime tracking.
//!
//! Claim 2 implies a per-link statistic the paper never states directly:
//! if each of a node's `d` links breaks at rate `μ = 8v/(π²r)`, the mean
//! lifetime of a link must be `1/μ = π²·r/(8·v)`. Tracking lifetimes
//! per-link validates the analysis at a finer granularity than the
//! aggregate rates, and the resulting distribution feeds protocol design
//! (e.g. soft-timer and route-cache timeouts).

use crate::topology::{LinkEvent, LinkEventKind};
use crate::NodeId;
use manet_util::stats::Summary;
use std::collections::HashMap;

/// Accumulates the lifetime distribution of links from a [`LinkEvent`]
/// stream.
#[derive(Debug, Clone, Default)]
pub struct LinkLifetimes {
    /// Birth time of currently alive links.
    alive: HashMap<(NodeId, NodeId), f64>,
    /// Completed lifetimes.
    completed: Summary,
}

impl LinkLifetimes {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        LinkLifetimes::default()
    }

    /// Feeds one tick's events at time `now`.
    ///
    /// Links already alive when tracking starts are ignored (their births
    /// were not observed), which removes truncation bias from the left.
    pub fn observe(&mut self, now: f64, events: &[LinkEvent]) {
        for e in events {
            let key = (e.a, e.b);
            match e.kind {
                LinkEventKind::Generated => {
                    self.alive.insert(key, now);
                }
                LinkEventKind::Broken => {
                    if let Some(birth) = self.alive.remove(&key) {
                        self.completed.push(now - birth);
                    }
                }
            }
        }
    }

    /// Number of links whose full lifetime has been observed.
    pub fn completed_count(&self) -> u64 {
        self.completed.count()
    }

    /// Lifetime statistics of completed links.
    pub fn lifetimes(&self) -> Summary {
        self.completed
    }

    /// The analytic mean lifetime implied by Claim 2: `π²·r/(8·v)`.
    pub fn claim2_mean_lifetime(radius: f64, speed: f64) -> f64 {
        assert!(
            radius > 0.0 && speed > 0.0,
            "radius and speed must be positive"
        );
        std::f64::consts::PI.powi(2) * radius / (8.0 * speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MobilityKind, SimBuilder};

    #[test]
    fn tracks_birth_to_death() {
        let mut t = LinkLifetimes::new();
        let gen = |a, b| LinkEvent {
            kind: LinkEventKind::Generated,
            a,
            b,
        };
        let brk = |a, b| LinkEvent {
            kind: LinkEventKind::Broken,
            a,
            b,
        };
        t.observe(1.0, &[gen(0, 1), gen(0, 2)]);
        t.observe(4.0, &[brk(0, 1)]);
        t.observe(11.0, &[brk(0, 2)]);
        assert_eq!(t.completed_count(), 2);
        assert_eq!(t.lifetimes().mean(), 6.5); // (3 + 10) / 2
    }

    #[test]
    fn ignores_links_alive_before_tracking() {
        let mut t = LinkLifetimes::new();
        // A break with no recorded birth is discarded.
        t.observe(
            5.0,
            &[LinkEvent {
                kind: LinkEventKind::Broken,
                a: 3,
                b: 4,
            }],
        );
        assert_eq!(t.completed_count(), 0);
    }

    #[test]
    fn measured_mean_lifetime_matches_claim2() {
        // CV on the torus: mean link lifetime should be π²r/(8v).
        let (r, v) = (120.0, 10.0);
        let mut world = SimBuilder::new()
            .nodes(300)
            .radius(r)
            .speed(v)
            .mobility(MobilityKind::ConstantVelocity)
            .dt(0.1)
            .seed(0x11FE)
            .build();
        let mut q = crate::QuietCtx::new();
        world.run_for(20.0, &mut q.ctx());
        let mut tracker = LinkLifetimes::new();
        for _ in 0..(600.0 / world.dt()) as usize {
            world.step(&mut q.ctx());
            tracker.observe(world.time(), world.last_events());
        }
        assert!(tracker.completed_count() > 2000, "need statistics");
        let measured = tracker.lifetimes().mean();
        let theory = LinkLifetimes::claim2_mean_lifetime(r, v);
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.12,
            "mean lifetime {measured:.2}s vs π²r/(8v) = {theory:.2}s (rel {rel:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn claim2_lifetime_rejects_zero_speed() {
        LinkLifetimes::claim2_mean_lifetime(100.0, 0.0);
    }
}
