//! The simulation world: mobility + link tracking + HELLO + accounting.

use crate::counters::{Counters, MessageKind, MessageSizes};
use crate::ctx::{Scratch, StepCtx};
use crate::error::{positive, SimError};
use crate::fault::{Channel, ChurnKind, FaultPlan, STREAM_HELLO};
use crate::stage::{MobilityStage, WorldStages};
use crate::topology::{GridTopology, LinkEvent, LinkEventKind, Topology, TopologyBuilder};
use manet_geom::{Metric, SpatialGrid, SquareRegion, Vec2};
use manet_mobility::Mobility;
use manet_telemetry::{EventKind, Layer, Phase, Probe, RootCause};
use manet_util::stats::Summary;
use manet_util::Rng;
use std::fmt;

/// How HELLO beacons are emitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HelloMode {
    /// The paper's lower bound: a node beacons exactly when it gains a new
    /// neighbor (one HELLO per endpoint per link generation); link breaks
    /// are detected by soft timers and cost no transmission.
    EventDriven,
    /// Conventional implementation: every node beacons every `interval`
    /// seconds regardless of topology changes.
    Periodic {
        /// Beacon interval in seconds.
        interval: f64,
    },
    /// No HELLO accounting (useful when a layer under test supplies its own
    /// discovery mechanism).
    Disabled,
}

/// Summary of one simulation tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Simulation time after the tick.
    pub time: f64,
    /// Links generated during the tick.
    pub generated: usize,
    /// Links broken during the tick.
    pub broken: usize,
    /// Nodes that crashed during the tick (churn schedule).
    pub crashed: usize,
    /// Nodes that recovered during the tick (churn schedule).
    pub recovered: usize,
    /// HELLO deliveries dropped by the fault plane during the tick (zero on
    /// an ideal channel; attempted sends are still counted as overhead).
    pub hello_lost: usize,
    /// HELLO deliveries dropped this tick — a historical alias for
    /// [`StepReport::hello_lost`].
    ///
    /// The world transmits only HELLOs, so this field never captured
    /// cluster or route losses despite its name. The cross-layer total now
    /// lives in `StackReport::msgs_lost`, aggregated by `ProtocolStack`.
    #[deprecated(note = "world-level losses are HELLO-only; read `hello_lost`, or \
                `StackReport::msgs_lost` for the cross-layer total")]
    pub msgs_lost: usize,
}

/// Adapts a bare [`TopologyBuilder`] into a full [`WorldStages`] bundle
/// with the default sequential mobility advance, so `step_with` callers
/// keep their exact pre-stage behavior.
struct SeqMobility<'b>(&'b mut dyn TopologyBuilder);

impl MobilityStage for SeqMobility<'_> {}

impl TopologyBuilder for SeqMobility<'_> {
    fn build_into(
        &mut self,
        positions: &[Vec2],
        region: SquareRegion,
        radius: f64,
        metric: Metric,
        grid: &mut Option<SpatialGrid>,
        out: &mut Topology,
        probe: &mut Probe<'_>,
        now: f64,
    ) {
        self.0
            .build_into(positions, region, radius, metric, grid, out, probe, now)
    }
}

/// A deterministic time-stepped MANET world.
///
/// Owns a mobility model, recomputes the unit-disk topology every tick,
/// emits [`LinkEvent`]s, runs the HELLO layer, and accumulates
/// control-message [`Counters`]. Higher layers (clustering, routing) are
/// driven externally from the event stream — see the crate docs.
pub struct World {
    mobility: Box<dyn Mobility>,
    region: SquareRegion,
    metric: Metric,
    radius: f64,
    dt: f64,
    time: f64,
    measure_start: f64,
    sizes: MessageSizes,
    hello_mode: HelloMode,
    hello_accum: f64,
    topology: Topology,
    events: Vec<LinkEvent>,
    counters: Counters,
    degree_samples: Summary,
    rng: Rng,
    fault: FaultPlan,
    /// The world's own HELLO-delivery channel (forked from the fault plan;
    /// consumes no randomness when the loss model is ideal).
    hello_channel: Channel,
    /// Per-node up/down state driven by the churn schedule.
    alive: Vec<bool>,
    /// Index of the next unapplied churn event.
    churn_cursor: usize,
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("time", &self.time)
            .field("nodes", &self.mobility.len())
            .field("radius", &self.radius)
            .field("dt", &self.dt)
            .finish_non_exhaustive()
    }
}

impl World {
    /// Creates a world over an existing mobility model.
    ///
    /// `metric` should match the mobility model's boundary behavior:
    /// toroidal for wrap-around models, Euclidean for bounded ones. Most
    /// callers should use [`SimBuilder`](crate::SimBuilder) instead.
    ///
    /// # Panics
    ///
    /// Panics unless `radius` and `dt` are strictly positive and finite.
    pub fn new(
        mobility: Box<dyn Mobility>,
        radius: f64,
        dt: f64,
        metric: Metric,
        hello_mode: HelloMode,
        sizes: MessageSizes,
        seed: u64,
    ) -> Self {
        World::try_new(
            mobility,
            radius,
            dt,
            metric,
            hello_mode,
            sizes,
            seed,
            FaultPlan::ideal(),
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a world over an existing mobility model with a fault plan,
    /// returning a typed error on invalid parameters.
    ///
    /// With [`FaultPlan::ideal`] the world is byte-for-byte equivalent to
    /// one from [`World::new`]: no loss draws, no churn, identical counters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonPositive`] for a non-positive `radius` or
    /// `dt`, and [`SimError::Fault`] for invalid fault-plan parameters or a
    /// churn event naming a node outside the population.
    #[allow(clippy::too_many_arguments)]
    pub fn try_new(
        mobility: Box<dyn Mobility>,
        radius: f64,
        dt: f64,
        metric: Metric,
        hello_mode: HelloMode,
        sizes: MessageSizes,
        seed: u64,
        fault: FaultPlan,
    ) -> Result<Self, SimError> {
        positive("radius", radius)?;
        positive("dt", dt)?;
        let fault = fault.validated()?;
        fault.churn.check_population(mobility.len())?;
        let region = mobility.region();
        let mut topology = Topology::compute(mobility.positions(), region, radius, metric);
        let alive = vec![true; mobility.len()];
        let hello_channel = fault.channel(STREAM_HELLO);
        let mut world = World {
            mobility,
            region,
            metric,
            radius,
            dt,
            time: 0.0,
            measure_start: 0.0,
            sizes,
            hello_mode,
            hello_accum: 0.0,
            topology: Topology::empty(0),
            events: Vec::new(),
            counters: Counters::with_sizes(sizes),
            degree_samples: Summary::new(),
            rng: Rng::seed_from_u64(seed),
            fault,
            hello_channel,
            alive,
            churn_cursor: 0,
        };
        // Apply any time-zero churn before exposing the initial topology.
        world.apply_due_churn(&mut Probe::off());
        if !world.fault.churn.is_empty() {
            topology.retain_alive(&world.alive);
        }
        world.topology = topology;
        Ok(world)
    }

    /// Applies every churn event scheduled at or before the current time,
    /// returning `(crashed, recovered)` counts. With attribution enabled
    /// each churn event opens a `Churn` root and is noted in the tracker,
    /// so the link changes it provokes this tick chain to it.
    fn apply_due_churn(&mut self, probe: &mut Probe<'_>) -> (usize, usize) {
        let (mut crashed, mut recovered) = (0, 0);
        let now = self.time;
        while self.churn_cursor < self.fault.churn.events().len() {
            let e = self.fault.churn.events()[self.churn_cursor];
            if e.time > now {
                break;
            }
            self.churn_cursor += 1;
            let up = &mut self.alive[e.node as usize];
            let flipped = match e.kind {
                ChurnKind::Crash if *up => {
                    *up = false;
                    crashed += 1;
                    true
                }
                ChurnKind::Recover if !*up => {
                    *up = true;
                    recovered += 1;
                    true
                }
                _ => false,
            };
            if flipped {
                let cause = probe.causes().map(|t| {
                    let c = t.allocate(RootCause::Churn);
                    t.note_churn(e.node, now, c);
                    c
                });
                let kind = match e.kind {
                    ChurnKind::Crash => EventKind::NodeCrashed { node: e.node },
                    ChurnKind::Recover => EventKind::NodeRecovered { node: e.node },
                };
                probe.emit_caused(now, Layer::Sim, kind, cause);
            }
        }
        (crashed, recovered)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.mobility.len()
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Tick length in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Unit-disk transmission range.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Deployment region.
    pub fn region(&self) -> SquareRegion {
        self.region
    }

    /// Distance metric in force.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Message size table used for byte accounting.
    pub fn sizes(&self) -> MessageSizes {
        self.sizes
    }

    /// Current node positions.
    pub fn positions(&self) -> &[Vec2] {
        self.mobility.positions()
    }

    /// Current unit-disk topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Link events produced by the most recent [`World::step`].
    pub fn last_events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// Control-message counters for the current measurement window.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable access to the counters, for protocol layers driven on top of
    /// the world to record their own traffic.
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// The fault plan in force (ideal unless built with faults).
    pub fn fault(&self) -> &FaultPlan {
        &self.fault
    }

    /// Per-node up/down state (all `true` without churn).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Whether node `u` is currently up.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn is_alive(&self, u: crate::NodeId) -> bool {
        self.alive[u as usize]
    }

    /// Number of nodes currently up.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Mean of the per-tick mean degree over the measurement window.
    pub fn mean_degree(&self) -> f64 {
        self.degree_samples.mean()
    }

    /// Marks the start of the measurement window: zeroes all counters and
    /// degree samples. Call once the warmup has mixed the system into steady
    /// state.
    pub fn begin_measurement(&mut self) {
        self.counters.reset();
        self.degree_samples = Summary::new();
        self.measure_start = self.time;
    }

    /// Seconds elapsed since [`World::begin_measurement`].
    pub fn measured_time(&self) -> f64 {
        self.time - self.measure_start
    }

    /// Advances the world by one tick of `dt` seconds and returns a summary.
    ///
    /// Order of operations: move nodes → apply due churn events → recompute
    /// topology (crashed nodes lose all links) → diff into link events →
    /// account link events and HELLO traffic.
    ///
    /// Cross-cutting planes ride in the [`StepCtx`]: telemetry flows
    /// through `ctx.probe` (with [`Probe::off`] the tick is quiet at zero
    /// cost — same draws, same counters, same report), and the topology
    /// rebuild recycles the grid and neighbor-list allocations held in
    /// `ctx.scratch`, making the steady-state topology/diff path
    /// allocation-free. `ctx.now` is refreshed to the post-tick clock so
    /// downstream layers driven in the same tick observe it.
    pub fn step(&mut self, ctx: &mut StepCtx<'_, '_>) -> StepReport {
        self.step_with(ctx, &mut GridTopology)
    }

    /// [`World::step`] with an explicit [`TopologyBuilder`] supplying the
    /// per-tick neighbor-list computation and the default sequential
    /// mobility advance. Only the topology construction is delegated; the
    /// diff, link events, HELLO, and counters are this world's shared
    /// code, so any builder producing the same neighbor rows yields a
    /// bit-identical tick.
    pub fn step_with(
        &mut self,
        ctx: &mut StepCtx<'_, '_>,
        builder: &mut dyn TopologyBuilder,
    ) -> StepReport {
        self.step_staged(ctx, &mut SeqMobility(builder))
    }

    /// [`World::step`] with an explicit [`WorldStages`] bundle supplying
    /// both the mobility advance and the topology rebuild (the shard plane
    /// implements both; DESIGN.md §17). Everything downstream of the two
    /// delegated stages — churn, diff, link events, HELLO, counters — is
    /// this world's shared code, so any bundle producing the same
    /// positions and neighbor rows yields a bit-identical tick.
    pub fn step_staged(
        &mut self,
        ctx: &mut StepCtx<'_, '_>,
        stages: &mut dyn WorldStages,
    ) -> StepReport {
        let t0 = ctx.probe.phase_start();
        stages.advance(&mut *self.mobility, self.dt, &mut self.rng);
        ctx.probe.phase_end(Phase::Mobility, t0);
        self.time += self.dt;
        ctx.now = self.time;
        let (crashed, recovered) = self.apply_due_churn(ctx.probe);

        let t0 = ctx.probe.phase_start();
        // Rebuild the next topology in the shared scratch buffers: the
        // spatial grid and the spare topology keep their capacities across
        // ticks, and the post-diff swap recycles the current topology's
        // neighbor lists as next tick's spare.
        let Scratch { grid, spare } = &mut *ctx.scratch;
        stages.build_into(
            self.mobility.positions(),
            self.region,
            self.radius,
            self.metric,
            grid,
            spare,
            &mut *ctx.probe,
            self.time,
        );
        if !self.fault.churn.is_empty() {
            spare.retain_alive(&self.alive);
        }
        self.events.clear();
        self.topology.diff_into(spare, &mut self.events);
        std::mem::swap(&mut self.topology, spare);

        let mut generated = 0usize;
        let mut broken = 0usize;
        // With attribution: each link change opens its own root, unless an
        // endpoint churned this very tick — then it chains to the churn
        // root instead. Generation causes are kept so event-driven HELLO
        // sends below can be charged per link.
        let mut gen_causes = Vec::new();
        for e in &self.events {
            let chained = ctx
                .probe
                .causes()
                .and_then(|t| {
                    t.churn_cause(e.a, self.time)
                        .or_else(|| t.churn_cause(e.b, self.time))
                })
                .map(Some);
            match e.kind {
                LinkEventKind::Generated => {
                    generated += 1;
                    self.counters.record_link_generated();
                    let cause = chained.unwrap_or_else(|| ctx.probe.root(RootCause::LinkGen));
                    ctx.probe.emit_caused(
                        self.time,
                        Layer::Sim,
                        EventKind::LinkUp { a: e.a, b: e.b },
                        cause,
                    );
                    if ctx.probe.is_attributing() {
                        gen_causes.push(cause);
                    }
                }
                LinkEventKind::Broken => {
                    broken += 1;
                    self.counters.record_link_broken();
                    let cause = chained.unwrap_or_else(|| ctx.probe.root(RootCause::LinkBreak));
                    ctx.probe.emit_caused(
                        self.time,
                        Layer::Sim,
                        EventKind::LinkDown { a: e.a, b: e.b },
                        cause,
                    );
                }
            }
        }
        ctx.probe.phase_end(Phase::Topology, t0);

        let t0 = ctx.probe.phase_start();
        let mut hello_sent = 0u64;
        match self.hello_mode {
            HelloMode::EventDriven => {
                // Each new link prompts one beacon from each endpoint.
                hello_sent = 2 * generated as u64;
            }
            HelloMode::Periodic { interval } => {
                self.hello_accum += self.dt;
                while self.hello_accum >= interval {
                    self.hello_accum -= interval;
                    // Crashed nodes do not beacon.
                    hello_sent += self.alive_count() as u64;
                }
            }
            HelloMode::Disabled => {}
        }
        let mut hello_lost = 0usize;
        if hello_sent > 0 {
            self.counters.record_kind(MessageKind::Hello, hello_sent);
            if matches!(self.hello_mode, HelloMode::EventDriven) && !gen_causes.is_empty() {
                debug_assert_eq!(hello_sent, 2 * gen_causes.len() as u64);
                // Attributed event-driven HELLO: two beacons per generated
                // link, each send charged to its link's root. The counts
                // sum to the batch below, so windowed series and counters
                // are unchanged.
                for &cause in &gen_causes {
                    ctx.probe.emit_caused(
                        self.time,
                        Layer::Sim,
                        EventKind::MsgSent {
                            class: MessageKind::Hello.into(),
                            count: 2,
                        },
                        cause,
                    );
                }
            } else {
                ctx.probe.emit(
                    self.time,
                    Layer::Sim,
                    EventKind::MsgSent {
                        class: MessageKind::Hello.into(),
                        count: hello_sent,
                    },
                );
            }
            // Overhead is paid at the sender, so attempted sends are counted
            // above regardless; a lossy channel additionally drops receptions.
            // The ideal channel consumes no randomness, and the draws come
            // from the world's own forked channel, so loss observation never
            // perturbs mobility or higher layers.
            if !self.hello_channel.is_ideal() {
                for _ in 0..hello_sent {
                    if !self.hello_channel.deliver() {
                        hello_lost += 1;
                    }
                }
                if hello_lost > 0 {
                    let cause = ctx.probe.root(RootCause::ChannelLoss);
                    ctx.probe.emit_caused(
                        self.time,
                        Layer::Sim,
                        EventKind::MsgLost {
                            class: MessageKind::Hello.into(),
                            count: hello_lost as u64,
                        },
                        cause,
                    );
                }
            }
        }
        ctx.probe.phase_end(Phase::Hello, t0);

        self.degree_samples.push(self.topology.mean_degree());
        #[allow(deprecated)]
        StepReport {
            time: self.time,
            generated,
            broken,
            crashed,
            recovered,
            hello_lost,
            msgs_lost: hello_lost,
        }
    }

    /// Runs whole ticks until at least `seconds` more simulated time has
    /// elapsed.
    pub fn run_for(&mut self, seconds: f64, ctx: &mut StepCtx<'_, '_>) {
        let target = self.time + seconds;
        // Tolerate float drift: never run an extra tick for rounding noise.
        while self.time + self.dt * 0.5 < target {
            self.step(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::QuietCtx;
    use manet_mobility::{ConstantVelocity, EpochRandomDirection};

    fn small_world(seed: u64) -> World {
        let region = SquareRegion::new(200.0);
        let mut rng = Rng::seed_from_u64(seed);
        let mobility = EpochRandomDirection::new(region, 60, 8.0, 15.0, &mut rng);
        World::new(
            Box::new(mobility),
            40.0,
            0.25,
            Metric::toroidal(200.0),
            HelloMode::EventDriven,
            MessageSizes::default(),
            seed ^ 0xABCD,
        )
    }

    #[test]
    fn time_advances_and_events_flow() {
        let mut w = small_world(1);
        let mut q = QuietCtx::new();
        let r = w.step(&mut q.ctx());
        assert!((r.time - 0.25).abs() < 1e-12);
        w.run_for(10.0, &mut q.ctx());
        assert!((w.time() - 10.25).abs() < 1e-9);
        // In a mobile world links must have churned.
        assert!(w.counters().links_generated() + w.counters().links_broken() > 0);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut w = small_world(seed);
            let mut q = QuietCtx::new();
            w.run_for(20.0, &mut q.ctx());
            (
                w.counters().links_generated(),
                w.counters().links_broken(),
                w.counters().messages(MessageKind::Hello),
                w.positions().to_vec(),
            )
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
        let c = run(43);
        assert_ne!(a.3, c.3);
    }

    #[test]
    fn event_driven_hello_counts_two_per_generation() {
        let mut w = small_world(2);
        let mut q = QuietCtx::new();
        w.run_for(30.0, &mut q.ctx());
        assert_eq!(
            w.counters().messages(MessageKind::Hello),
            2 * w.counters().links_generated()
        );
    }

    #[test]
    fn periodic_hello_counts_n_per_interval() {
        let region = SquareRegion::new(200.0);
        let mut rng = Rng::seed_from_u64(3);
        let mobility = EpochRandomDirection::new(region, 50, 5.0, 15.0, &mut rng);
        let mut w = World::new(
            Box::new(mobility),
            40.0,
            0.5,
            Metric::toroidal(200.0),
            HelloMode::Periodic { interval: 2.0 },
            MessageSizes::default(),
            9,
        );
        let mut q = QuietCtx::new();
        w.run_for(20.0, &mut q.ctx());
        // 10 intervals × 50 nodes.
        assert_eq!(w.counters().messages(MessageKind::Hello), 500);
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let mut w = small_world(4);
        let mut q = QuietCtx::new();
        w.run_for(10.0, &mut q.ctx());
        let warm = w.counters().links_generated();
        assert!(warm > 0);
        w.begin_measurement();
        assert_eq!(w.counters().links_generated(), 0);
        assert_eq!(w.measured_time(), 0.0);
        w.run_for(5.0, &mut q.ctx());
        assert!((w.measured_time() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn link_events_are_symmetric_in_steady_state() {
        // Over a long window on a torus, generation and break counts agree
        // within statistical noise.
        let mut w = small_world(5);
        let mut q = QuietCtx::new();
        w.run_for(30.0, &mut q.ctx());
        w.begin_measurement();
        w.run_for(400.0, &mut q.ctx());
        let gen = w.counters().links_generated() as f64;
        let brk = w.counters().links_broken() as f64;
        assert!(gen > 100.0);
        assert!((gen - brk).abs() / gen < 0.1, "gen {gen} vs brk {brk}");
    }

    #[test]
    fn measured_link_rate_matches_cv_theory() {
        // Claim 2 calibration: CV on a torus with toroidal metric should
        // produce per-node total link change rate ≈ 16·d·v/(π²·r) with
        // d = (N−1)·πr²/a².
        let side = 1000.0;
        let (n, r, v) = (300usize, 120.0, 10.0);
        let region = SquareRegion::new(side);
        let mut rng = Rng::seed_from_u64(6);
        let mobility = ConstantVelocity::new(region, n, v, &mut rng);
        let mut w = World::new(
            Box::new(mobility),
            r,
            0.2,
            Metric::toroidal(side),
            HelloMode::EventDriven,
            MessageSizes::default(),
            7,
        );
        let mut q = QuietCtx::new();
        w.run_for(50.0, &mut q.ctx());
        w.begin_measurement();
        w.run_for(600.0, &mut q.ctx());
        let elapsed = w.measured_time();
        let rate = w.counters().per_node_link_generation_rate(n, elapsed)
            + w.counters().per_node_link_break_rate(n, elapsed);
        let d = (n as f64 - 1.0) * std::f64::consts::PI * r * r / (side * side);
        let theory = 16.0 * d * v / (std::f64::consts::PI.powi(2) * r);
        let rel = (rate - theory).abs() / theory;
        assert!(
            rel < 0.1,
            "measured {rate:.4} vs theory {theory:.4} (rel err {rel:.3})"
        );
    }

    #[test]
    fn lossy_channel_reports_hello_losses_but_counts_attempts() {
        let region = SquareRegion::new(200.0);
        let mut rng = Rng::seed_from_u64(21);
        let mobility = EpochRandomDirection::new(region, 60, 8.0, 15.0, &mut rng);
        let mut w = World::try_new(
            Box::new(mobility),
            40.0,
            0.25,
            Metric::toroidal(200.0),
            HelloMode::EventDriven,
            MessageSizes::default(),
            77,
            crate::FaultPlan::bernoulli(1.0, 5).unwrap(),
        )
        .unwrap();
        let mut q = QuietCtx::new();
        let mut lost = 0usize;
        let mut total_msgs_lost = 0usize;
        for _ in 0..80 {
            let r = w.step(&mut q.ctx());
            lost += r.hello_lost;
            #[allow(deprecated)]
            {
                total_msgs_lost += r.msgs_lost;
            }
        }
        let sent = w.counters().messages(MessageKind::Hello);
        assert!(sent > 0);
        // p = 1: every delivery drops, yet every attempt is still charged.
        assert_eq!(lost as u64, sent);
        assert_eq!(total_msgs_lost, lost);
        assert!(w.counters().bytes_consistent());
    }

    #[test]
    fn ideal_channel_reports_zero_losses() {
        let mut w = small_world(31);
        let mut q = QuietCtx::new();
        for _ in 0..40 {
            let r = w.step(&mut q.ctx());
            assert_eq!(r.hello_lost, 0);
        }
    }

    #[test]
    fn degree_samples_stream_into_a_constant_size_summary() {
        // Regression for the old unbounded-Vec design: degree sampling must
        // accumulate into a fixed-size streaming summary so multi-hour runs
        // hold memory constant, while `mean_degree` keeps its semantics
        // (mean of the per-tick mean degrees).
        let mut w = small_world(12);
        let mut q = QuietCtx::new();
        let mut sum = 0.0;
        let mut ticks = 0u64;
        for _ in 0..200 {
            w.step(&mut q.ctx());
            sum += w.topology().mean_degree();
            ticks += 1;
        }
        assert!((w.mean_degree() - sum / ticks as f64).abs() < 1e-9);
        // Compile-time bound: the accumulator is a few scalars, not a Vec
        // of one sample per tick.
        const _: () = assert!(std::mem::size_of::<Summary>() <= 64);
    }

    #[test]
    fn traced_step_with_noop_probe_matches_untraced() {
        use manet_telemetry::NoopSubscriber;
        let mut plain = small_world(55);
        let mut traced = small_world(55);
        let mut q = QuietCtx::new();
        let mut noop = NoopSubscriber;
        let mut scratch = Scratch::new();
        for _ in 0..60 {
            let a = plain.step(&mut q.ctx());
            let mut probe = Probe::subscriber(&mut noop);
            let b = traced.step(&mut StepCtx::new(&mut probe, &mut scratch));
            assert_eq!(a, b);
        }
        assert_eq!(plain.counters(), traced.counters());
        assert_eq!(plain.positions(), traced.positions());
    }

    #[test]
    fn traced_step_emits_link_and_hello_events() {
        use manet_telemetry::{Event, Subscriber};

        #[derive(Default)]
        struct Collect(Vec<Event>);
        impl Subscriber for Collect {
            fn event(&mut self, e: &Event) {
                self.0.push(*e);
            }
        }

        let mut w = small_world(9);
        let mut sink = Collect::default();
        let mut scratch = Scratch::new();
        let mut generated = 0usize;
        let mut broken = 0usize;
        for _ in 0..40 {
            let mut probe = Probe::subscriber(&mut sink);
            let r = w.step(&mut StepCtx::new(&mut probe, &mut scratch));
            generated += r.generated;
            broken += r.broken;
        }
        let ups = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkUp { .. }))
            .count();
        let downs = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkDown { .. }))
            .count();
        assert_eq!(ups, generated);
        assert_eq!(downs, broken);
        let hellos: u64 = sink
            .0
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MsgSent {
                    class: manet_telemetry::MsgClass::Hello,
                    count,
                } => Some(count),
                _ => None,
            })
            .sum();
        assert_eq!(hellos, w.counters().messages(MessageKind::Hello));
        assert!(sink.0.iter().all(|e| e.layer == Layer::Sim));
    }

    #[test]
    fn attributed_step_tags_every_link_and_hello_send() {
        use manet_telemetry::{CauseTracker, Event, RootCause, Subscriber};

        #[derive(Default)]
        struct Collect(Vec<Event>);
        impl Subscriber for Collect {
            fn event(&mut self, e: &Event) {
                self.0.push(*e);
            }
        }

        let mut plain = small_world(73);
        let mut traced = small_world(73);
        let mut q = QuietCtx::new();
        let mut sink = Collect::default();
        let mut tracker = CauseTracker::new();
        let mut scratch = Scratch::new();
        for _ in 0..40 {
            let a = plain.step(&mut q.ctx());
            let mut probe = Probe::with_causes(Some(&mut sink), None, Some(&mut tracker));
            let b = traced.step(&mut StepCtx::new(&mut probe, &mut scratch));
            assert_eq!(a, b, "attribution must not perturb the simulation");
        }
        assert_eq!(plain.counters(), traced.counters());
        assert_eq!(plain.positions(), traced.positions());
        assert!(!sink.0.is_empty());
        assert!(
            sink.0.iter().all(|e| e.cause.is_some()),
            "every sim event has a root in an attributed event-driven run"
        );
        // Event-driven HELLO splits into per-link sends of 2, each sharing
        // its LinkUp's root; the counts still reconcile with the counters.
        let mut hello = 0u64;
        for e in &sink.0 {
            if let EventKind::MsgSent { count, .. } = e.kind {
                assert_eq!(count, 2);
                assert_eq!(e.cause.unwrap().root, RootCause::LinkGen);
                hello += count;
            }
        }
        assert_eq!(hello, traced.counters().messages(MessageKind::Hello));
        let link_ups = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkUp { .. }))
            .count() as u64;
        assert_eq!(hello, 2 * link_ups);
    }

    #[test]
    fn churned_link_changes_chain_to_the_churn_root() {
        use crate::fault::{ChurnEvent, ChurnKind, ChurnSchedule};
        use manet_telemetry::{CauseTracker, Event, RootCause, Subscriber};

        #[derive(Default)]
        struct Collect(Vec<Event>);
        impl Subscriber for Collect {
            fn event(&mut self, e: &Event) {
                self.0.push(*e);
            }
        }

        let region = SquareRegion::new(100.0);
        let mut rng = Rng::seed_from_u64(11);
        let mobility = ConstantVelocity::new(region, 20, 0.0, &mut rng);
        let fault = crate::FaultPlan {
            loss: crate::LossModel::Ideal,
            churn: ChurnSchedule::new(vec![
                ChurnEvent {
                    time: 1.0,
                    node: 3,
                    kind: ChurnKind::Crash,
                },
                ChurnEvent {
                    time: 3.0,
                    node: 3,
                    kind: ChurnKind::Recover,
                },
            ]),
            seed: 0,
        };
        let mut w = World::try_new(
            Box::new(mobility),
            40.0,
            0.5,
            Metric::toroidal(100.0),
            HelloMode::EventDriven,
            MessageSizes::default(),
            5,
            fault,
        )
        .unwrap();
        assert!(w.topology().degree(3) > 0);
        let mut sink = Collect::default();
        let mut tracker = CauseTracker::new();
        let mut scratch = Scratch::new();
        while w.time() < 3.5 {
            let mut probe = Probe::with_causes(Some(&mut sink), None, Some(&mut tracker));
            w.step(&mut StepCtx::new(&mut probe, &mut scratch));
        }
        // The crash's link breaks and the recovery's link formations (and
        // their HELLO beacons) all chain to the churn roots — static nodes,
        // so churn is the only cause of topology change.
        let crash_cause = sink
            .0
            .iter()
            .find(|e| matches!(e.kind, EventKind::NodeCrashed { node: 3 }))
            .and_then(|e| e.cause)
            .expect("crash event recorded with a cause");
        assert_eq!(crash_cause.root, RootCause::Churn);
        let downs: Vec<_> = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkDown { .. }))
            .collect();
        assert!(!downs.is_empty());
        assert!(downs.iter().all(|e| e.cause == Some(crash_cause)));
        let recover_cause = sink
            .0
            .iter()
            .find(|e| matches!(e.kind, EventKind::NodeRecovered { node: 3 }))
            .and_then(|e| e.cause)
            .expect("recovery event recorded with a cause");
        let ups: Vec<_> = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkUp { .. }))
            .collect();
        assert!(!ups.is_empty());
        assert!(ups.iter().all(|e| e.cause == Some(recover_cause)));
        assert!(sink.0.iter().all(|e| match e.kind {
            EventKind::MsgSent { .. } => e.cause == Some(recover_cause),
            _ => true,
        }));
    }

    #[test]
    fn debug_is_nonempty() {
        let w = small_world(8);
        let s = format!("{w:?}");
        assert!(s.contains("World"));
    }

    #[test]
    fn churn_strips_and_restores_links() {
        use crate::fault::{ChurnEvent, ChurnKind, ChurnSchedule};
        let region = SquareRegion::new(100.0);
        let mut rng = Rng::seed_from_u64(11);
        // Static nodes so only churn changes the topology.
        let mobility = ConstantVelocity::new(region, 20, 0.0, &mut rng);
        let fault = crate::FaultPlan {
            loss: crate::LossModel::Ideal,
            churn: ChurnSchedule::new(vec![
                ChurnEvent {
                    time: 1.0,
                    node: 3,
                    kind: ChurnKind::Crash,
                },
                ChurnEvent {
                    time: 3.0,
                    node: 3,
                    kind: ChurnKind::Recover,
                },
            ]),
            seed: 0,
        };
        let mut w = World::try_new(
            Box::new(mobility),
            40.0,
            0.5,
            Metric::toroidal(100.0),
            HelloMode::EventDriven,
            MessageSizes::default(),
            5,
            fault,
        )
        .unwrap();
        let degree = w.topology().degree(3);
        assert!(degree > 0, "test needs node 3 connected");
        let links_before = w.topology().link_count();
        let mut q = QuietCtx::new();
        w.step(&mut q.ctx());
        let r = w.step(&mut q.ctx()); // t = 1.0: crash fires
        assert_eq!(r.crashed, 1);
        assert!(!w.is_alive(3));
        assert_eq!(w.alive_count(), 19);
        assert_eq!(w.topology().degree(3), 0);
        assert_eq!(w.topology().link_count(), links_before - degree);
        let mut recovered = 0;
        while w.time() < 3.5 {
            recovered += w.step(&mut q.ctx()).recovered;
        }
        assert_eq!(recovered, 1);
        assert!(w.is_alive(3));
        assert_eq!(w.topology().degree(3), degree);
        // Recovery re-generates the node's links (drives the HELLO path).
        assert!(w.counters().links_generated() >= degree as u64);
    }

    #[test]
    fn churn_event_out_of_population_is_an_error() {
        use crate::fault::{ChurnEvent, ChurnKind, ChurnSchedule};
        let region = SquareRegion::new(50.0);
        let mut rng = Rng::seed_from_u64(2);
        let mobility = ConstantVelocity::new(region, 4, 1.0, &mut rng);
        let fault = crate::FaultPlan {
            loss: crate::LossModel::Ideal,
            churn: ChurnSchedule::new(vec![ChurnEvent {
                time: 1.0,
                node: 9,
                kind: ChurnKind::Crash,
            }]),
            seed: 0,
        };
        let err = World::try_new(
            Box::new(mobility),
            10.0,
            0.5,
            Metric::toroidal(50.0),
            HelloMode::Disabled,
            MessageSizes::default(),
            1,
            fault,
        )
        .unwrap_err();
        assert!(err.to_string().contains("node 9"));
    }

    #[test]
    fn try_new_rejects_bad_geometry_with_typed_errors() {
        let make = |radius: f64, dt: f64| {
            let region = SquareRegion::new(50.0);
            let mut rng = Rng::seed_from_u64(2);
            let mobility = ConstantVelocity::new(region, 4, 1.0, &mut rng);
            World::try_new(
                Box::new(mobility),
                radius,
                dt,
                Metric::toroidal(50.0),
                HelloMode::Disabled,
                MessageSizes::default(),
                1,
                crate::FaultPlan::ideal(),
            )
        };
        assert!(make(0.0, 0.5).unwrap_err().to_string().contains("radius"));
        assert!(make(10.0, f64::NAN).unwrap_err().to_string().contains("dt"));
        assert!(make(10.0, 0.5).is_ok());
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn zero_dt_panics() {
        let region = SquareRegion::new(10.0);
        let mut rng = Rng::seed_from_u64(1);
        let mobility = ConstantVelocity::new(region, 2, 1.0, &mut rng);
        World::new(
            Box::new(mobility),
            5.0,
            0.0,
            Metric::toroidal(10.0),
            HelloMode::Disabled,
            MessageSizes::default(),
            1,
        );
    }
}
