//! The unified per-tick context threaded through every protocol layer.
//!
//! Before this module existed, each cross-cutting plane grew its own
//! parameter-twin entry points (a plain `step` next to traced and
//! faulty variants of itself, and so on). [`StepCtx`] bundles
//! everything those twins varied — the telemetry [`Probe`], the fault
//! plane ([`FaultHooks`]), the sim time, and shared scratch buffers — so
//! every layer exposes exactly one entry point and a future plane adds a
//! context field instead of a fourth twin (DESIGN.md §12).

use crate::topology::Topology;
use crate::NodeId;
use manet_geom::SpatialGrid;
use manet_telemetry::Probe;

/// The fate of one attempted CLUSTER send under a fault plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attempt {
    /// The message went through; the role change commits.
    Delivered,
    /// The message was lost; the role change does not commit and the
    /// underlying invariant violation persists for a later retry.
    Lost,
    /// The sender is backing off; no transmission this pass.
    Deferred,
}

/// Fault plane seen by the cluster maintenance engine.
///
/// The engine calls [`FaultHooks::is_alive`] to skip crashed nodes and
/// [`FaultHooks::attempt`] before committing each role change (one CLUSTER
/// message each). The default implementations — everything alive,
/// everything delivered — make [`NoFaults`] a zero-cost ideal plane.
pub trait FaultHooks {
    /// Whether node `u` is up. Crashed nodes neither detect breaks nor
    /// transmit; their links should already be absent from the topology.
    fn is_alive(&self, u: NodeId) -> bool {
        let _ = u;
        true
    }

    /// Gates and draws one CLUSTER send by node `u`.
    fn attempt(&mut self, u: NodeId) -> Attempt {
        let _ = u;
        Attempt::Delivered
    }
}

/// The ideal fault plane: every node up, every message delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultHooks for NoFaults {}

/// Shared scratch buffers for the steady-state tick loop.
///
/// Holding the spatial grid and the double-buffered topology here (rather
/// than rebuilding them from scratch each tick) makes the topology/diff
/// path of `World::step` allocation-free once capacities have warmed up;
/// see the `bench_stack` binary and `tests/alloc_free.rs` for the
/// measurement.
#[derive(Debug, Default)]
pub struct Scratch {
    /// The spatial hash grid, rebuilt (not reallocated) every tick.
    pub(crate) grid: Option<SpatialGrid>,
    /// The next-tick topology buffer, swapped with the world's current
    /// topology after the diff so neighbor-list capacities are recycled.
    pub(crate) spare: Topology,
}

impl Scratch {
    /// Fresh, empty scratch buffers (capacities warm up over the first
    /// couple of ticks).
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Per-tick context carried through every layer's single entry point:
/// telemetry probe, optional fault hooks, current sim time, and the shared
/// [`Scratch`] buffers.
///
/// Layers read `now` for event timestamps, route telemetry through
/// `probe`, and consult the hooks via [`StepCtx::is_alive`] /
/// [`StepCtx::attempt`] (both default to the ideal plane when no hooks
/// are attached). `World::step` refreshes `now` after advancing time, so
/// downstream layers in the same tick observe the post-step clock.
pub struct StepCtx<'a, 'p> {
    /// Telemetry probe; [`Probe::off`] for quiet runs.
    pub probe: &'a mut Probe<'p>,
    /// Fault plane for the cluster maintenance engine (`None` = ideal).
    pub hooks: Option<&'a mut dyn FaultHooks>,
    /// Current sim time, seconds.
    pub now: f64,
    /// Shared scratch buffers, reused across ticks.
    pub scratch: &'a mut Scratch,
}

impl<'a, 'p> StepCtx<'a, 'p> {
    /// A context with no fault hooks at `t = 0`.
    pub fn new(probe: &'a mut Probe<'p>, scratch: &'a mut Scratch) -> Self {
        StepCtx {
            probe,
            hooks: None,
            now: 0.0,
            scratch,
        }
    }

    /// Sets the sim time (builder style).
    #[must_use]
    pub fn at(mut self, now: f64) -> Self {
        self.now = now;
        self
    }

    /// Attaches fault hooks (builder style).
    #[must_use]
    pub fn with_hooks(mut self, hooks: &'a mut dyn FaultHooks) -> Self {
        self.hooks = Some(hooks);
        self
    }

    /// Whether node `u` is up under the attached fault plane (always true
    /// without hooks).
    pub fn is_alive(&self, u: NodeId) -> bool {
        match &self.hooks {
            Some(h) => h.is_alive(u),
            None => true,
        }
    }

    /// Gates and draws one CLUSTER send by node `u` (always
    /// [`Attempt::Delivered`] without hooks).
    pub fn attempt(&mut self, u: NodeId) -> Attempt {
        match &mut self.hooks {
            Some(h) => h.attempt(u),
            None => Attempt::Delivered,
        }
    }

    /// Opens the root tick span as an RAII guard: the guard derefs to
    /// this context (so the tick body uses it exactly like the plain
    /// `StepCtx`) and closes the span when dropped. Without a span
    /// recorder on the probe this is a no-op pass-through — the disabled
    /// path never reads the clock.
    pub fn tick_span(&mut self) -> TickSpan<'_, 'a, 'p> {
        let start = self.probe.tick_start();
        TickSpan { ctx: self, start }
    }
}

/// RAII guard for the root tick span (see [`StepCtx::tick_span`]):
/// derefs to the underlying [`StepCtx`] and closes the span on drop, so
/// the whole tick body — including everything emitted through the probe
/// — nests inside it.
pub struct TickSpan<'g, 'a, 'p> {
    ctx: &'g mut StepCtx<'a, 'p>,
    start: Option<manet_telemetry::SpanStart>,
}

impl<'a, 'p> std::ops::Deref for TickSpan<'_, 'a, 'p> {
    type Target = StepCtx<'a, 'p>;

    fn deref(&self) -> &Self::Target {
        self.ctx
    }
}

impl std::ops::DerefMut for TickSpan<'_, '_, '_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.ctx
    }
}

impl Drop for TickSpan<'_, '_, '_> {
    fn drop(&mut self) {
        self.ctx.probe.tick_end(self.start.take());
    }
}

/// Owned probe-off context bundle for quiet runs (tests and experiments
/// that want neither telemetry nor faults).
///
/// Create one per simulation, then mint a fresh [`StepCtx`] per tick; the
/// [`Scratch`] buffers inside persist across ticks so the hot loop stays
/// allocation-free.
pub struct QuietCtx {
    probe: Probe<'static>,
    scratch: Scratch,
}

impl QuietCtx {
    /// A quiet bundle: [`Probe::off`] and empty scratch buffers.
    pub fn new() -> Self {
        QuietCtx {
            probe: Probe::off(),
            scratch: Scratch::new(),
        }
    }

    /// A fresh hookless context at `t = 0` (`World::step` refreshes `now`).
    pub fn ctx(&mut self) -> StepCtx<'_, 'static> {
        StepCtx::new(&mut self.probe, &mut self.scratch)
    }
}

impl Default for QuietCtx {
    fn default() -> Self {
        QuietCtx::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hookless_ctx_is_the_ideal_plane() {
        let mut probe = Probe::off();
        let mut scratch = Scratch::new();
        let mut ctx = StepCtx::new(&mut probe, &mut scratch).at(3.5);
        assert_eq!(ctx.now, 3.5);
        assert!(ctx.is_alive(7));
        assert_eq!(ctx.attempt(7), Attempt::Delivered);
    }

    /// The tick-span guard passes the context through unchanged and
    /// closes exactly one tick span per guard when a recorder is
    /// attached (none when it is not).
    #[test]
    fn tick_span_guard_records_one_tick_span() {
        use manet_telemetry::{SpanLabel, SpanRecorder};
        let mut spans = SpanRecorder::new();
        let mut scratch = Scratch::new();
        {
            let mut probe = Probe::new(None, None).with_spans(Some(&mut spans));
            let mut ctx = StepCtx::new(&mut probe, &mut scratch).at(2.0);
            let mut span = ctx.tick_span();
            // The guard is a drop-in StepCtx: fields and methods resolve
            // through Deref.
            assert_eq!(span.now, 2.0);
            assert!(span.is_alive(3));
            assert_eq!(span.attempt(3), Attempt::Delivered);
        }
        assert_eq!(spans.tick(), 1);
        assert_eq!(spans.hist(SpanLabel::Tick, None).unwrap().count(), 1);

        // Quiet context: the guard is inert.
        let mut q = QuietCtx::new();
        let mut ctx = q.ctx();
        let span = ctx.tick_span();
        assert!(!span.probe.is_spanning());
    }

    #[test]
    fn attached_hooks_are_consulted() {
        struct DeadAndLossy;
        impl FaultHooks for DeadAndLossy {
            fn is_alive(&self, u: NodeId) -> bool {
                u != 1
            }
            fn attempt(&mut self, _: NodeId) -> Attempt {
                Attempt::Lost
            }
        }
        let mut probe = Probe::off();
        let mut scratch = Scratch::new();
        let mut hooks = DeadAndLossy;
        let mut ctx = StepCtx::new(&mut probe, &mut scratch).with_hooks(&mut hooks);
        assert!(!ctx.is_alive(1));
        assert!(ctx.is_alive(2));
        assert_eq!(ctx.attempt(2), Attempt::Lost);
        assert_eq!(ctx.attempt(0), Attempt::Lost);
    }
}
