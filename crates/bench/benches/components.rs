//! Component micro-benchmarks: per-tick simulator cost, clustering
//! formation/maintenance, routing updates, and closed-form evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manet_cluster::{Clustering, LowestId};
use manet_geom::{Metric, SpatialGrid, SquareRegion};
use manet_model::{lid, DegreeModel, NetworkParams, OverheadModel};
use manet_routing::intra::IntraClusterRouting;
use manet_sim::{SimBuilder, Topology, World};
use manet_util::Rng;
use std::time::Duration;

fn world_of(n: usize) -> World {
    SimBuilder::new()
        .side(1000.0)
        .nodes(n)
        .radius(150.0)
        .speed(10.0)
        .seed(1)
        .build()
}

fn sim_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_tick");
    g.measurement_time(Duration::from_secs(5));
    for n in [100usize, 400, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut world = world_of(n);
            b.iter(|| std::hint::black_box(world.step()));
        });
    }
    g.finish();
}

fn grid_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_build");
    let region = SquareRegion::new(1000.0);
    let mut rng = Rng::seed_from_u64(3);
    for n in [400usize, 2000] {
        let positions: Vec<_> = (0..n).map(|_| region.sample_uniform(&mut rng)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &positions, |b, pts| {
            b.iter(|| {
                std::hint::black_box(SpatialGrid::build(
                    pts,
                    region,
                    150.0,
                    Metric::toroidal(1000.0),
                ))
            })
        });
    }
    g.finish();
}

fn cluster_formation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_formation");
    for n in [100usize, 400] {
        let world = world_of(n);
        let topo = world.topology().clone();
        g.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, t| {
            b.iter(|| std::hint::black_box(Clustering::form(LowestId, t)))
        });
    }
    g.finish();
}

fn cluster_maintenance_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_maintenance");
    g.measurement_time(Duration::from_secs(5));
    g.bench_function("n400_tick", |b| {
        let mut world = world_of(400);
        let mut clustering = Clustering::form(LowestId, world.topology());
        b.iter(|| {
            world.step();
            std::hint::black_box(clustering.maintain(world.topology()));
        })
    });
    g.finish();
}

fn routing_update_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_update");
    g.measurement_time(Duration::from_secs(5));
    g.bench_function("n400_tick", |b| {
        let mut world = world_of(400);
        let mut clustering = Clustering::form(LowestId, world.topology());
        let mut routing = IntraClusterRouting::new();
        routing.update(world.topology(), &clustering);
        b.iter(|| {
            world.step();
            clustering.maintain(world.topology());
            std::hint::black_box(routing.update(world.topology(), &clustering));
        })
    });
    g.finish();
}

fn topology_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_diff");
    let mut world = world_of(400);
    let before = world.topology().clone();
    world.run_for(5.0);
    let after = world.topology().clone();
    g.bench_function("n400_5s_apart", |b| {
        b.iter(|| {
            let mut events = Vec::new();
            before.diff_into(&after, &mut events);
            std::hint::black_box(events.len())
        })
    });
    let _ = Topology::empty(0);
    g.finish();
}

fn model_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    let params = NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap();
    let model = OverheadModel::new(params, DegreeModel::BorderCorrected);
    g.bench_function("breakdown", |b| {
        b.iter(|| std::hint::black_box(model.breakdown(0.08)))
    });
    g.bench_function("lid_p_exact_bisection", |b| {
        b.iter(|| std::hint::black_box(lid::p_exact(28.0).unwrap()))
    });
    g.finish();
}

criterion_group!(
    components,
    sim_tick,
    grid_build,
    cluster_formation,
    cluster_maintenance_tick,
    routing_update_tick,
    topology_diff,
    model_evaluation
);
criterion_main!(components);
