//! One Criterion group per paper artifact: runs a reduced-size version of
//! each figure's full pipeline (simulation + analysis) so `cargo bench`
//! regenerates every figure end to end and tracks its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use manet_bench::{bench_protocol, bench_scenario};
use manet_experiments::harness::{analysis_at, measure_lid, Scenario};
use manet_experiments::{claims, lid_figures, theta};
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn fig1_range_sweep(c: &mut Criterion) {
    let mut g = configure(c).benchmark_group("fig1");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let protocol = bench_protocol();
    g.bench_function("range_point_sim_plus_analysis", |b| {
        b.iter(|| {
            let scenario = Scenario { radius: 120.0, ..bench_scenario() };
            let m = measure_lid(&scenario, &protocol);
            std::hint::black_box(analysis_at(&scenario, m.head_ratio.mean));
        })
    });
    g.finish();
}

fn fig2_velocity_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let protocol = bench_protocol();
    g.bench_function("velocity_point_sim_plus_analysis", |b| {
        b.iter(|| {
            let scenario = Scenario { speed: 20.0, ..bench_scenario() };
            let m = measure_lid(&scenario, &protocol);
            std::hint::black_box(analysis_at(&scenario, m.head_ratio.mean));
        })
    });
    g.finish();
}

fn fig3_density_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let protocol = bench_protocol();
    g.bench_function("density_point_sim_plus_analysis", |b| {
        b.iter(|| {
            let scenario = Scenario { nodes: 220, ..bench_scenario() };
            let m = measure_lid(&scenario, &protocol);
            std::hint::black_box(analysis_at(&scenario, m.head_ratio.mean));
        })
    });
    g.finish();
}

fn fig4_lid_equation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(20);
    g.bench_function("eqn16_residual_sweep", |b| {
        b.iter(|| std::hint::black_box(lid_figures::fig4()))
    });
    g.finish();
}

fn fig5_cluster_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("formation_monte_carlo", |b| {
        b.iter(|| std::hint::black_box(lid_figures::fig5b(2)))
    });
    g.finish();
}

fn theta_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("theta");
    g.sample_size(20);
    g.bench_function("nine_cell_fit", |b| b.iter(|| std::hint::black_box(theta::compute())));
    g.finish();
}

fn claim_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("claims");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("claim1_degree_mc", |b| {
        b.iter(|| std::hint::black_box(claims::claim1(3)))
    });
    g.finish();
}

criterion_group!(
    figures,
    fig1_range_sweep,
    fig2_velocity_sweep,
    fig3_density_sweep,
    fig4_lid_equation,
    fig5_cluster_counts,
    theta_table,
    claim_checks
);
criterion_main!(figures);
