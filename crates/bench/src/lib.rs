//! Benchmark support for the `clustered-manet` workspace.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one Criterion group per paper artifact (FIG1–FIG5, THETA),
//!   running reduced-size versions of the experiment harnesses so
//!   `cargo bench` regenerates every figure's pipeline end to end.
//! * `components` — component micro-benchmarks: simulator tick throughput,
//!   cluster formation and maintenance, routing updates, and the
//!   closed-form model evaluation.
//!
//! This library crate only hosts shared reduced-size configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use manet_experiments::harness::{Protocol, Scenario};

/// A reduced scenario that keeps bench iterations fast while exercising
/// the same code paths as the full experiments.
pub fn bench_scenario() -> Scenario {
    Scenario { nodes: 150, side: 600.0, radius: 100.0, ..Scenario::default() }
}

/// A short measurement protocol for benches.
pub fn bench_protocol() -> Protocol {
    Protocol { warmup: 10.0, measure: 30.0, seeds: vec![1], dt: 0.5 }
}
