//! Analytical model of clustering and routing control overhead for one-hop
//! clustered mobile ad hoc networks.
//!
//! This crate is the Rust implementation of the contribution of
//!
//! > Xue, Er & Seah, *"Analysis of Clustering and Routing Overhead for
//! > Clustered Mobile Ad Hoc Networks"*, ICDCS 2006,
//!
//! which derives closed-form lower bounds for the per-node frequency and
//! bit rate of the three control-message categories of a clustered MANET —
//! HELLO (neighbor discovery), CLUSTER (reactive cluster maintenance), and
//! ROUTE (proactive intra-cluster routing) — as functions of network size
//! `N`, density `ρ`, transmission range `r`, node speed `v`, and the
//! cluster-head ratio `P`.
//!
//! Module map (equation numbers refer to the paper; see DESIGN.md §4 for
//! the reconstruction notes — the available text is OCR-corrupted around
//! every display equation):
//!
//! * [`params`] — [`NetworkParams`]: the `(N, a, r, v, sizes)` tuple with
//!   validation.
//! * [`degree`] — Claim 1: expected degree under the border-corrected
//!   (Miller) and torus-exact models (Eqn 1).
//! * [`overhead`] — Eqns 4–14: `f_hello`, `f_cluster` (decomposed into its
//!   member–head-break and head–contact terms), `f_route`, and the
//!   corresponding bit overheads.
//! * [`lid`] — Section 5: the Lowest-ID head ratio, exact (Eqn 16, fixed
//!   point) and approximate (Eqns 17–18), plus the Caro–Wei comparison
//!   estimate this reproduction adds.
//! * [`asymptotics`] — Section 6: numerical verification of the Θ-notation
//!   growth exponents.
//!
//! # Example
//!
//! ```
//! use manet_model::{DegreeModel, NetworkParams, OverheadModel};
//!
//! let params = NetworkParams::new(400, 1000.0, 150.0, 10.0)?;
//! let model = OverheadModel::new(params, DegreeModel::TorusExact);
//! let p = manet_model::lid::p_approx(model.expected_degree());
//! let b = model.breakdown(p);
//! assert!(b.f_route > b.f_cluster); // ROUTE dominates (paper §6)
//! # Ok::<(), manet_model::params::ParamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asymptotics;
pub mod capacity;
pub mod degree;
pub mod dhop;
pub mod lid;
pub mod overhead;
pub mod params;

pub use degree::DegreeModel;
pub use overhead::{
    contact_unit_cost, route_unit_cost, ClusterSizeModel, HeadContactConvention, OverheadBreakdown,
    OverheadModel, RouteLinkModel, RouteMessageModel,
};
pub use params::NetworkParams;
