//! The control-overhead lower bounds (paper Eqns 4–14).
//!
//! All frequencies are **per node per second**; bit overheads are **bits
//! per node per second**. The cluster-head ratio `P` is a free input —
//! measure it from a live system or predict it with [`crate::lid`] — which
//! is exactly how the paper treats it ("P … can be viewed as a metric of a
//! particular clustering algorithm").
//!
//! Two deliberately exposed modeling switches record ambiguities in the
//! paper's corrupted equations (DESIGN.md §4):
//!
//! * [`HeadContactConvention`] — whether the head–head contact event rate
//!   divides by 2 for pair double-counting ([`PerPair`] is the convention
//!   our simulator confirms; [`PerEndpoint`] is the literal reading of the
//!   paper's Eqn 10).
//! * [`RouteLinkModel`] — whether intra-cluster links include
//!   member↔member pairs (the κ disc-overlap term). [`WithMemberMember`]
//!   is required to reproduce the paper's own Θ(r) growth for ROUTE
//!   (Section 6); [`MemberHeadOnly`] is the naive star-topology reading.
//!
//! [`PerPair`]: HeadContactConvention::PerPair
//! [`PerEndpoint`]: HeadContactConvention::PerEndpoint
//! [`WithMemberMember`]: RouteLinkModel::WithMemberMember
//! [`MemberHeadOnly`]: RouteLinkModel::MemberHeadOnly

use crate::degree::DegreeModel;
use crate::params::NetworkParams;
use manet_geom::linkdist::DISC_SAME_RADIUS_LINK_PROB;
use std::f64::consts::PI;

/// Counting convention for head–head contact events (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HeadContactConvention {
    /// Each contact counted once per head pair (event rate `NP·λ′/2`).
    /// Matches the simulator.
    #[default]
    PerPair,
    /// Each contact counted at both heads (event rate `NP·λ′`), the literal
    /// reading of the paper's Eqn 10. Exactly 2× `PerPair`.
    PerEndpoint,
}

/// Which links count as "within the cluster" for ROUTE updates (see module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouteLinkModel {
    /// Member↔head links plus member↔member links between co-members
    /// (probability κ ≈ 0.5865 that two nodes in the head's disc are in
    /// range of each other). Default; matches this workspace's simulator,
    /// which re-broadcasts on *every* intra-cluster link change.
    #[default]
    WithMemberMember,
    /// Only the `m−1` member↔head star links — the literal reading of the
    /// paper's Eqn 13 (`f_routing = 16v(1−P)/(π²·r·P)`).
    MemberHeadOnly,
}

/// How cluster sizes are distributed around the mean `m = 1/P` when
/// evaluating the ROUTE bound.
///
/// The intra-cluster link count `L(m)` is convex in `m`, and per-node
/// ROUTE traffic weights clusters by a further factor of `m`
/// (`f = 2μ·E[L(m)·m]/E[m]`), so size dispersion inflates traffic well
/// above the paper's point estimate `2μ·L(m̄)`. Our LID simulations
/// measure a factor ≈ 4.5–5 — between [`Fixed`] (×1) and [`Exponential`]
/// (×6 asymptotically); see the `route_model_ablation` experiment.
///
/// [`Fixed`]: ClusterSizeModel::Fixed
/// [`Exponential`]: ClusterSizeModel::Exponential
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterSizeModel {
    /// All clusters have exactly the mean size (the paper's implicit
    /// assumption). Default.
    #[default]
    Fixed,
    /// Cluster sizes exponentially distributed with mean `m̄`:
    /// `E[m²] = 2m̄²`, `E[m³] = 6m̄³`.
    Exponential,
}

/// How many table entries one ROUTE message carries, i.e. how `f_route`
/// converts to bits (Eqn 14).
///
/// The paper's Θ rows for ROUTE (`Θ(r)·Θ(ρ)·Θ(v)`) and its conclusion that
/// ROUTE dominates total overhead are only consistent with its Eqn 13 when
/// each broadcast carries the node's whole intra-cluster table (`m`
/// entries) — the `1/P²` visible in the corrupted Eqn 14 denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouteMessageModel {
    /// Each ROUTE message carries the full intra-cluster table:
    /// `m = 1/P` entries of `p_route` bytes. Default (paper reading).
    #[default]
    FullTable,
    /// Each ROUTE message carries a single changed entry.
    SingleEntry,
}

/// Per-node overhead decomposition returned by
/// [`OverheadModel::breakdown`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadBreakdown {
    /// HELLO frequency (Eqn 4), msgs/node/s.
    pub f_hello: f64,
    /// CLUSTER frequency, member–head-break term (Eqns 6–7), msgs/node/s.
    pub f_cluster_break: f64,
    /// CLUSTER frequency, head–contact term (Eqns 8–10), msgs/node/s.
    pub f_cluster_contact: f64,
    /// Total CLUSTER frequency (Eqn 11), msgs/node/s.
    pub f_cluster: f64,
    /// ROUTE frequency (Eqn 13), msgs/node/s.
    pub f_route: f64,
    /// HELLO bit overhead (Eqn 5), bits/node/s.
    pub o_hello: f64,
    /// CLUSTER bit overhead (Eqn 12), bits/node/s.
    pub o_cluster: f64,
    /// ROUTE bit overhead (Eqn 14), bits/node/s.
    pub o_route: f64,
    /// Total control overhead `O_hello + O_cluster + O_route`, bits/node/s.
    pub o_total: f64,
}

/// The assembled overhead model: parameters + degree model + conventions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    params: NetworkParams,
    degree_model: DegreeModel,
    contact_convention: HeadContactConvention,
    route_links: RouteLinkModel,
    route_message: RouteMessageModel,
    size_model: ClusterSizeModel,
}

impl OverheadModel {
    /// Creates a model with the default conventions (`PerPair`,
    /// `WithMemberMember`).
    pub fn new(params: NetworkParams, degree_model: DegreeModel) -> Self {
        OverheadModel {
            params,
            degree_model,
            contact_convention: HeadContactConvention::default(),
            route_links: RouteLinkModel::default(),
            route_message: RouteMessageModel::default(),
            size_model: ClusterSizeModel::default(),
        }
    }

    /// Overrides the cluster-size dispersion model for the ROUTE bound.
    pub fn with_size_model(mut self, m: ClusterSizeModel) -> Self {
        self.size_model = m;
        self
    }

    /// Overrides the ROUTE message-size model.
    pub fn with_route_message(mut self, m: RouteMessageModel) -> Self {
        self.route_message = m;
        self
    }

    /// Overrides the head-contact counting convention.
    pub fn with_contact_convention(mut self, c: HeadContactConvention) -> Self {
        self.contact_convention = c;
        self
    }

    /// Overrides the intra-cluster link model for ROUTE.
    pub fn with_route_links(mut self, m: RouteLinkModel) -> Self {
        self.route_links = m;
        self
    }

    /// The parameters in force.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// The degree model in force.
    pub fn degree_model(&self) -> DegreeModel {
        self.degree_model
    }

    /// Expected degree `d` (Claim 1 / torus variant).
    pub fn expected_degree(&self) -> f64 {
        self.degree_model.expected_degree(&self.params)
    }

    /// Per-node total link change rate `λ = 16·d·v/(π²·r)` (Claim 2,
    /// Eqn 3).
    pub fn link_change_rate(&self) -> f64 {
        manet_mobility::rates::link_change_rate_for_degree(
            self.expected_degree(),
            self.params.radius(),
            self.params.speed(),
        )
    }

    /// Per-link break rate `μ = 8v/(π²·r)`.
    fn per_link_break_rate(&self) -> f64 {
        manet_mobility::rates::per_link_break_rate(self.params.radius(), self.params.speed())
    }

    /// HELLO frequency (Eqn 4): the link generation rate,
    /// `f_hello = 8·d·v/(π²·r)`.
    pub fn f_hello(&self) -> f64 {
        self.link_change_rate() / 2.0
    }

    /// CLUSTER frequency from member–head link breaks (Eqns 6–7), averaged
    /// over all `N` nodes: each of the `N(1−P)` members holds one link to
    /// its head, breaking at the per-link rate `μ`, and answers with one
    /// CLUSTER message: `f = (1−P)·μ = 8·v·(1−P)/(π²·r)`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    pub fn f_cluster_break(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "head ratio must be in [0, 1], got {p}"
        );
        (1.0 - p) * self.per_link_break_rate()
    }

    /// CLUSTER frequency from head–head contacts (Eqns 8–10), averaged over
    /// all `N` nodes.
    ///
    /// Per-head contact generation rate `λ′ = 8·d′·v/(π²·r)` with the
    /// thinned head degree `d′` (Eqn 9); each contact re-homes a whole
    /// cluster (`m = 1/P` messages). Under [`HeadContactConvention::PerPair`]
    /// the network event rate is `N·P·λ′/2`, giving per-node frequency
    /// `λ′/2 · (P·m) = 4·d′·v/(π²·r)`; `PerEndpoint` doubles it.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    pub fn f_cluster_contact(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "head ratio must be in [0, 1], got {p}"
        );
        let d_head = self.degree_model.expected_head_degree(&self.params, p);
        let lambda_gen_head = 8.0 * d_head * self.params.speed() / (PI * PI * self.params.radius());
        match self.contact_convention {
            HeadContactConvention::PerPair => lambda_gen_head / 2.0,
            HeadContactConvention::PerEndpoint => lambda_gen_head,
        }
    }

    /// Total CLUSTER frequency (Eqn 11).
    pub fn f_cluster(&self, p: f64) -> f64 {
        self.f_cluster_break(p) + self.f_cluster_contact(p)
    }

    /// Expected number of intra-cluster links per cluster, `L(m)`, for mean
    /// cluster size `m = 1/P`: the `m−1` member–head links plus (under
    /// [`RouteLinkModel::WithMemberMember`]) `κ·(m−1)(m−2)/2` member pairs
    /// within range (members live in the head's disc of radius `r`; two
    /// uniform points in that disc are within `r` with probability
    /// κ ≈ 0.5865).
    pub fn intra_cluster_links(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "head ratio must be in (0, 1], got {p}");
        let m = 1.0 / p;
        let star = (m - 1.0).max(0.0);
        match self.route_links {
            RouteLinkModel::MemberHeadOnly => star,
            RouteLinkModel::WithMemberMember => {
                let pairs = ((m - 1.0) * (m - 2.0) / 2.0).max(0.0);
                star + DISC_SAME_RADIUS_LINK_PROB * pairs
            }
        }
    }

    /// ROUTE frequency (Eqn 13 reconstruction): every intra-cluster link
    /// change (break or generation, total per-link rate `2μ`) triggers one
    /// update round through the cluster at one message per node, so the
    /// per-node frequency equals the per-cluster intra-link change rate:
    /// `f_route = 2·μ·L(1/P)`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1]`.
    pub fn f_route(&self, p: f64) -> f64 {
        let mu = self.per_link_break_rate();
        match self.size_model {
            ClusterSizeModel::Fixed => 2.0 * mu * self.intra_cluster_links(p),
            ClusterSizeModel::Exponential => {
                // f = 2μ·E[L(m)·m]/E[m] with m ~ Exp(m̄):
                //   member–head part: E[(m−1)m]/m̄ = 2m̄ − 1
                //   member pairs:     E[(m−1)(m−2)m/2]/m̄ = 3m̄² − 3m̄ + 1
                assert!(p > 0.0 && p <= 1.0, "head ratio must be in (0, 1], got {p}");
                let m = 1.0 / p;
                let star = (2.0 * m - 1.0).max(0.0);
                let pairs = match self.route_links {
                    RouteLinkModel::MemberHeadOnly => 0.0,
                    RouteLinkModel::WithMemberMember => {
                        DISC_SAME_RADIUS_LINK_PROB * (3.0 * m * m - 3.0 * m + 1.0).max(0.0)
                    }
                };
                2.0 * mu * (star + pairs)
            }
        }
    }

    /// Expected CLUSTER messages per head-contact event.
    ///
    /// Delegates to the module-level [`contact_unit_cost`].
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1]`.
    pub fn contact_unit_cost(&self, p: f64) -> f64 {
        contact_unit_cost(p)
    }

    /// Expected ROUTE messages per intra-cluster link change.
    ///
    /// Delegates to the module-level [`route_unit_cost`] with this
    /// model's [`RouteLinkModel`] convention.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1]`.
    pub fn route_unit_cost(&self, p: f64) -> f64 {
        route_unit_cost(p, self.route_links)
    }

    /// Full per-node breakdown at head ratio `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1]`.
    pub fn breakdown(&self, p: f64) -> OverheadBreakdown {
        let sizes = self.params.sizes();
        let f_hello = self.f_hello();
        let f_cluster_break = self.f_cluster_break(p);
        let f_cluster_contact = self.f_cluster_contact(p);
        let f_cluster = f_cluster_break + f_cluster_contact;
        let f_route = self.f_route(p);
        let o_hello = f_hello * sizes.hello as f64 * 8.0;
        let o_cluster = f_cluster * sizes.cluster as f64 * 8.0;
        let entries_per_message = match self.route_message {
            RouteMessageModel::FullTable => 1.0 / p,
            RouteMessageModel::SingleEntry => 1.0,
        };
        let o_route = f_route * entries_per_message * sizes.route_entry as f64 * 8.0;
        OverheadBreakdown {
            f_hello,
            f_cluster_break,
            f_cluster_contact,
            f_cluster,
            f_route,
            o_hello,
            o_cluster,
            o_route,
            o_total: o_hello + o_cluster + o_route,
        }
    }
}

/// Gamma shape of the normalized 2-D Poisson–Voronoi cell-area
/// distribution (Kiang's classic fit). Cluster populations inherit the
/// dispersion of the head dominance regions, so the size distribution is
/// modeled as `m ~ Gamma(k, m̄/k)`.
pub const VORONOI_AREA_GAMMA_SHAPE: f64 = 3.575;

/// Expected CLUSTER messages per head-contact event: the losing cluster
/// dissolves, costing one resignation plus one re-affiliation per member,
/// i.e. the loser's population at contact time.
///
/// The paper's first-order factor is the mean size `m̄ = 1/P` (Eqn 10).
/// That overstates the per-event cost: a cluster that loses a contact
/// resigns and later re-emerges at size 1 (a fresh promotion), regrowing
/// toward `m̄` until its next contact. Sampling the regrowth uniformly in
/// time — contacts arrive roughly independently of cluster age — catches
/// the loser midway, at `(m̄ + 1)/2`.
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1]`.
pub fn contact_unit_cost(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "head ratio must be in (0, 1], got {p}");
    (1.0 / p + 1.0) / 2.0
}

/// Expected ROUTE messages per intra-cluster link change: one sync round
/// of `m` messages through the cluster whose link changed.
///
/// Link changes land on clusters in proportion to their intra-cluster
/// link count `L(m)`, so the per-change cost is the link-weighted mean
/// size `E[m·L(m)] / E[L(m)]` — strictly above the first-order `m̄ = 1/P`
/// whenever sizes disperse, because `L` grows quadratically in `m`. The
/// size distribution is modeled as `Gamma(k)` with mean `m̄` and the
/// Poisson–Voronoi shape [`VORONOI_AREA_GAMMA_SHAPE`], giving closed-form
/// moments `E[m²] = m̄²(1+1/k)` and `E[m³] = m̄³(1+1/k)(1+2/k)`.
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1]`.
pub fn route_unit_cost(p: f64, links: RouteLinkModel) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "head ratio must be in (0, 1], got {p}");
    let m = 1.0 / p;
    let k = VORONOI_AREA_GAMMA_SHAPE;
    let m2 = m * m * (1.0 + 1.0 / k);
    let m3 = m * m * m * (1.0 + 1.0 / k) * (1.0 + 2.0 / k);
    // E[L] and E[m·L] for L(m) = (m−1) + κ·(m−1)(m−2)/2.
    let (links_mean, links_size_weighted) = match links {
        RouteLinkModel::MemberHeadOnly => ((m - 1.0).max(0.0), (m2 - m).max(0.0)),
        RouteLinkModel::WithMemberMember => {
            let half_kappa = DISC_SAME_RADIUS_LINK_PROB / 2.0;
            let el = (m - 1.0) + half_kappa * (m2 - 3.0 * m + 2.0);
            let eml = (m2 - m) + half_kappa * (m3 - 3.0 * m2 + 2.0 * m);
            (el.max(0.0), eml.max(0.0))
        }
    };
    if links_mean <= 0.0 {
        m
    } else {
        links_size_weighted / links_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OverheadModel {
        let params = NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap();
        OverheadModel::new(params, DegreeModel::TorusExact)
    }

    #[test]
    fn contact_unit_cost_is_midway_through_regrowth() {
        // Singleton clusters (p = 1) cost exactly the one resignation.
        assert!((contact_unit_cost(1.0) - 1.0).abs() < 1e-12);
        // Mean size 10 → loser caught midway between 1 and 10.
        assert!((contact_unit_cost(0.1) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn route_unit_cost_is_size_biased_above_the_mean() {
        for links in [
            RouteLinkModel::MemberHeadOnly,
            RouteLinkModel::WithMemberMember,
        ] {
            let cost = route_unit_cost(0.1, links);
            // Link-weighting over a dispersed size distribution pulls the
            // per-change cost above the plain mean m̄ = 10 ...
            assert!(cost > 10.0, "{links:?}: {cost}");
            // ... but stays below the exponential-dispersion extreme.
            assert!(cost < 30.0, "{links:?}: {cost}");
        }
        // Member-member pairs weight large clusters harder than the star.
        assert!(
            route_unit_cost(0.1, RouteLinkModel::WithMemberMember)
                > route_unit_cost(0.1, RouteLinkModel::MemberHeadOnly)
        );
        // Degenerate all-heads network: a round is a single self message.
        assert!((route_unit_cost(1.0, RouteLinkModel::MemberHeadOnly) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hello_equals_half_the_link_change_rate() {
        let m = model();
        assert!((m.f_hello() - m.link_change_rate() / 2.0).abs() < 1e-15);
        // Closed form: 8 d v / (π² r).
        let d = m.expected_degree();
        let expect = 8.0 * d * 10.0 / (PI * PI * 150.0);
        assert!((m.f_hello() - expect).abs() < 1e-12);
    }

    #[test]
    fn cluster_terms_behave_with_p() {
        let m = model();
        // Break term decreases linearly in P.
        assert!(m.f_cluster_break(0.1) > m.f_cluster_break(0.5));
        assert_eq!(m.f_cluster_break(1.0), 0.0);
        // Contact term increases with P (more heads, more contacts).
        assert!(m.f_cluster_contact(0.3) > m.f_cluster_contact(0.05));
        assert_eq!(m.f_cluster_contact(0.0), 0.0);
        // Total is the sum.
        let p = 0.2;
        assert!((m.f_cluster(p) - m.f_cluster_break(p) - m.f_cluster_contact(p)).abs() < 1e-15);
    }

    #[test]
    fn per_endpoint_convention_doubles_contact_term() {
        let m = model();
        let m2 = model().with_contact_convention(HeadContactConvention::PerEndpoint);
        let p = 0.1;
        assert!((m2.f_cluster_contact(p) - 2.0 * m.f_cluster_contact(p)).abs() < 1e-12);
    }

    #[test]
    fn route_link_models_nest() {
        let with = model();
        let without = model().with_route_links(RouteLinkModel::MemberHeadOnly);
        let p = 0.1; // m = 10
        assert!(with.intra_cluster_links(p) > without.intra_cluster_links(p));
        assert!((without.intra_cluster_links(p) - 9.0).abs() < 1e-12);
        let kappa = DISC_SAME_RADIUS_LINK_PROB;
        let expect = 9.0 + kappa * 9.0 * 8.0 / 2.0;
        assert!((with.intra_cluster_links(p) - expect).abs() < 1e-12);
        // Singleton clusters (P = 1) carry no intra links and no ROUTE load.
        assert_eq!(with.intra_cluster_links(1.0), 0.0);
        assert_eq!(with.f_route(1.0), 0.0);
    }

    #[test]
    fn breakdown_is_internally_consistent() {
        let m = model();
        let b = m.breakdown(0.064);
        assert!((b.f_cluster - b.f_cluster_break - b.f_cluster_contact).abs() < 1e-15);
        assert!((b.o_total - b.o_hello - b.o_cluster - b.o_route).abs() < 1e-9);
        assert!((b.o_hello - b.f_hello * 128.0).abs() < 1e-9); // 16 B = 128 bits
                                                               // The paper's headline: ROUTE dominates.
        assert!(b.o_route > b.o_cluster && b.o_route > b.o_hello);
    }

    #[test]
    fn frequencies_scale_linearly_with_speed() {
        let p = 0.1;
        let m1 = model();
        let params2 = NetworkParams::new(400, 1000.0, 150.0, 20.0).unwrap();
        let m2 = OverheadModel::new(params2, DegreeModel::TorusExact);
        for (a, b) in [
            (m1.f_hello(), m2.f_hello()),
            (m1.f_cluster(p), m2.f_cluster(p)),
            (m1.f_route(p), m2.f_route(p)),
        ] {
            assert!((b - 2.0 * a).abs() < 1e-9, "{b} != 2×{a}");
        }
    }

    #[test]
    fn zero_speed_means_zero_overhead() {
        let params = NetworkParams::new(400, 1000.0, 150.0, 0.0).unwrap();
        let m = OverheadModel::new(params, DegreeModel::TorusExact);
        let b = m.breakdown(0.1);
        assert_eq!(b.o_total, 0.0);
    }

    #[test]
    #[should_panic(expected = "head ratio")]
    fn bad_ratio_panics() {
        model().f_cluster(1.5);
    }
}
#[cfg(test)]
mod size_model_tests {
    use super::*;

    #[test]
    fn exponential_dispersion_inflates_route_by_about_six() {
        let params = NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap();
        let fixed = OverheadModel::new(params, DegreeModel::TorusExact);
        let exp = fixed.with_size_model(ClusterSizeModel::Exponential);
        let p = 0.02; // m = 50, deep in the quadratic regime
        let ratio = exp.f_route(p) / fixed.f_route(p);
        assert!((5.0..7.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dispersion_affects_only_route() {
        let params = NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap();
        let fixed = OverheadModel::new(params, DegreeModel::TorusExact);
        let exp = fixed.with_size_model(ClusterSizeModel::Exponential);
        assert_eq!(fixed.f_hello(), exp.f_hello());
        assert_eq!(fixed.f_cluster(0.1), exp.f_cluster(0.1));
    }
}
