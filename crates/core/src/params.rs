//! Network parameters shared by every formula in the model.

use std::fmt;

/// Byte sizes of the three control messages (the paper's `p_hello`,
/// `p_cluster`, `p_route`).
///
/// Mirrors `manet_sim::MessageSizes` field-for-field (the model crate does
/// not depend on the simulator); keep the defaults in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelMessageSizes {
    /// HELLO beacon size in bytes.
    pub hello: u32,
    /// CLUSTER message size in bytes.
    pub cluster: u32,
    /// One routing-table entry in bytes.
    pub route_entry: u32,
}

impl Default for ModelMessageSizes {
    fn default() -> Self {
        ModelMessageSizes {
            hello: 16,
            cluster: 24,
            route_entry: 12,
        }
    }
}

/// Error constructing [`NetworkParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `N` must be at least 2 for any pair statistics to exist.
    TooFewNodes,
    /// The region side must be strictly positive and finite.
    BadSide,
    /// The transmission range must satisfy `0 < r < a` (the paper's model
    /// assumption).
    BadRadius,
    /// The speed must be non-negative and finite.
    BadSpeed,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::TooFewNodes => write!(f, "need at least 2 nodes"),
            ParamError::BadSide => write!(f, "region side must be positive and finite"),
            ParamError::BadRadius => {
                write!(f, "transmission range must satisfy 0 < r < a")
            }
            ParamError::BadSpeed => write!(f, "speed must be non-negative and finite"),
        }
    }
}

impl std::error::Error for ParamError {}

/// The network parameter tuple `(N, a, r, v)` plus message sizes.
///
/// All formulas in this crate take their inputs from here, so a single
/// validated construction covers the whole model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    node_count: usize,
    side: f64,
    radius: f64,
    speed: f64,
    sizes: ModelMessageSizes,
}

impl NetworkParams {
    /// Creates parameters with default message sizes.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] when any quantity is out of range (notably
    /// the paper's requirement `r < a`).
    pub fn new(node_count: usize, side: f64, radius: f64, speed: f64) -> Result<Self, ParamError> {
        Self::with_sizes(
            node_count,
            side,
            radius,
            speed,
            ModelMessageSizes::default(),
        )
    }

    /// Creates parameters with explicit message sizes.
    ///
    /// # Errors
    ///
    /// Same as [`NetworkParams::new`].
    pub fn with_sizes(
        node_count: usize,
        side: f64,
        radius: f64,
        speed: f64,
        sizes: ModelMessageSizes,
    ) -> Result<Self, ParamError> {
        if node_count < 2 {
            return Err(ParamError::TooFewNodes);
        }
        if !(side > 0.0 && side.is_finite()) {
            return Err(ParamError::BadSide);
        }
        if !(radius > 0.0 && radius.is_finite() && radius < side) {
            return Err(ParamError::BadRadius);
        }
        if !(speed >= 0.0 && speed.is_finite()) {
            return Err(ParamError::BadSpeed);
        }
        Ok(NetworkParams {
            node_count,
            side,
            radius,
            speed,
            sizes,
        })
    }

    /// Network size `N`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Region side `a`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Transmission range `r`.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Common node speed `v`.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Message sizes for bit-overhead conversion.
    pub fn sizes(&self) -> ModelMessageSizes {
        self.sizes
    }

    /// Node density `ρ = N / a²`.
    pub fn density(&self) -> f64 {
        self.node_count as f64 / (self.side * self.side)
    }

    /// Region area `a²`.
    pub fn area(&self) -> f64 {
        self.side * self.side
    }

    /// Returns a copy with a different node count.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the new count is invalid.
    pub fn with_node_count(&self, node_count: usize) -> Result<Self, ParamError> {
        Self::with_sizes(node_count, self.side, self.radius, self.speed, self.sizes)
    }

    /// Returns a copy with a different transmission range.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the new radius is invalid.
    pub fn with_radius(&self, radius: f64) -> Result<Self, ParamError> {
        Self::with_sizes(self.node_count, self.side, radius, self.speed, self.sizes)
    }

    /// Returns a copy with a different speed.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the new speed is invalid.
    pub fn with_speed(&self, speed: f64) -> Result<Self, ParamError> {
        Self::with_sizes(self.node_count, self.side, self.radius, speed, self.sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction_and_accessors() {
        let p = NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap();
        assert_eq!(p.node_count(), 400);
        assert_eq!(p.side(), 1000.0);
        assert_eq!(p.radius(), 150.0);
        assert_eq!(p.speed(), 10.0);
        assert!((p.density() - 4e-4).abs() < 1e-15);
        assert_eq!(p.area(), 1e6);
        assert_eq!(p.sizes().hello, 16);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            NetworkParams::new(1, 10.0, 1.0, 1.0),
            Err(ParamError::TooFewNodes)
        );
        assert_eq!(
            NetworkParams::new(2, 0.0, 1.0, 1.0),
            Err(ParamError::BadSide)
        );
        assert_eq!(
            NetworkParams::new(2, 10.0, 10.0, 1.0),
            Err(ParamError::BadRadius)
        );
        assert_eq!(
            NetworkParams::new(2, 10.0, 0.0, 1.0),
            Err(ParamError::BadRadius)
        );
        assert_eq!(
            NetworkParams::new(2, 10.0, 1.0, -1.0),
            Err(ParamError::BadSpeed)
        );
        assert_eq!(
            NetworkParams::new(2, 10.0, 1.0, f64::INFINITY),
            Err(ParamError::BadSpeed)
        );
    }

    #[test]
    fn with_methods_revalidate() {
        let p = NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap();
        assert_eq!(p.with_node_count(800).unwrap().node_count(), 800);
        assert_eq!(p.with_radius(2000.0), Err(ParamError::BadRadius));
        assert_eq!(p.with_speed(5.0).unwrap().speed(), 5.0);
    }

    #[test]
    fn errors_display() {
        assert!(ParamError::BadRadius.to_string().contains("r < a"));
        assert!(ParamError::TooFewNodes.to_string().contains("2"));
    }
}
