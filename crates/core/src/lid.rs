//! Section 5: the Lowest-ID cluster-head ratio `P`.
//!
//! The paper models a node's headship probability through its id rank in
//! its closed neighborhood of `d+1` nodes, arriving at the implicit
//! equation (Eqn 16)
//!
//! ```text
//! P = (1/(d+1)) · Σ_{i=1..d+1} (1−P)^{i−1}  =  (1 − (1−P)^{d+1}) / ((d+1)·P)
//! ```
//!
//! and, by dropping the vanishing `(1−P)^{d+1}` term (Figure 4a), the
//! closed-form approximation `P ≈ 1/√(d+1)` (Eqn 17). Substituting
//! Claim 1's `d` gives Eqn 18.
//!
//! **Reproduction note.** Eqn 16 is a mean-field approximation; exact LID
//! formation is random-order greedy maximal-independent-set construction,
//! whose head ratio provably exceeds the Caro–Wei first-round bound
//! `E[1/(deg+1)]` but sits *well below* `1/√(d+1)` (our simulator measures
//! ≈ `1.8/(d+1)` at `d ≈ 28`). The paper itself reports its analysis and
//! simulation curves crossing in Figure 5. Both the paper's estimate and
//! the Caro–Wei comparison bound are provided so the FIG5 experiment can
//! show them side by side; EXPERIMENTS.md discusses the gap.

use crate::degree::DegreeModel;
use crate::params::NetworkParams;
use manet_util::solve::{bisect, SolveError};

/// Right-hand side of Eqn 16 as a function of `p` for a given expected
/// degree `d`.
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1]` and `d ≥ 0`.
pub fn eqn16_rhs(p: f64, d: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1], got {p}");
    assert!(d >= 0.0, "degree must be non-negative");
    let k = d + 1.0;
    (1.0 - (1.0 - p).powf(k)) / (k * p)
}

/// The residual `(1−P)^{d+1}` the approximation drops (Figure 4a).
pub fn eqn16_residual(p: f64, d: f64) -> f64 {
    (1.0 - p).powf(d + 1.0)
}

/// Solves Eqn 16 for `P` by bisection on `(0, 1]`.
///
/// # Errors
///
/// Propagates solver failures (which do not occur for finite `d ≥ 0`; the
/// equation brackets a unique root).
pub fn p_exact(d: f64) -> Result<f64, SolveError> {
    assert!(
        d >= 0.0 && d.is_finite(),
        "degree must be non-negative and finite"
    );
    if d == 0.0 {
        // Isolated nodes: every node heads its own cluster.
        return Ok(1.0);
    }
    bisect(|p| eqn16_rhs(p, d) - p, 1e-9, 1.0, 1e-12, 200)
}

/// The paper's closed-form approximation (Eqn 17): `P ≈ 1/√(d+1)`.
pub fn p_approx(d: f64) -> f64 {
    assert!(d >= 0.0, "degree must be non-negative");
    1.0 / (d + 1.0).sqrt()
}

/// Eqn 18: the approximation with Claim 1's degree substituted, as a
/// function of the network parameters.
pub fn p_approx_for(params: &NetworkParams, degree_model: DegreeModel) -> f64 {
    p_approx(degree_model.expected_degree(params))
}

/// Expected number of clusters `n = N·P` under the paper's model (used for
/// Figure 5).
pub fn expected_cluster_count(params: &NetworkParams, degree_model: DegreeModel) -> f64 {
    params.node_count() as f64 * p_approx_for(params, degree_model)
}

/// Caro–Wei comparison estimate added by this reproduction: the expected
/// density of *first-round* LID winners (nodes whose id beats the whole
/// closed neighborhood), `E[1/(X+1)]` for `X ~ Binomial(N−1, q)` with
/// pairwise connection probability `q`:
///
/// ```text
/// P_CW = (1 − (1−q)^N) / (N·q)
/// ```
///
/// True greedy LID formation produces strictly more heads than this lower
/// bound (later rounds add heads), and empirically ≈ 1.8× at moderate
/// degrees.
pub fn p_caro_wei(params: &NetworkParams, degree_model: DegreeModel) -> f64 {
    let n = params.node_count() as f64;
    let q = degree_model.connection_probability(params);
    if q == 0.0 {
        return 1.0;
    }
    (1.0 - (1.0 - q).powf(n)) / (n * q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_util::solve::fixed_point;

    #[test]
    fn rhs_is_decreasing_in_p() {
        let d = 20.0;
        let mut prev = f64::INFINITY;
        for i in 1..=100 {
            let p = i as f64 / 100.0;
            let r = eqn16_rhs(p, d);
            assert!(r <= prev + 1e-12, "rhs not decreasing at p={p}");
            prev = r;
        }
    }

    #[test]
    fn p_exact_solves_the_equation() {
        for d in [1.0, 5.0, 20.0, 100.0, 500.0] {
            let p = p_exact(d).unwrap();
            assert!(
                (eqn16_rhs(p, d) - p).abs() < 1e-9,
                "d={d}: residual too big"
            );
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn p_exact_matches_damped_fixed_point() {
        for d in [3.0, 30.0, 300.0] {
            let bis = p_exact(d).unwrap();
            let fp = fixed_point(
                |p| eqn16_rhs(p.clamp(1e-9, 1.0), d),
                0.5,
                0.5,
                1e-12,
                10_000,
            )
            .unwrap();
            assert!((bis - fp).abs() < 1e-8, "d={d}: {bis} vs {fp}");
        }
    }

    #[test]
    fn approximation_converges_to_exact_for_large_d() {
        // Figure 4b: the 1/√(d+1) approximation tracks Eqn 16 closely.
        for d in [10.0, 50.0, 200.0, 1000.0] {
            let exact = p_exact(d).unwrap();
            let approx = p_approx(d);
            let rel = (exact - approx).abs() / exact;
            assert!(
                rel < 0.05,
                "d={d}: exact {exact} vs approx {approx} (rel {rel})"
            );
        }
    }

    #[test]
    fn residual_vanishes_with_d() {
        // Figure 4a: (1−P)^{d+1} → 0 as d+1 grows, with P = P(d).
        let mut prev = 1.0;
        for d in [1.0, 4.0, 16.0, 64.0, 256.0] {
            let p = p_exact(d).unwrap();
            let r = eqn16_residual(p, d);
            assert!(r < prev, "residual must shrink, d={d}");
            prev = r;
        }
        assert!(prev < 1e-4, "residual at d=256 is {prev}");
    }

    #[test]
    fn degenerate_degree_is_all_heads() {
        assert_eq!(p_exact(0.0).unwrap(), 1.0);
    }

    #[test]
    fn p_decreases_with_range_and_size() {
        // Section 6's qualitative claim: the more nodes in range, the less
        // likely headship.
        let base = NetworkParams::new(400, 1000.0, 100.0, 10.0).unwrap();
        let wider = base.with_radius(200.0).unwrap();
        let denser = base.with_node_count(800).unwrap();
        let model = DegreeModel::BorderCorrected;
        assert!(p_approx_for(&wider, model) < p_approx_for(&base, model));
        assert!(p_approx_for(&denser, model) < p_approx_for(&base, model));
    }

    #[test]
    fn cluster_count_grows_sublinearly_with_n() {
        // n = N·P ≈ √(N/(πr²/a²)) grows like √N at fixed geometry.
        let p1 = NetworkParams::new(200, 1000.0, 150.0, 10.0).unwrap();
        let p2 = NetworkParams::new(800, 1000.0, 150.0, 10.0).unwrap();
        let m = DegreeModel::TorusExact;
        let c1 = expected_cluster_count(&p1, m);
        let c2 = expected_cluster_count(&p2, m);
        assert!(c2 > c1);
        assert!(c2 < 4.0 * c1, "quadrupling N must not quadruple clusters");
        assert!((c2 / c1 - 2.0).abs() < 0.1, "√N scaling: ratio {}", c2 / c1);
    }

    #[test]
    fn caro_wei_sits_below_eqn17() {
        let params = NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap();
        let m = DegreeModel::TorusExact;
        let cw = p_caro_wei(&params, m);
        let e17 = p_approx_for(&params, m);
        assert!(cw < e17, "Caro–Wei {cw} must undercut Eqn 17 {e17}");
        // And approximates 1/(d+1).
        let d = m.expected_degree(&params);
        assert!((cw - 1.0 / (d + 1.0)).abs() / cw < 0.05);
    }
}
