//! Claim 1: the expected number of network neighbors.

use crate::params::NetworkParams;
use manet_geom::linkdist::square_link_cdf;
use std::f64::consts::PI;

/// How the expected degree is computed from `(N, a, r)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeModel {
    /// The paper's Claim 1 (Eqn 1): nodes uniform in a bounded square,
    /// neighbors outside the square not counted, so border nodes see fewer
    /// neighbors. `d = (N−1) · F_a(r)` with Miller's square link-distance
    /// CDF `F_a`.
    BorderCorrected,
    /// Wrap-around square (this workspace's default simulator geometry):
    /// no border effect, `d = (N−1) · πr²/a²`. Reduces the analysis to the
    /// unbounded-plane CV formulas exactly.
    TorusExact,
}

impl DegreeModel {
    /// Pairwise connection probability of two uniformly placed nodes.
    pub fn connection_probability(self, params: &NetworkParams) -> f64 {
        let (r, a) = (params.radius(), params.side());
        match self {
            DegreeModel::BorderCorrected => square_link_cdf(r, a),
            DegreeModel::TorusExact => (PI * r * r / (a * a)).min(1.0),
        }
    }

    /// Expected degree `d` of a random node (Claim 1 for
    /// [`BorderCorrected`](DegreeModel::BorderCorrected)).
    pub fn expected_degree(self, params: &NetworkParams) -> f64 {
        (params.node_count() as f64 - 1.0) * self.connection_probability(params)
    }

    /// Expected number of *cluster-head* neighbors of a cluster-head, when
    /// heads are a thinned uniform process of ratio `p` (the paper's `d′`,
    /// Eqn 9): `d′ = (N·P − 1) · F_a(r)`, clamped at 0 for degenerate `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is within `[0, 1]`.
    pub fn expected_head_degree(self, params: &NetworkParams, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "head ratio must be in [0, 1], got {p}"
        );
        ((params.node_count() as f64 * p) - 1.0).max(0.0) * self.connection_probability(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_util::Rng;

    fn params() -> NetworkParams {
        NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap()
    }

    #[test]
    fn torus_degree_is_plain_disc_fraction() {
        let p = params();
        let d = DegreeModel::TorusExact.expected_degree(&p);
        let expect = 399.0 * PI * 150.0 * 150.0 / 1e6;
        assert!((d - expect).abs() < 1e-9);
    }

    #[test]
    fn border_correction_reduces_degree() {
        let p = params();
        let torus = DegreeModel::TorusExact.expected_degree(&p);
        let corrected = DegreeModel::BorderCorrected.expected_degree(&p);
        assert!(corrected < torus, "{corrected} !< {torus}");
        // The deficit at r/a = 0.15 is the Miller cubic term ≈ (8/3)(r/a)³
        // relative: meaningful but bounded.
        assert!(corrected > 0.8 * torus);
    }

    #[test]
    fn border_corrected_matches_monte_carlo() {
        // Claim 1 validation in miniature (the full version is an
        // experiment binary): drop N uniform points in the square, count
        // mean in-square neighbors.
        let p = params();
        let mut rng = Rng::seed_from_u64(17);
        let region = manet_geom::SquareRegion::new(p.side());
        let mut acc = 0.0;
        let trials = 60;
        for _ in 0..trials {
            let pts: Vec<manet_geom::Vec2> = (0..p.node_count())
                .map(|_| region.sample_uniform(&mut rng))
                .collect();
            let grid = manet_geom::SpatialGrid::build(
                &pts,
                region,
                p.radius(),
                manet_geom::Metric::Euclidean,
            );
            let mut out = Vec::new();
            let mut total = 0usize;
            for i in 0..pts.len() {
                grid.neighbors_within(i, &mut out);
                total += out.len();
            }
            acc += total as f64 / pts.len() as f64;
        }
        let mc = acc / trials as f64;
        let theory = DegreeModel::BorderCorrected.expected_degree(&p);
        let rel = (mc - theory).abs() / theory;
        assert!(
            rel < 0.02,
            "MC {mc:.3} vs Claim 1 {theory:.3} (rel {rel:.4})"
        );
    }

    #[test]
    fn head_degree_thins_linearly_until_clamp() {
        let p = params();
        let full = DegreeModel::TorusExact.expected_degree(&p);
        let half = DegreeModel::TorusExact.expected_head_degree(&p, 0.5);
        // (N·0.5 − 1)/(N − 1) of the full degree.
        let expect = (200.0 - 1.0) / 399.0 * full;
        assert!((half - expect).abs() < 1e-9);
        assert_eq!(DegreeModel::TorusExact.expected_head_degree(&p, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "head ratio")]
    fn head_degree_rejects_bad_ratio() {
        DegreeModel::TorusExact.expected_head_degree(&params(), 1.5);
    }
}
