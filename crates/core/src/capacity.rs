//! Gupta–Kumar capacity context for the overhead bounds.
//!
//! The paper motivates clustering with the Gupta–Kumar result it cites in
//! its introduction: the per-node throughput capacity of a random ad hoc
//! network of `N` nodes is `Θ(W/√(N·log N))` — a *shrinking* budget that
//! control traffic must fit into. This module provides that envelope and
//! the derived "control fraction" metric used by the `overhead_planner`
//! example: what share of a node's theoretical capacity the predicted
//! control overhead consumes.

use crate::lid;
use crate::overhead::OverheadModel;

/// Per-node throughput capacity of the Gupta–Kumar random network,
/// `W/√(N·log N)` bits/s, for channel rate `w_bits` and `n ≥ 2` nodes.
///
/// The Θ-constant is taken as 1 (the paper's argument only uses the
/// scaling).
///
/// # Panics
///
/// Panics unless `w_bits > 0` and `n ≥ 2`.
pub fn per_node_capacity(w_bits: f64, n: usize) -> f64 {
    assert!(
        w_bits > 0.0 && w_bits.is_finite(),
        "channel rate must be positive"
    );
    assert!(n >= 2, "capacity needs at least 2 nodes");
    w_bits / ((n as f64) * (n as f64).ln()).sqrt()
}

/// Fraction of the Gupta–Kumar per-node capacity consumed by the model's
/// predicted total control overhead at the LID head ratio (Eqn 17).
///
/// Values ≥ 1 mean control traffic alone exceeds the theoretical data
/// capacity — the regime the paper's introduction warns about.
pub fn control_fraction(model: &OverheadModel, w_bits: f64) -> f64 {
    let p = lid::p_approx(model.expected_degree());
    let o_total = model.breakdown(p.clamp(1e-9, 1.0)).o_total;
    o_total / per_node_capacity(w_bits, model.params().node_count())
}

/// Largest network size (among the probed doubling sequence
/// `n₀, 2n₀, 4n₀, …, n_max`) whose control fraction stays below `budget`,
/// growing the region with `N` to keep density fixed.
///
/// Returns `None` when even `n₀` exceeds the budget.
pub fn max_size_within_budget(
    base: &OverheadModel,
    w_bits: f64,
    budget: f64,
    n_max: usize,
) -> Option<usize> {
    let params0 = *base.params();
    let density = params0.density();
    let mut best = None;
    let mut n = params0.node_count().max(2);
    while n <= n_max {
        let side = (n as f64 / density).sqrt();
        let params = crate::params::NetworkParams::with_sizes(
            n,
            side,
            params0.radius(),
            params0.speed(),
            params0.sizes(),
        )
        .ok()?;
        let model = OverheadModel::new(params, base.degree_model());
        if control_fraction(&model, w_bits) < budget {
            best = Some(n);
        } else {
            break;
        }
        n *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeModel;
    use crate::params::NetworkParams;

    #[test]
    fn capacity_shrinks_with_n() {
        let w = 1e6;
        let c100 = per_node_capacity(w, 100);
        let c10k = per_node_capacity(w, 10_000);
        assert!(c10k < c100);
        // Θ(1/√(N log N)): the ratio over 100× nodes is ≈ √(100·(ln 1e4/ln 1e2)) = √200.
        let ratio = c100 / c10k;
        assert!(
            (ratio - 200f64.sqrt()).abs() / 200f64.sqrt() < 0.01,
            "ratio {ratio}"
        );
    }

    #[test]
    fn control_fraction_grows_with_speed() {
        let w = 1e6;
        let slow = OverheadModel::new(
            NetworkParams::new(400, 1000.0, 150.0, 5.0).unwrap(),
            DegreeModel::TorusExact,
        );
        let fast = OverheadModel::new(
            NetworkParams::new(400, 1000.0, 150.0, 50.0).unwrap(),
            DegreeModel::TorusExact,
        );
        assert!(control_fraction(&fast, w) > control_fraction(&slow, w));
    }

    #[test]
    fn budget_search_finds_a_threshold() {
        let w = 1e6;
        let base = OverheadModel::new(
            NetworkParams::new(100, 500.0, 150.0, 10.0).unwrap(),
            DegreeModel::TorusExact,
        );
        // A generous budget admits the base size; a tiny budget admits none.
        assert!(max_size_within_budget(&base, w, 0.9, 1_000_000).is_some());
        assert_eq!(max_size_within_budget(&base, w, 1e-9, 1_000_000), None);
        // The threshold is monotone in the budget.
        let loose = max_size_within_budget(&base, w, 0.5, 1_000_000);
        let tight = max_size_within_budget(&base, w, 0.05, 1_000_000);
        if let (Some(l), Some(t)) = (loose, tight) {
            assert!(l >= t);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn capacity_needs_two_nodes() {
        per_node_capacity(1e6, 1);
    }
}
