//! Heuristic extension of the head-ratio analysis to d-hop clusters.
//!
//! The paper's closing section points to multi-hop clustering (MobDHop,
//! Max-Min) as the next analysis target. The overhead bounds in
//! [`crate::overhead`] are already parametric in the head ratio `P`; what
//! a d-hop analysis needs is a `P` estimate. This module provides the
//! natural first-order one: replace the one-hop neighborhood size `d+1`
//! in Eqn 17 by the **d-hop neighborhood size**, upper-bounded on a
//! uniform plane by the disc of radius `h·r`:
//!
//! ```text
//! n_h ≤ min(N−1, π·(h·r)²·ρ)          (h = hop bound)
//! P_h ≈ 1/√(n_h + 1)                   (Eqn 17 with the d-hop degree)
//! ```
//!
//! The disc bound ignores that `h` graph hops cover less ground than `h·r`
//! straight-line meters (hop-progress loss), so `P_h` is a *lower*
//! estimate of the head ratio; the `dhop_extension` experiment measures
//! the gap against the greedy d-hop engine and Max-Min.

use crate::params::NetworkParams;
use std::f64::consts::PI;

/// Upper bound on the expected number of nodes within `hops` graph hops
/// (excluding the node itself): `min(N−1, π·(hops·r)²·ρ)`.
///
/// # Panics
///
/// Panics if `hops == 0`.
pub fn neighborhood_upper_bound(params: &NetworkParams, hops: usize) -> f64 {
    assert!(hops >= 1, "hops must be at least 1");
    let reach = hops as f64 * params.radius();
    let disc = PI * reach * reach * params.density();
    disc.min(params.node_count() as f64 - 1.0)
}

/// Eqn 17 evaluated with the d-hop neighborhood bound:
/// `P_h ≈ 1/√(n_h + 1)`.
pub fn p_approx(params: &NetworkParams, hops: usize) -> f64 {
    1.0 / (neighborhood_upper_bound(params, hops) + 1.0).sqrt()
}

/// Expected number of d-hop clusters, `N·P_h`.
pub fn expected_cluster_count(params: &NetworkParams, hops: usize) -> f64 {
    params.node_count() as f64 * p_approx(params, hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> NetworkParams {
        NetworkParams::new(400, 1000.0, 150.0, 10.0).unwrap()
    }

    #[test]
    fn one_hop_reduces_to_eqn18_torus_form() {
        let p = params();
        let via_dhop = p_approx(&p, 1);
        let d = PI * 150.0 * 150.0 * p.density();
        let direct = 1.0 / (d + 1.0).sqrt();
        assert!((via_dhop - direct).abs() < 1e-12);
    }

    #[test]
    fn more_hops_fewer_heads() {
        let p = params();
        assert!(p_approx(&p, 2) < p_approx(&p, 1));
        assert!(p_approx(&p, 3) < p_approx(&p, 2));
        assert!(expected_cluster_count(&p, 3) < expected_cluster_count(&p, 1));
    }

    #[test]
    fn neighborhood_saturates_at_network_size() {
        let p = params();
        // 10 hops × 150 m covers far more than the region: bound clamps.
        assert_eq!(neighborhood_upper_bound(&p, 10), 399.0);
    }

    #[test]
    #[should_panic(expected = "hops")]
    fn zero_hops_panics() {
        neighborhood_upper_bound(&params(), 0);
    }
}
