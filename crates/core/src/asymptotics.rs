//! Section 6: the control overhead in Knuth Θ-notation.
//!
//! The paper summarizes how each per-node message frequency grows with the
//! transmission range `r`, the density `ρ`, and the speed `v`, on an
//! unbounded plane (`a → ∞`, `N → ∞` at fixed `ρ`) with the LID coupling
//! `P = 1/√(d+1)`:
//!
//! | message | in `r` | in `ρ`   | in `v` |
//! |---------|--------|----------|--------|
//! | HELLO   | Θ(r)   | Θ(ρ)     | Θ(v)   |
//! | CLUSTER | Θ(1)   | Θ(ρ^1/2) | Θ(v)   |
//! | ROUTE   | Θ(r)   | Θ(ρ)     | Θ(v)   |
//!
//! [`theta_table`] verifies every cell numerically: it evaluates the
//! closed-form frequencies on decade sweeps of the relevant variable and
//! fits the log–log slope.

use crate::lid;
use manet_geom::linkdist::DISC_SAME_RADIUS_LINK_PROB;
use manet_util::stats::loglog_slope;
use std::f64::consts::PI;

/// Which variable a growth exponent is taken in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepVariable {
    /// Transmission range `r`.
    Range,
    /// Node density `ρ`.
    Density,
    /// Node speed `v`.
    Speed,
}

impl SweepVariable {
    /// All sweep variables in display order.
    pub const ALL: [SweepVariable; 3] = [
        SweepVariable::Range,
        SweepVariable::Density,
        SweepVariable::Speed,
    ];
}

/// The three message families of the Θ table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageFamily {
    /// Neighbor discovery beacons.
    Hello,
    /// Cluster maintenance messages.
    Cluster,
    /// Intra-cluster routing updates.
    Route,
}

impl MessageFamily {
    /// All families in display order.
    pub const ALL: [MessageFamily; 3] = [
        MessageFamily::Hello,
        MessageFamily::Cluster,
        MessageFamily::Route,
    ];
}

/// One verified cell of the Θ table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaCell {
    /// Message family (row).
    pub family: MessageFamily,
    /// Sweep variable (column).
    pub variable: SweepVariable,
    /// The paper's claimed exponent.
    pub claimed_exponent: f64,
    /// Numerically fitted exponent.
    pub fitted_exponent: f64,
}

impl ThetaCell {
    /// Whether the fit confirms the claim within `tolerance`.
    pub fn confirms(&self, tolerance: f64) -> bool {
        (self.fitted_exponent - self.claimed_exponent).abs() <= tolerance
    }
}

/// Per-node frequencies on the **unbounded plane** (`d = πr²ρ`,
/// `d′ = πr²ρP`), with the LID coupling `P = 1/√(d+1)` — the asymptotic
/// regime of the paper's Section 6.
///
/// Returns `(f_hello, f_cluster, f_route)`.
pub fn plane_frequencies(r: f64, density: f64, v: f64) -> (f64, f64, f64) {
    assert!(
        r > 0.0 && density > 0.0 && v >= 0.0,
        "invalid plane parameters"
    );
    let d = PI * r * r * density;
    let p = lid::p_approx(d);
    let mu = 8.0 * v / (PI * PI * r);
    let f_hello = d * mu; // 8 d v / (π² r)
    let d_head = d * p;
    let f_cluster = (1.0 - p) * mu + 8.0 * d_head * v / (PI * PI * r) / 2.0;
    let m = 1.0 / p;
    let links =
        (m - 1.0).max(0.0) + DISC_SAME_RADIUS_LINK_PROB * ((m - 1.0) * (m - 2.0) / 2.0).max(0.0);
    let f_route = 2.0 * mu * links;
    (f_hello, f_cluster, f_route)
}

/// The paper's claimed exponent for a `(family, variable)` cell.
pub fn claimed_exponent(family: MessageFamily, variable: SweepVariable) -> f64 {
    match (family, variable) {
        (MessageFamily::Hello, SweepVariable::Range) => 1.0,
        (MessageFamily::Hello, SweepVariable::Density) => 1.0,
        (MessageFamily::Hello, SweepVariable::Speed) => 1.0,
        (MessageFamily::Cluster, SweepVariable::Range) => 0.0,
        (MessageFamily::Cluster, SweepVariable::Density) => 0.5,
        (MessageFamily::Cluster, SweepVariable::Speed) => 1.0,
        (MessageFamily::Route, SweepVariable::Range) => 1.0,
        (MessageFamily::Route, SweepVariable::Density) => 1.0,
        (MessageFamily::Route, SweepVariable::Speed) => 1.0,
    }
}

/// Numerically verifies the full 3×3 Θ table.
///
/// Sweeps each variable over `[base·scale_lo, base·scale_hi]` (default two
/// decades into the asymptotic regime) while holding the other two at dense
/// reference values, and fits log–log slopes of the closed forms.
pub fn theta_table() -> Vec<ThetaCell> {
    // Reference point deep in the asymptotic regime (large degree so the
    // dominant terms dominate).
    let (r0, rho0, v0) = (100.0, 0.01, 10.0);
    let sweep = |variable: SweepVariable| -> (Vec<f64>, Vec<(f64, f64, f64)>) {
        let points: Vec<f64> = (0..25)
            .map(|i| 10f64.powf(i as f64 / 24.0 * 2.0)) // 1 … 100
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &s in &points {
            let (r, rho, v) = match variable {
                SweepVariable::Range => (r0 * s, rho0, v0),
                SweepVariable::Density => (r0, rho0 * s, v0),
                SweepVariable::Speed => (r0, rho0, v0 * s),
            };
            xs.push(s);
            ys.push(plane_frequencies(r, rho, v));
        }
        (xs, ys)
    };

    let mut cells = Vec::new();
    for variable in SweepVariable::ALL {
        let (xs, ys) = sweep(variable);
        for family in MessageFamily::ALL {
            let series: Vec<f64> = ys
                .iter()
                .map(|&(h, c, t)| match family {
                    MessageFamily::Hello => h,
                    MessageFamily::Cluster => c,
                    MessageFamily::Route => t,
                })
                .collect();
            let fit = loglog_slope(&xs, &series).expect("positive series");
            cells.push(ThetaCell {
                family,
                variable,
                claimed_exponent: claimed_exponent(family, variable),
                fitted_exponent: fit.slope,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_theta_cell_confirms_the_paper() {
        for cell in theta_table() {
            assert!(
                cell.confirms(0.12),
                "{:?}/{:?}: claimed {} fitted {:.3}",
                cell.family,
                cell.variable,
                cell.claimed_exponent,
                cell.fitted_exponent
            );
        }
    }

    #[test]
    fn table_has_nine_cells() {
        let t = theta_table();
        assert_eq!(t.len(), 9);
        // One cell per (family, variable) pair.
        for f in MessageFamily::ALL {
            for v in SweepVariable::ALL {
                assert_eq!(
                    t.iter()
                        .filter(|c| c.family == f && c.variable == v)
                        .count(),
                    1
                );
            }
        }
    }

    #[test]
    fn route_dominates_in_bits_in_the_asymptotic_regime() {
        // Message frequencies alone do NOT make ROUTE dominant (its rate
        // tends to κ ≈ 0.59 of HELLO's), but with full-table messages
        // (m = 1/P entries — the paper's Eqn 14 reading) its bit overhead
        // dominates, which is the paper's Section 6 conclusion.
        let (r, rho, v) = (200.0, 0.01, 10.0);
        let (h, c, t) = plane_frequencies(r, rho, v);
        assert!(t > c, "ROUTE frequency must beat CLUSTER: c={c}, t={t}");
        let d = PI * r * r * rho;
        let m = 1.0 / lid::p_approx(d);
        let (p_hello, p_cluster, p_route) = (16.0, 24.0, 12.0);
        let o_route = t * m * p_route;
        assert!(
            o_route > h * p_hello && o_route > c * p_cluster,
            "ROUTE bits must dominate: o_route={o_route}, o_hello={}",
            h * p_hello
        );
    }

    #[test]
    fn plane_frequencies_zero_speed() {
        let (h, c, t) = plane_frequencies(100.0, 0.01, 0.0);
        assert_eq!((h, c, t), (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "invalid plane parameters")]
    fn bad_plane_parameters_panic() {
        plane_frequencies(0.0, 0.01, 1.0);
    }
}
