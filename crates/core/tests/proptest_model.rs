//! Property-based tests for the analytical model.

// Compiled only with `--features slow-proptests`, which additionally
// requires re-adding the `proptest` dev-dependency (network access);
// the hermetic default build resolves zero external crates.
#![cfg(feature = "slow-proptests")]
use manet_model::{
    lid, ClusterSizeModel, DegreeModel, HeadContactConvention, NetworkParams, OverheadModel,
    RouteLinkModel,
};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = NetworkParams> {
    (10usize..2000, 200.0..5000.0f64, 0.02..0.45f64, 0.0..60.0f64).prop_map(
        |(n, side, r_frac, v)| {
            NetworkParams::new(n, side, r_frac * side, v).expect("constructed valid")
        },
    )
}

proptest! {
    /// Every frequency and bit rate is finite and non-negative across the
    /// whole parameter space, for every model-switch combination.
    #[test]
    fn breakdown_is_finite_and_nonnegative(params in params_strategy(),
                                           p in 1e-6..1.0f64,
                                           contact in any::<bool>(),
                                           links in any::<bool>(),
                                           sizes in any::<bool>()) {
        for degree_model in [DegreeModel::TorusExact, DegreeModel::BorderCorrected] {
            let mut m = OverheadModel::new(params, degree_model);
            if contact {
                m = m.with_contact_convention(HeadContactConvention::PerEndpoint);
            }
            if links {
                m = m.with_route_links(RouteLinkModel::MemberHeadOnly);
            }
            if sizes {
                m = m.with_size_model(ClusterSizeModel::Exponential);
            }
            let b = m.breakdown(p);
            for x in [b.f_hello, b.f_cluster, b.f_cluster_break, b.f_cluster_contact,
                      b.f_route, b.o_hello, b.o_cluster, b.o_route, b.o_total] {
                prop_assert!(x.is_finite() && x >= 0.0, "{x} out of range");
            }
            prop_assert!((b.o_total - b.o_hello - b.o_cluster - b.o_route).abs()
                <= 1e-9 * b.o_total.max(1.0));
        }
    }

    /// All frequencies are exactly linear in speed.
    #[test]
    fn frequencies_linear_in_speed(params in params_strategy(), p in 0.01..0.9f64,
                                   factor in 1.5..10.0f64) {
        let m1 = OverheadModel::new(params, DegreeModel::TorusExact);
        let faster = params.with_speed(params.speed() * factor).unwrap();
        let m2 = OverheadModel::new(faster, DegreeModel::TorusExact);
        for (a, b) in [
            (m1.f_hello(), m2.f_hello()),
            (m1.f_cluster(p), m2.f_cluster(p)),
            (m1.f_route(p), m2.f_route(p)),
        ] {
            prop_assert!((b - factor * a).abs() <= 1e-9 * b.max(1.0), "{b} != {factor}×{a}");
        }
    }

    /// The border-corrected degree never exceeds the torus degree and both
    /// are within [0, N−1].
    #[test]
    fn degree_models_are_ordered(params in params_strategy()) {
        let torus = DegreeModel::TorusExact.expected_degree(&params);
        let window = DegreeModel::BorderCorrected.expected_degree(&params);
        prop_assert!(window <= torus + 1e-9);
        prop_assert!(window >= 0.0);
        prop_assert!(torus <= params.node_count() as f64 - 1.0 + 1e-9);
    }

    /// Eqn 16's exact solution is always a fixed point, is bounded by its
    /// approximation's neighborhood, and decreases with degree.
    #[test]
    fn lid_exact_p_behaves(d1 in 0.5..500.0f64, d2 in 0.5..500.0f64) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let p_lo = lid::p_exact(hi).unwrap();
        let p_hi = lid::p_exact(lo).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9, "P must decrease with degree");
        for (d, p) in [(lo, p_hi), (hi, p_lo)] {
            prop_assert!((lid::eqn16_rhs(p, d) - p).abs() < 1e-7);
            prop_assert!(p > 0.0 && p <= 1.0);
            // Approximation within 10% for d ≥ 4 (Figure 4b regime).
            if d >= 4.0 {
                let approx = lid::p_approx(d);
                prop_assert!((p - approx).abs() / p < 0.10, "d={d}: {p} vs {approx}");
            }
        }
    }

    /// Cluster count estimates are monotone in `N` and anti-monotone in
    /// `r`, for both the paper's estimate and Caro–Wei.
    #[test]
    fn cluster_count_monotonicity(n in 20usize..900, r_frac in 0.05..0.35f64) {
        let side = 1000.0;
        let p1 = NetworkParams::new(n, side, r_frac * side, 1.0).unwrap();
        let p2 = NetworkParams::new(n * 2, side, r_frac * side, 1.0).unwrap();
        let p3 = NetworkParams::new(n, side, (r_frac * 1.3) * side, 1.0).unwrap();
        for model in [DegreeModel::TorusExact, DegreeModel::BorderCorrected] {
            prop_assert!(
                lid::expected_cluster_count(&p2, model)
                    > lid::expected_cluster_count(&p1, model)
            );
            prop_assert!(
                lid::expected_cluster_count(&p3, model)
                    < lid::expected_cluster_count(&p1, model)
            );
            let cw = lid::p_caro_wei(&p1, model);
            prop_assert!(cw > 0.0 && cw <= 1.0);
            prop_assert!(cw < lid::p_approx_for(&p1, model) + 1e-9);
        }
    }

    /// d-hop head-ratio heuristic nests: more hops, smaller P; one hop
    /// equals the torus Eqn 18 form.
    #[test]
    fn dhop_heuristic_nests(n in 20usize..900, r_frac in 0.03..0.2f64) {
        let params = NetworkParams::new(n, 1000.0, r_frac * 1000.0, 1.0).unwrap();
        let p1 = manet_model::dhop::p_approx(&params, 1);
        let p2 = manet_model::dhop::p_approx(&params, 2);
        let p3 = manet_model::dhop::p_approx(&params, 3);
        prop_assert!(p1 >= p2 && p2 >= p3);
        prop_assert!(p3 > 0.0);
    }
}
