//! Windowed time-series recording.
//!
//! The [`WindowedRecorder`] is a [`Subscriber`] that folds the event stream
//! into fixed-width *tumbling* windows over simulation time: event at time
//! `t` lands in window `floor(t / width)`, windows never overlap, and every
//! event lands in exactly one window — so per-class message totals summed
//! over all windows reconcile exactly with a run's final `Counters`.

use crate::event::{Event, EventKind, MsgClass, Subscriber};

/// Aggregates for one tumbling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Window index (`floor(time / width)`).
    pub index: u64,
    /// Messages sent per [`MsgClass`] (indexed by `MsgClass::index`).
    pub msgs: [u64; 8],
    /// Deliveries lost per [`MsgClass`].
    pub lost: [u64; 8],
    /// Links that formed.
    pub links_up: u64,
    /// Links that broke.
    pub links_down: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Node recoveries.
    pub recoveries: u64,
    /// Head self-promotions.
    pub head_elections: u64,
    /// Head resignations (head–head contact).
    pub head_resignations: u64,
    /// Member cluster switches.
    pub reaffiliations: u64,
    /// Members orphaned by a lost head (break, resignation, or crash).
    pub head_losses: u64,
    /// ROUTE broadcast rounds started.
    pub route_rounds: u64,
    /// Retransmissions scheduled into backoff.
    pub retx_scheduled: u64,
    /// Sum of cluster-head gauge samples (divide by `gauge_samples`).
    pub heads_sum: u64,
    /// Number of cluster-head gauge samples.
    pub gauge_samples: u64,
    /// Shard-interconnect batch entries lost (ghost rows + migrations).
    pub interconnect_lost: u64,
    /// Shard interconnect-stall onsets.
    pub shard_stalls: u64,
    /// Ghost entries dropped past the staleness bound.
    pub ghost_stale_drops: u64,
    /// Shard-link recoveries (resyncs after missed syncs).
    pub interconnect_recoveries: u64,
}

impl WindowStats {
    /// Messages sent for `class` in this window.
    pub fn msgs_of(&self, class: MsgClass) -> u64 {
        self.msgs[class.index()]
    }

    /// Mean cluster-head count over this window's gauge samples.
    pub fn mean_heads(&self) -> Option<f64> {
        if self.gauge_samples == 0 {
            None
        } else {
            Some(self.heads_sum as f64 / self.gauge_samples as f64)
        }
    }

    /// Link churn (formations + breaks) in this window.
    pub fn link_churn(&self) -> u64 {
        self.links_up + self.links_down
    }

    fn absorb(&mut self, kind: &EventKind) {
        match *kind {
            EventKind::LinkUp { .. } => self.links_up += 1,
            EventKind::LinkDown { .. } => self.links_down += 1,
            EventKind::NodeCrashed { .. } => self.crashes += 1,
            EventKind::NodeRecovered { .. } => self.recoveries += 1,
            EventKind::MsgSent { class, count } => self.msgs[class.index()] += count,
            EventKind::MsgLost { class, count } => self.lost[class.index()] += count,
            EventKind::HeadElected { .. } => self.head_elections += 1,
            EventKind::HeadResigned { .. } => self.head_resignations += 1,
            EventKind::MemberReaffiliated { .. } => self.reaffiliations += 1,
            EventKind::HeadLost { .. } => self.head_losses += 1,
            EventKind::RouteRoundStarted { rounds, .. } => self.route_rounds += rounds,
            EventKind::RetxScheduled { .. } => self.retx_scheduled += 1,
            EventKind::ClusterGauge { heads } => {
                self.heads_sum += heads;
                self.gauge_samples += 1;
            }
            EventKind::InterconnectLost { count, .. } => self.interconnect_lost += count,
            EventKind::InterconnectStalled { .. } => self.shard_stalls += 1,
            EventKind::GhostStale { dropped, .. } => self.ghost_stale_drops += dropped,
            EventKind::InterconnectRecovered { .. } => self.interconnect_recoveries += 1,
        }
    }
}

/// Folds an event stream into fixed-width tumbling windows over sim time.
#[derive(Debug, Clone)]
pub struct WindowedRecorder {
    width: f64,
    windows: Vec<WindowStats>,
    events_seen: u64,
}

impl WindowedRecorder {
    /// A recorder with the given window width (seconds of sim time).
    ///
    /// # Panics
    ///
    /// Panics unless `width` is finite and positive.
    pub fn new(width: f64) -> WindowedRecorder {
        assert!(
            width.is_finite() && width > 0.0,
            "window width must be finite and positive, got {width}"
        );
        WindowedRecorder {
            width,
            windows: Vec::new(),
            events_seen: 0,
        }
    }

    /// Window width in sim seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Total events absorbed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// All windows, dense from index 0 through the latest event's window.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Mutable window for the given index, growing the dense vec as needed.
    fn window_mut(&mut self, index: u64) -> &mut WindowStats {
        let idx = index as usize;
        while self.windows.len() <= idx {
            let next = self.windows.len() as u64;
            self.windows.push(WindowStats {
                index: next,
                ..WindowStats::default()
            });
        }
        &mut self.windows[idx]
    }

    /// Absorbs one event (also the [`Subscriber`] impl's body).
    pub fn absorb(&mut self, event: &Event) {
        debug_assert!(
            event.time.is_finite() && event.time >= 0.0,
            "event time must be finite and non-negative, got {}",
            event.time
        );
        let index = (event.time / self.width).floor() as u64;
        self.events_seen += 1;
        self.window_mut(index).absorb(&event.kind);
    }

    /// Total messages sent for `class` across all windows.
    pub fn total_msgs(&self, class: MsgClass) -> u64 {
        self.windows.iter().map(|w| w.msgs_of(class)).sum()
    }

    /// Total lost deliveries for `class` across all windows.
    pub fn total_lost(&self, class: MsgClass) -> u64 {
        self.windows.iter().map(|w| w.lost[class.index()]).sum()
    }

    /// Per-window message rate series for `class` (messages per sim second).
    pub fn rate_series(&self, class: MsgClass) -> Vec<f64> {
        self.windows
            .iter()
            .map(|w| w.msgs_of(class) as f64 / self.width)
            .collect()
    }

    /// Per-window link-churn series (formations + breaks per sim second).
    pub fn link_churn_series(&self) -> Vec<f64> {
        self.windows
            .iter()
            .map(|w| w.link_churn() as f64 / self.width)
            .collect()
    }

    /// Per-window mean cluster-head count (windows without gauge samples
    /// carry `None`).
    pub fn cluster_count_series(&self) -> Vec<Option<f64>> {
        self.windows.iter().map(|w| w.mean_heads()).collect()
    }

    /// Per-window head-change series (elections + resignations).
    pub fn head_change_series(&self) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.head_elections + w.head_resignations)
            .collect()
    }

    /// Steady-state rate estimate for `class`: the mean per-window rate over
    /// the last half of the windows (`None` with fewer than two windows).
    pub fn steady_state_rate(&self, class: MsgClass) -> Option<f64> {
        let rates = self.rate_series(class);
        if rates.len() < 2 {
            return None;
        }
        let tail = &rates[rates.len() / 2..];
        Some(tail.iter().sum::<f64>() / tail.len() as f64)
    }

    /// Warmup detection: index of the first window whose `class` rate is
    /// within `tolerance` (relative) of the steady-state rate. With a zero
    /// steady state the first window at exactly zero qualifies. `None` with
    /// fewer than two windows or when no window qualifies.
    pub fn warmup_index(&self, class: MsgClass, tolerance: f64) -> Option<usize> {
        let steady = self.steady_state_rate(class)?;
        let rates = self.rate_series(class);
        if steady == 0.0 {
            return rates.iter().position(|&r| r == 0.0);
        }
        rates
            .iter()
            .position(|&r| (r - steady).abs() <= tolerance * steady)
    }

    /// Sim time at which warmup ends: the *start* of the first steady
    /// window for `class` (see [`WindowedRecorder::warmup_index`]).
    pub fn warmup_time(&self, class: MsgClass, tolerance: f64) -> Option<f64> {
        self.warmup_index(class, tolerance)
            .map(|i| i as f64 * self.width)
    }
}

impl Subscriber for WindowedRecorder {
    fn event(&mut self, event: &Event) {
        self.absorb(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;

    fn ev(time: f64, kind: EventKind) -> Event {
        Event {
            time,
            layer: Layer::Sim,
            kind,
            cause: None,
        }
    }

    #[test]
    fn events_land_in_tumbling_windows() {
        let mut rec = WindowedRecorder::new(5.0);
        rec.absorb(&ev(
            0.0,
            EventKind::MsgSent {
                class: MsgClass::Hello,
                count: 4,
            },
        ));
        // 4.999… is still window 0; 5.0 opens window 1.
        rec.absorb(&ev(
            4.999,
            EventKind::MsgSent {
                class: MsgClass::Hello,
                count: 1,
            },
        ));
        rec.absorb(&ev(
            5.0,
            EventKind::MsgSent {
                class: MsgClass::Hello,
                count: 2,
            },
        ));
        rec.absorb(&ev(12.5, EventKind::LinkUp { a: 1, b: 2 }));
        assert_eq!(rec.windows().len(), 3);
        assert_eq!(rec.windows()[0].msgs_of(MsgClass::Hello), 5);
        assert_eq!(rec.windows()[1].msgs_of(MsgClass::Hello), 2);
        assert_eq!(rec.windows()[2].links_up, 1);
        assert_eq!(rec.total_msgs(MsgClass::Hello), 7);
        assert_eq!(rec.events_seen(), 4);
        // Dense indices even when a window saw no events.
        assert_eq!(rec.windows()[2].index, 2);
        assert_eq!(rec.rate_series(MsgClass::Hello), vec![1.0, 0.4, 0.0]);
    }

    #[test]
    fn gauge_and_change_series() {
        let mut rec = WindowedRecorder::new(2.0);
        rec.absorb(&ev(0.5, EventKind::ClusterGauge { heads: 10 }));
        rec.absorb(&ev(1.5, EventKind::ClusterGauge { heads: 12 }));
        rec.absorb(&ev(2.5, EventKind::HeadElected { node: 3 }));
        rec.absorb(&ev(
            3.0,
            EventKind::HeadResigned {
                node: 4,
                new_head: 3,
            },
        ));
        rec.absorb(&ev(
            3.5,
            EventKind::MemberReaffiliated { member: 9, head: 3 },
        ));
        rec.absorb(&ev(3.5, EventKind::HeadLost { member: 9, head: 4 }));
        assert_eq!(rec.cluster_count_series(), vec![Some(11.0), None]);
        assert_eq!(rec.head_change_series(), vec![0, 2]);
        assert_eq!(rec.windows()[1].reaffiliations, 1);
        assert_eq!(rec.windows()[1].head_losses, 1);
    }

    #[test]
    fn warmup_detection_finds_first_steady_window() {
        let mut rec = WindowedRecorder::new(1.0);
        // Rates per window: 40, 20, 11, 10, 10, 10 — steady (last half
        // mean) = 10, so windows within 10% start at index 2 (11 ≤ 11.0).
        for (i, count) in [40u64, 20, 11, 10, 10, 10].into_iter().enumerate() {
            rec.absorb(&ev(
                i as f64 + 0.5,
                EventKind::MsgSent {
                    class: MsgClass::Cluster,
                    count,
                },
            ));
        }
        assert_eq!(rec.steady_state_rate(MsgClass::Cluster), Some(10.0));
        assert_eq!(rec.warmup_index(MsgClass::Cluster, 0.10), Some(2));
        assert_eq!(rec.warmup_time(MsgClass::Cluster, 0.10), Some(2.0));
        // A class that never fires: steady state 0, first window qualifies.
        assert_eq!(rec.warmup_index(MsgClass::Repair, 0.10), Some(0));
    }

    #[test]
    fn lost_and_retx_accounting() {
        let mut rec = WindowedRecorder::new(10.0);
        rec.absorb(&ev(
            1.0,
            EventKind::MsgLost {
                class: MsgClass::Hello,
                count: 3,
            },
        ));
        rec.absorb(&ev(
            2.0,
            EventKind::RetxScheduled {
                node: 5,
                wait_ticks: 4,
            },
        ));
        rec.absorb(&ev(3.0, EventKind::NodeCrashed { node: 5 }));
        rec.absorb(&ev(4.0, EventKind::NodeRecovered { node: 5 }));
        rec.absorb(&ev(
            5.0,
            EventKind::RouteRoundStarted {
                head: 1,
                size: 6,
                rounds: 2,
            },
        ));
        rec.absorb(&ev(
            6.0,
            EventKind::InterconnectLost {
                src: 0,
                dst: 1,
                count: 4,
            },
        ));
        rec.absorb(&ev(
            6.5,
            EventKind::InterconnectStalled { shard: 1, ticks: 2 },
        ));
        rec.absorb(&ev(
            7.0,
            EventKind::GhostStale {
                src: 1,
                dst: 0,
                staleness: 5,
                dropped: 6,
            },
        ));
        rec.absorb(&ev(
            7.5,
            EventKind::InterconnectRecovered {
                src: 0,
                dst: 1,
                resync: 9,
            },
        ));
        let w = rec.windows()[0];
        assert_eq!(w.lost[MsgClass::Hello.index()], 3);
        assert_eq!(w.interconnect_lost, 4);
        assert_eq!(w.shard_stalls, 1);
        assert_eq!(w.ghost_stale_drops, 6);
        assert_eq!(w.interconnect_recoveries, 1);
        assert_eq!(rec.total_lost(MsgClass::Hello), 3);
        assert_eq!(w.retx_scheduled, 1);
        assert_eq!(w.crashes, 1);
        assert_eq!(w.recoveries, 1);
        assert_eq!(w.route_rounds, 2);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_width_rejected() {
        WindowedRecorder::new(0.0);
    }
}
