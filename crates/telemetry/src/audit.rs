//! Runtime invariant monitors: structured, windowed auditing of the
//! cluster structure and of trace/counter consistency.
//!
//! The cluster engine's `check_invariants` panics (debug builds) the
//! instant P1 one-hop head separation is violated — correct for unit
//! tests, useless for auditing live runs where a just-detected head–head
//! contact legitimately persists until the loser's resignation commits
//! (possibly deferred by the fault plane's backoff). The [`AuditMonitor`]
//! instead evaluates invariants *with grace windows* over periodic
//! [`AuditSample`]s taken by the run loop, and reports structured
//! [`AuditViolation`]s rather than panicking:
//!
//! 1. **Head separation** — no two adjacent heads persist beyond the
//!    contact-resolution grace window.
//! 2. **Live head** — no member points at a missing/dead head beyond the
//!    grace window.
//! 3. **Repair drains** — the repair queue never stays non-empty longer
//!    than `drain_timeout`.
//! 4. **Reconciliation** — per-class `MsgSent` totals in the trace equal
//!    the run's `Counters` ([`AuditMonitor::reconcile`], exact).

use crate::event::{Event, EventKind, MsgClass, NodeId, Subscriber};

/// Grace windows for the audit invariants, in sim seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// How long an adjacent-head pair or headless member may persist
    /// (covers detection-to-resolution latency of one maintenance pass).
    pub grace: f64,
    /// How long the repair queue may stay continuously non-empty.
    pub drain_timeout: f64,
}

impl Default for AuditConfig {
    /// One second of grace (several 0.25 s maintenance ticks), ten for
    /// backoff-governed repair drains.
    fn default() -> Self {
        AuditConfig {
            grace: 1.0,
            drain_timeout: 10.0,
        }
    }
}

/// One periodic structural observation, computed by the run loop (the
/// telemetry crate sits below the cluster engine and cannot inspect it
/// directly — the loop extracts violations via `Clustering::violations`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditSample {
    /// Sample time, sim seconds.
    pub time: f64,
    /// Currently adjacent head pairs (`a < b`).
    pub adjacent_head_pairs: Vec<(NodeId, NodeId)>,
    /// Members whose recorded head is currently not a live head.
    pub headless_members: Vec<NodeId>,
    /// Nodes currently queued for repair.
    pub repair_pending: u64,
}

/// A structured invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// Two adjacent heads persisted past the grace window.
    AdjacentHeadsPersisted {
        /// Lower head.
        a: NodeId,
        /// Higher head.
        b: NodeId,
        /// When the pair was first observed.
        since: f64,
        /// When the violation was flagged.
        observed: f64,
    },
    /// A member without a live head persisted past the grace window.
    HeadlessMemberPersisted {
        /// The stuck member.
        member: NodeId,
        /// When it was first observed headless.
        since: f64,
        /// When the violation was flagged.
        observed: f64,
    },
    /// The repair queue stayed non-empty past the drain timeout.
    RepairQueueStuck {
        /// When the queue became non-empty.
        since: f64,
        /// When the violation was flagged.
        observed: f64,
        /// Queue length at flag time.
        pending: u64,
    },
    /// Trace and counters disagree on a class's message total.
    CounterMismatch {
        /// The message class.
        class: MsgClass,
        /// Total from the run's `Counters`.
        counted: u64,
        /// Total summed from traced `MsgSent` events.
        traced: u64,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::AdjacentHeadsPersisted {
                a,
                b,
                since,
                observed,
            } => write!(
                f,
                "heads {a} and {b} adjacent since t={since:.2}, unresolved at t={observed:.2}"
            ),
            AuditViolation::HeadlessMemberPersisted {
                member,
                since,
                observed,
            } => write!(
                f,
                "member {member} headless since t={since:.2}, unresolved at t={observed:.2}"
            ),
            AuditViolation::RepairQueueStuck {
                since,
                observed,
                pending,
            } => write!(
                f,
                "repair queue non-empty since t={since:.2} ({pending} pending at t={observed:.2})"
            ),
            AuditViolation::CounterMismatch {
                class,
                counted,
                traced,
            } => write!(
                f,
                "{} messages: counters say {counted}, trace says {traced}",
                class.name()
            ),
        }
    }
}

/// End-of-run audit summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// All violations, in detection order.
    pub violations: Vec<AuditViolation>,
    /// Structural samples audited.
    pub samples: u64,
    /// Trace events observed.
    pub events: u64,
}

impl AuditReport {
    /// Whether the run passed every monitored invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The streaming monitor: feed it every trace event (it is a
/// [`Subscriber`]) plus one [`AuditSample`] per audit window, then call
/// [`AuditMonitor::reconcile`] per class and [`AuditMonitor::finish`].
#[derive(Debug, Clone)]
pub struct AuditMonitor {
    config: AuditConfig,
    pair_since: Vec<((NodeId, NodeId), f64)>,
    headless_since: Vec<(NodeId, f64)>,
    repair_since: Option<f64>,
    msgs: [u64; 8],
    violations: Vec<AuditViolation>,
    samples: u64,
    events: u64,
}

impl AuditMonitor {
    /// A monitor with the given grace windows.
    pub fn new(config: AuditConfig) -> Self {
        AuditMonitor {
            config,
            pair_since: Vec::new(),
            headless_since: Vec::new(),
            repair_since: None,
            msgs: [0; 8],
            violations: Vec::new(),
            samples: 0,
            events: 0,
        }
    }

    /// The configured grace windows.
    pub fn config(&self) -> AuditConfig {
        self.config
    }

    /// Audits one structural sample against the persistence invariants.
    /// A condition that disappears re-arms its grace window; one that is
    /// flagged re-arms too (so a permanently stuck pair is re-reported
    /// once per grace window, not once per sample).
    pub fn sample(&mut self, sample: &AuditSample) {
        self.samples += 1;
        let now = sample.time;
        let grace = self.config.grace;

        let mut kept = Vec::with_capacity(sample.adjacent_head_pairs.len());
        for &pair in &sample.adjacent_head_pairs {
            let since = self
                .pair_since
                .iter()
                .find(|(p, _)| *p == pair)
                .map(|&(_, t)| t)
                .unwrap_or(now);
            if now - since > grace {
                self.violations
                    .push(AuditViolation::AdjacentHeadsPersisted {
                        a: pair.0,
                        b: pair.1,
                        since,
                        observed: now,
                    });
                kept.push((pair, now));
            } else {
                kept.push((pair, since));
            }
        }
        self.pair_since = kept;

        let mut kept = Vec::with_capacity(sample.headless_members.len());
        for &member in &sample.headless_members {
            let since = self
                .headless_since
                .iter()
                .find(|(m, _)| *m == member)
                .map(|&(_, t)| t)
                .unwrap_or(now);
            if now - since > grace {
                self.violations
                    .push(AuditViolation::HeadlessMemberPersisted {
                        member,
                        since,
                        observed: now,
                    });
                kept.push((member, now));
            } else {
                kept.push((member, since));
            }
        }
        self.headless_since = kept;

        if sample.repair_pending == 0 {
            self.repair_since = None;
        } else {
            let since = *self.repair_since.get_or_insert(now);
            if now - since > self.config.drain_timeout {
                self.violations.push(AuditViolation::RepairQueueStuck {
                    since,
                    observed: now,
                    pending: sample.repair_pending,
                });
                self.repair_since = Some(now);
            }
        }
    }

    /// Traced `MsgSent` total for `class` so far.
    pub fn traced_msgs(&self, class: MsgClass) -> u64 {
        self.msgs[class.index()]
    }

    /// Violations recorded so far — readable mid-run, unlike
    /// [`AuditMonitor::finish`]. The flight-recorder trigger polls this
    /// each tick to dump the event ring on the first violation.
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64
    }

    /// Checks the trace's `MsgSent` total for `class` against the run's
    /// counter value; records a [`AuditViolation::CounterMismatch`] and
    /// returns `false` on disagreement.
    pub fn reconcile(&mut self, class: MsgClass, counted: u64) -> bool {
        let traced = self.msgs[class.index()];
        if traced == counted {
            true
        } else {
            self.violations.push(AuditViolation::CounterMismatch {
                class,
                counted,
                traced,
            });
            false
        }
    }

    /// Consumes the monitor and returns the report.
    pub fn finish(self) -> AuditReport {
        AuditReport {
            violations: self.violations,
            samples: self.samples,
            events: self.events,
        }
    }
}

impl Subscriber for AuditMonitor {
    fn event(&mut self, event: &Event) {
        self.events += 1;
        if let EventKind::MsgSent { class, count } = event.kind {
            self.msgs[class.index()] += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;

    fn sample(
        time: f64,
        pairs: &[(NodeId, NodeId)],
        headless: &[NodeId],
        pending: u64,
    ) -> AuditSample {
        AuditSample {
            time,
            adjacent_head_pairs: pairs.to_vec(),
            headless_members: headless.to_vec(),
            repair_pending: pending,
        }
    }

    #[test]
    fn transient_contacts_within_grace_are_tolerated() {
        let mut m = AuditMonitor::new(AuditConfig {
            grace: 1.0,
            drain_timeout: 5.0,
        });
        m.sample(&sample(0.0, &[(2, 5)], &[7], 0));
        // Resolved by the next sample: no violation.
        m.sample(&sample(0.5, &[], &[], 0));
        // Reappears later: grace re-arms.
        m.sample(&sample(3.0, &[(2, 5)], &[], 0));
        m.sample(&sample(3.9, &[(2, 5)], &[], 0));
        let report = m.finish();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.samples, 4);
    }

    #[test]
    fn persistent_violations_are_flagged_once_per_grace_window() {
        let mut m = AuditMonitor::new(AuditConfig {
            grace: 1.0,
            drain_timeout: 2.0,
        });
        for k in 0..=8 {
            m.sample(&sample(k as f64 * 0.5, &[(1, 3)], &[9], 1));
        }
        let report = m.finish();
        let pairs = report
            .violations
            .iter()
            .filter(|v| matches!(v, AuditViolation::AdjacentHeadsPersisted { a: 1, b: 3, .. }))
            .count();
        let headless = report
            .violations
            .iter()
            .filter(|v| matches!(v, AuditViolation::HeadlessMemberPersisted { member: 9, .. }))
            .count();
        let stuck = report
            .violations
            .iter()
            .filter(|v| matches!(v, AuditViolation::RepairQueueStuck { .. }))
            .count();
        // 4 s of persistence with a 1 s grace: flagged at 1.5, 3.0 (and not
        // again before 4.0 runs out) — re-armed, not per-sample spam.
        assert_eq!(pairs, 2, "{:?}", report.violations);
        assert_eq!(headless, 2);
        assert_eq!(stuck, 1, "drain timeout 2 s flags once at 2.5");
        assert!(!report.is_clean());
    }

    #[test]
    fn repair_queue_drain_resets_the_timeout() {
        let mut m = AuditMonitor::new(AuditConfig::default());
        m.sample(&sample(0.0, &[], &[], 3));
        m.sample(&sample(9.0, &[], &[], 1));
        m.sample(&sample(9.5, &[], &[], 0));
        m.sample(&sample(12.0, &[], &[], 2));
        m.sample(&sample(20.0, &[], &[], 0));
        assert!(m.finish().is_clean());
    }

    #[test]
    fn reconcile_flags_mismatches_and_passes_exact_totals() {
        let mut m = AuditMonitor::new(AuditConfig::default());
        let ev = |count| Event {
            time: 1.0,
            layer: Layer::Sim,
            kind: EventKind::MsgSent {
                class: MsgClass::Cluster,
                count,
            },
            cause: None,
        };
        m.event(&ev(3));
        m.event(&ev(4));
        assert_eq!(m.traced_msgs(MsgClass::Cluster), 7);
        assert!(m.reconcile(MsgClass::Cluster, 7));
        assert!(!m.reconcile(MsgClass::Cluster, 8));
        assert!(m.reconcile(MsgClass::Hello, 0));
        let report = m.finish();
        assert_eq!(report.events, 2);
        assert_eq!(
            report.violations,
            vec![AuditViolation::CounterMismatch {
                class: MsgClass::Cluster,
                counted: 8,
                traced: 7,
            }]
        );
        let text = report.violations[0].to_string();
        assert!(text.contains("CLUSTER"), "{text}");
    }
}
