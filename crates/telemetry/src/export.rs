//! Prometheus text-exposition snapshot exporter.
//!
//! [`prometheus_text`] renders a [`WindowedRecorder`] (and optionally an
//! [`AttributionLedger`]) as Prometheus text exposition format 0.0.4 —
//! `# HELP` / `# TYPE` comment pairs followed by `name{labels} value`
//! samples. Experiments write the snapshot at end of run via
//! `--metrics-out <path>`, so any scrape-file collector (e.g. the node
//! exporter's textfile module) can ingest a simulation's totals without
//! parsing the JSONL trace.

use crate::attribution::AttributionLedger;
use crate::cause::RootCause;
use crate::event::MsgClass;
use crate::window::WindowedRecorder;
use std::fmt::Write;

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders a snapshot of `recorder` (plus `ledger`, when attribution ran)
/// in Prometheus text exposition format.
pub fn prometheus_text(recorder: &WindowedRecorder, ledger: Option<&AttributionLedger>) -> String {
    let mut out = String::new();

    header(
        &mut out,
        "manet_msgs_total",
        "Control messages sent, by class.",
        "counter",
    );
    for class in MsgClass::ALL {
        let _ = writeln!(
            out,
            "manet_msgs_total{{class=\"{}\"}} {}",
            class.name(),
            recorder.total_msgs(class)
        );
    }

    header(
        &mut out,
        "manet_msgs_lost_total",
        "Deliveries dropped by the fault plane, by class.",
        "counter",
    );
    for class in MsgClass::ALL {
        let _ = writeln!(
            out,
            "manet_msgs_lost_total{{class=\"{}\"}} {}",
            class.name(),
            recorder.total_lost(class)
        );
    }

    let mut links_up = 0u64;
    let mut links_down = 0u64;
    let mut crashes = 0u64;
    let mut recoveries = 0u64;
    let mut elections = 0u64;
    let mut resignations = 0u64;
    let mut reaffiliations = 0u64;
    let mut head_losses = 0u64;
    let mut route_rounds = 0u64;
    let mut retx = 0u64;
    for w in recorder.windows() {
        links_up += w.links_up;
        links_down += w.links_down;
        crashes += w.crashes;
        recoveries += w.recoveries;
        elections += w.head_elections;
        resignations += w.head_resignations;
        reaffiliations += w.reaffiliations;
        head_losses += w.head_losses;
        route_rounds += w.route_rounds;
        retx += w.retx_scheduled;
    }
    for (name, help, value) in [
        ("manet_links_up_total", "Links formed.", links_up),
        ("manet_links_down_total", "Links broken.", links_down),
        ("manet_node_crashes_total", "Node crashes.", crashes),
        (
            "manet_node_recoveries_total",
            "Node recoveries.",
            recoveries,
        ),
        (
            "manet_head_elections_total",
            "Head self-promotions.",
            elections,
        ),
        (
            "manet_head_resignations_total",
            "Head resignations after head-head contact.",
            resignations,
        ),
        (
            "manet_reaffiliations_total",
            "Member cluster switches.",
            reaffiliations,
        ),
        (
            "manet_head_losses_total",
            "Members orphaned by a lost head.",
            head_losses,
        ),
        (
            "manet_route_rounds_total",
            "ROUTE broadcast rounds started.",
            route_rounds,
        ),
        (
            "manet_retx_scheduled_total",
            "Retransmissions scheduled into backoff.",
            retx,
        ),
    ] {
        header(&mut out, name, help, "counter");
        let _ = writeln!(out, "{name} {value}");
    }

    header(
        &mut out,
        "manet_cluster_heads",
        "Mean cluster-head count over the last gauged window.",
        "gauge",
    );
    let heads = recorder
        .windows()
        .iter()
        .rev()
        .find_map(|w| w.mean_heads())
        .unwrap_or(0.0);
    let _ = writeln!(out, "manet_cluster_heads {heads}");

    header(
        &mut out,
        "manet_trace_events_total",
        "Telemetry events recorded.",
        "counter",
    );
    let _ = writeln!(out, "manet_trace_events_total {}", recorder.events_seen());

    if let Some(ledger) = ledger {
        header(
            &mut out,
            "manet_cause_events_total",
            "Root events recorded, by root cause (weighted anchors).",
            "counter",
        );
        for root in RootCause::ALL {
            let _ = writeln!(
                out,
                "manet_cause_events_total{{root=\"{}\"}} {}",
                root.name(),
                ledger.root_weight_total(root)
            );
        }

        header(
            &mut out,
            "manet_cause_msgs_total",
            "Attributed control messages, by root cause and class.",
            "counter",
        );
        for root in RootCause::ALL {
            for class in MsgClass::ALL {
                let msgs = ledger.msgs(root, class);
                if msgs > 0 {
                    let _ = writeln!(
                        out,
                        "manet_cause_msgs_total{{root=\"{}\",class=\"{}\"}} {msgs}",
                        root.name(),
                        class.name()
                    );
                }
            }
        }

        header(
            &mut out,
            "manet_cause_unit_cost",
            "Measured messages per root event, by root cause and class.",
            "gauge",
        );
        for root in RootCause::ALL {
            for class in MsgClass::ALL {
                if let Some(cost) = ledger.unit_cost(root, class) {
                    if cost > 0.0 {
                        let _ = writeln!(
                            out,
                            "manet_cause_unit_cost{{root=\"{}\",class=\"{}\"}} {cost}",
                            root.name(),
                            class.name()
                        );
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause::{Cause, CauseId};
    use crate::event::{Event, EventKind, Layer};

    #[test]
    fn snapshot_contains_well_formed_samples() {
        let mut rec = WindowedRecorder::new(5.0);
        let mut ledger = AttributionLedger::new();
        let gen = Cause {
            id: CauseId(0),
            root: RootCause::LinkGen,
        };
        for e in [
            Event {
                time: 1.0,
                layer: Layer::Sim,
                kind: EventKind::LinkUp { a: 0, b: 1 },
                cause: Some(gen),
            },
            Event {
                time: 1.0,
                layer: Layer::Sim,
                kind: EventKind::MsgSent {
                    class: MsgClass::Hello,
                    count: 2,
                },
                cause: Some(gen),
            },
            Event {
                time: 2.0,
                layer: Layer::Sim,
                kind: EventKind::ClusterGauge { heads: 7 },
                cause: None,
            },
        ] {
            rec.absorb(&e);
            ledger.absorb(&e);
        }

        let text = prometheus_text(&rec, Some(&ledger));
        assert!(text.contains("# TYPE manet_msgs_total counter"));
        assert!(text.contains("manet_msgs_total{class=\"HELLO\"} 2"));
        assert!(text.contains("manet_links_up_total 1"));
        assert!(text.contains("manet_cluster_heads 7"));
        assert!(text.contains("manet_trace_events_total 3"));
        assert!(text.contains("manet_cause_events_total{root=\"link_gen\"} 1"));
        assert!(text.contains("manet_cause_msgs_total{root=\"link_gen\",class=\"HELLO\"} 2"));
        assert!(text.contains("manet_cause_unit_cost{root=\"link_gen\",class=\"HELLO\"} 2"));
        // Every non-comment line is "name{labels} value" or "name value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample shape");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn exporter_without_ledger_omits_cause_families() {
        let rec = WindowedRecorder::new(5.0);
        let text = prometheus_text(&rec, None);
        assert!(text.contains("manet_msgs_total{class=\"CLUSTER\"} 0"));
        assert!(!text.contains("manet_cause_"));
    }
}
