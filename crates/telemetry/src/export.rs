//! Prometheus text-exposition snapshot exporter.
//!
//! [`prometheus_text`] renders a [`WindowedRecorder`] (and optionally an
//! [`AttributionLedger`]) as Prometheus text exposition format 0.0.4 —
//! `# HELP` / `# TYPE` comment pairs followed by `name{labels} value`
//! samples. Experiments write the snapshot at end of run via
//! `--metrics-out <path>`, so any scrape-file collector (e.g. the node
//! exporter's textfile module) can ingest a simulation's totals without
//! parsing the JSONL trace.

use crate::attribution::AttributionLedger;
use crate::cause::RootCause;
use crate::event::MsgClass;
use crate::span::{SpanLabel, SpanRecorder};
use crate::window::WindowedRecorder;
use std::fmt::Write;

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Escapes a label value per the text-exposition grammar: backslash,
/// double quote, and newline must be backslash-escaped inside the quoted
/// value. Today's label values are all static identifiers, but every
/// interpolation site routes through here so a future free-form label
/// (run labels, file paths) cannot corrupt the format — pinned by the
/// conformance test.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Per-shard totals for the exporter. The telemetry crate sits below
/// `manet-shard` in the dependency graph, so the shard plane fills this
/// neutral mirror of its `ShardStats` rather than handing us the struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardGaugeRow {
    /// Row-major shard index.
    pub shard: u16,
    /// Nodes owned at snapshot time.
    pub owned: u64,
    /// Ghost rows held at snapshot time.
    pub ghosts: u64,
    /// Nodes that migrated in on the last tick.
    pub migrations_in: u64,
    /// Nodes that migrated out on the last tick.
    pub migrations_out: u64,
    /// Cross-shard links observed on the last tick.
    pub boundary_links: u64,
}

/// A point-in-time view of the shard plane and its interconnect, rendered
/// by [`prometheus_text_with_shards`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// One row per shard, in row-major order.
    pub shards: Vec<ShardGaugeRow>,
    /// Directed shard links currently healthy.
    pub links_up: u64,
    /// Directed shard links with recent failures (below the down threshold).
    pub links_degraded: u64,
    /// Directed shard links past the consecutive-failure threshold.
    pub links_down: u64,
    /// Worst ghost-view age across all directed links, in ticks.
    pub max_ghost_staleness: u64,
}

/// Renders a snapshot of `recorder` (plus `ledger`, when attribution ran)
/// in Prometheus text exposition format.
pub fn prometheus_text(recorder: &WindowedRecorder, ledger: Option<&AttributionLedger>) -> String {
    prometheus_text_with_shards(recorder, ledger, None)
}

/// [`prometheus_text`] plus per-shard and interconnect-health gauges when a
/// [`ShardSnapshot`] is supplied (sharded runs only).
pub fn prometheus_text_with_shards(
    recorder: &WindowedRecorder,
    ledger: Option<&AttributionLedger>,
    shard: Option<&ShardSnapshot>,
) -> String {
    prometheus_text_full(recorder, ledger, shard, None)
}

/// The maximal exporter: counters and gauges from the recorder/ledger,
/// shard-plane gauges, and — when a [`SpanRecorder`] is supplied — the
/// `manet_stage_seconds{phase=,shard=}` histogram family built from the
/// span plane's per-(stage, shard) log2 histograms. The `shard` label is
/// `"all"` for main-thread spans and the shard index for worker-side
/// spans; buckets are cumulative `le` edges per the exposition format.
pub fn prometheus_text_full(
    recorder: &WindowedRecorder,
    ledger: Option<&AttributionLedger>,
    shard: Option<&ShardSnapshot>,
    spans: Option<&SpanRecorder>,
) -> String {
    let mut out = String::new();

    header(
        &mut out,
        "manet_msgs_total",
        "Control messages sent, by class.",
        "counter",
    );
    for class in MsgClass::ALL {
        let _ = writeln!(
            out,
            "manet_msgs_total{{class=\"{}\"}} {}",
            escape_label_value(class.name()),
            recorder.total_msgs(class)
        );
    }

    header(
        &mut out,
        "manet_msgs_lost_total",
        "Deliveries dropped by the fault plane, by class.",
        "counter",
    );
    for class in MsgClass::ALL {
        let _ = writeln!(
            out,
            "manet_msgs_lost_total{{class=\"{}\"}} {}",
            escape_label_value(class.name()),
            recorder.total_lost(class)
        );
    }

    let mut links_up = 0u64;
    let mut links_down = 0u64;
    let mut crashes = 0u64;
    let mut recoveries = 0u64;
    let mut elections = 0u64;
    let mut resignations = 0u64;
    let mut reaffiliations = 0u64;
    let mut head_losses = 0u64;
    let mut route_rounds = 0u64;
    let mut retx = 0u64;
    let mut ic_lost = 0u64;
    let mut stalls = 0u64;
    let mut stale_drops = 0u64;
    let mut ic_recoveries = 0u64;
    for w in recorder.windows() {
        links_up += w.links_up;
        links_down += w.links_down;
        crashes += w.crashes;
        recoveries += w.recoveries;
        elections += w.head_elections;
        resignations += w.head_resignations;
        reaffiliations += w.reaffiliations;
        head_losses += w.head_losses;
        route_rounds += w.route_rounds;
        retx += w.retx_scheduled;
        ic_lost += w.interconnect_lost;
        stalls += w.shard_stalls;
        stale_drops += w.ghost_stale_drops;
        ic_recoveries += w.interconnect_recoveries;
    }
    for (name, help, value) in [
        ("manet_links_up_total", "Links formed.", links_up),
        ("manet_links_down_total", "Links broken.", links_down),
        ("manet_node_crashes_total", "Node crashes.", crashes),
        (
            "manet_node_recoveries_total",
            "Node recoveries.",
            recoveries,
        ),
        (
            "manet_head_elections_total",
            "Head self-promotions.",
            elections,
        ),
        (
            "manet_head_resignations_total",
            "Head resignations after head-head contact.",
            resignations,
        ),
        (
            "manet_reaffiliations_total",
            "Member cluster switches.",
            reaffiliations,
        ),
        (
            "manet_head_losses_total",
            "Members orphaned by a lost head.",
            head_losses,
        ),
        (
            "manet_route_rounds_total",
            "ROUTE broadcast rounds started.",
            route_rounds,
        ),
        (
            "manet_retx_scheduled_total",
            "Retransmissions scheduled into backoff.",
            retx,
        ),
        (
            "manet_interconnect_lost_total",
            "Shard-interconnect batch entries lost.",
            ic_lost,
        ),
        (
            "manet_shard_stalls_total",
            "Shard interconnect-stall onsets.",
            stalls,
        ),
        (
            "manet_ghost_stale_drops_total",
            "Ghost entries dropped past the staleness bound.",
            stale_drops,
        ),
        (
            "manet_interconnect_recoveries_total",
            "Shard-link resyncs after missed syncs.",
            ic_recoveries,
        ),
    ] {
        header(&mut out, name, help, "counter");
        let _ = writeln!(out, "{name} {value}");
    }

    header(
        &mut out,
        "manet_cluster_heads",
        "Mean cluster-head count over the last gauged window.",
        "gauge",
    );
    let heads = recorder
        .windows()
        .iter()
        .rev()
        .find_map(|w| w.mean_heads())
        .unwrap_or(0.0);
    let _ = writeln!(out, "manet_cluster_heads {heads}");

    header(
        &mut out,
        "manet_trace_events_total",
        "Telemetry events recorded.",
        "counter",
    );
    let _ = writeln!(out, "manet_trace_events_total {}", recorder.events_seen());

    if let Some(snap) = shard {
        for (name, help, field) in [
            (
                "manet_shard_owned",
                "Nodes owned per shard.",
                (|r: &ShardGaugeRow| r.owned) as fn(&ShardGaugeRow) -> u64,
            ),
            (
                "manet_shard_ghosts",
                "Ghost rows held per shard.",
                |r: &ShardGaugeRow| r.ghosts,
            ),
            (
                "manet_shard_migrations_in",
                "Nodes migrated in per shard on the last tick.",
                |r: &ShardGaugeRow| r.migrations_in,
            ),
            (
                "manet_shard_migrations_out",
                "Nodes migrated out per shard on the last tick.",
                |r: &ShardGaugeRow| r.migrations_out,
            ),
            (
                "manet_shard_boundary_links",
                "Cross-shard links per shard on the last tick.",
                |r: &ShardGaugeRow| r.boundary_links,
            ),
        ] {
            header(&mut out, name, help, "gauge");
            for row in &snap.shards {
                let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", row.shard, field(row));
            }
        }

        header(
            &mut out,
            "manet_shard_links",
            "Directed shard links, by interconnect health.",
            "gauge",
        );
        for (health, value) in [
            ("up", snap.links_up),
            ("degraded", snap.links_degraded),
            ("down", snap.links_down),
        ] {
            let _ = writeln!(out, "manet_shard_links{{health=\"{health}\"}} {value}");
        }

        header(
            &mut out,
            "manet_ghost_staleness_max",
            "Worst ghost-view age across directed shard links, in ticks.",
            "gauge",
        );
        let _ = writeln!(
            out,
            "manet_ghost_staleness_max {}",
            snap.max_ghost_staleness
        );
    }

    if let Some(spans) = spans.filter(|s| !s.is_empty()) {
        header(
            &mut out,
            "manet_stage_seconds",
            "Span wall-clock seconds per pipeline stage and shard.",
            "histogram",
        );
        for slot in 0..spans.shard_slots() {
            let shard_label = if slot == 0 {
                "all".to_string()
            } else {
                (slot - 1).to_string()
            };
            for label in SpanLabel::ALL {
                let sh = (slot > 0).then(|| (slot - 1) as u16);
                let Some(h) = spans.hist(label, sh) else {
                    continue;
                };
                let base = format!(
                    "phase=\"{}\",shard=\"{}\"",
                    escape_label_value(label.name()),
                    shard_label
                );
                let mut cum = 0u64;
                for (edge, count) in h.buckets() {
                    cum += count;
                    let _ = writeln!(
                        out,
                        "manet_stage_seconds_bucket{{{base},le=\"{edge}\"}} {cum}"
                    );
                }
                let _ = writeln!(
                    out,
                    "manet_stage_seconds_bucket{{{base},le=\"+Inf\"}} {}",
                    h.count()
                );
                let _ = writeln!(out, "manet_stage_seconds_sum{{{base}}} {}", h.sum());
                let _ = writeln!(out, "manet_stage_seconds_count{{{base}}} {}", h.count());
            }
        }
    }

    if let Some(ledger) = ledger {
        header(
            &mut out,
            "manet_cause_events_total",
            "Root events recorded, by root cause (weighted anchors).",
            "counter",
        );
        for root in RootCause::ALL {
            let _ = writeln!(
                out,
                "manet_cause_events_total{{root=\"{}\"}} {}",
                escape_label_value(root.name()),
                ledger.root_weight_total(root)
            );
        }

        header(
            &mut out,
            "manet_cause_msgs_total",
            "Attributed control messages, by root cause and class.",
            "counter",
        );
        for root in RootCause::ALL {
            for class in MsgClass::ALL {
                let msgs = ledger.msgs(root, class);
                if msgs > 0 {
                    let _ = writeln!(
                        out,
                        "manet_cause_msgs_total{{root=\"{}\",class=\"{}\"}} {msgs}",
                        escape_label_value(root.name()),
                        escape_label_value(class.name())
                    );
                }
            }
        }

        header(
            &mut out,
            "manet_cause_unit_cost",
            "Measured messages per root event, by root cause and class.",
            "gauge",
        );
        for root in RootCause::ALL {
            for class in MsgClass::ALL {
                if let Some(cost) = ledger.unit_cost(root, class) {
                    if cost > 0.0 {
                        let _ = writeln!(
                            out,
                            "manet_cause_unit_cost{{root=\"{}\",class=\"{}\"}} {cost}",
                            escape_label_value(root.name()),
                            escape_label_value(class.name())
                        );
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause::{Cause, CauseId};
    use crate::event::{Event, EventKind, Layer};

    #[test]
    fn snapshot_contains_well_formed_samples() {
        let mut rec = WindowedRecorder::new(5.0);
        let mut ledger = AttributionLedger::new();
        let gen = Cause {
            id: CauseId(0),
            root: RootCause::LinkGen,
        };
        for e in [
            Event {
                time: 1.0,
                layer: Layer::Sim,
                kind: EventKind::LinkUp { a: 0, b: 1 },
                cause: Some(gen),
            },
            Event {
                time: 1.0,
                layer: Layer::Sim,
                kind: EventKind::MsgSent {
                    class: MsgClass::Hello,
                    count: 2,
                },
                cause: Some(gen),
            },
            Event {
                time: 2.0,
                layer: Layer::Sim,
                kind: EventKind::ClusterGauge { heads: 7 },
                cause: None,
            },
        ] {
            rec.absorb(&e);
            ledger.absorb(&e);
        }

        let text = prometheus_text(&rec, Some(&ledger));
        assert!(text.contains("# TYPE manet_msgs_total counter"));
        assert!(text.contains("manet_msgs_total{class=\"HELLO\"} 2"));
        assert!(text.contains("manet_links_up_total 1"));
        assert!(text.contains("manet_cluster_heads 7"));
        assert!(text.contains("manet_trace_events_total 3"));
        assert!(text.contains("manet_cause_events_total{root=\"link_gen\"} 1"));
        assert!(text.contains("manet_cause_msgs_total{root=\"link_gen\",class=\"HELLO\"} 2"));
        assert!(text.contains("manet_cause_unit_cost{root=\"link_gen\",class=\"HELLO\"} 2"));
        // Every non-comment line is "name{labels} value" or "name value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample shape");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn exporter_without_ledger_omits_cause_families() {
        let rec = WindowedRecorder::new(5.0);
        let text = prometheus_text(&rec, None);
        assert!(text.contains("manet_msgs_total{class=\"CLUSTER\"} 0"));
        assert!(!text.contains("manet_cause_"));
        assert!(!text.contains("manet_shard_owned"));
        assert!(!text.contains("manet_shard_links"));
        assert!(text.contains("manet_interconnect_lost_total 0"));
        assert!(text.contains("manet_shard_stalls_total 0"));
    }

    #[test]
    fn shard_snapshot_renders_per_shard_and_link_health_gauges() {
        let mut rec = WindowedRecorder::new(5.0);
        rec.absorb(&Event {
            time: 1.0,
            layer: Layer::Sim,
            kind: EventKind::InterconnectLost {
                src: 0,
                dst: 1,
                count: 3,
            },
            cause: None,
        });
        rec.absorb(&Event {
            time: 2.0,
            layer: Layer::Sim,
            kind: EventKind::GhostStale {
                src: 0,
                dst: 1,
                staleness: 5,
                dropped: 2,
            },
            cause: None,
        });
        let snap = ShardSnapshot {
            shards: vec![
                ShardGaugeRow {
                    shard: 0,
                    owned: 40,
                    ghosts: 6,
                    migrations_in: 1,
                    migrations_out: 2,
                    boundary_links: 9,
                },
                ShardGaugeRow {
                    shard: 1,
                    owned: 38,
                    ghosts: 5,
                    migrations_in: 2,
                    migrations_out: 1,
                    boundary_links: 9,
                },
            ],
            links_up: 2,
            links_degraded: 1,
            links_down: 1,
            max_ghost_staleness: 3,
        };
        let text = prometheus_text_with_shards(&rec, None, Some(&snap));
        assert!(text.contains("manet_shard_owned{shard=\"0\"} 40"));
        assert!(text.contains("manet_shard_owned{shard=\"1\"} 38"));
        assert!(text.contains("manet_shard_ghosts{shard=\"1\"} 5"));
        assert!(text.contains("manet_shard_migrations_out{shard=\"0\"} 2"));
        assert!(text.contains("manet_shard_boundary_links{shard=\"0\"} 9"));
        assert!(text.contains("manet_shard_links{health=\"up\"} 2"));
        assert!(text.contains("manet_shard_links{health=\"down\"} 1"));
        assert!(text.contains("manet_ghost_staleness_max 3"));
        assert!(text.contains("manet_interconnect_lost_total 3"));
        assert!(text.contains("manet_ghost_stale_drops_total 2"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample shape");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    /// Whether `name` matches the metric-name grammar
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    fn valid_metric_name(name: &str) -> bool {
        let mut chars = name.chars();
        let Some(first) = chars.next() else {
            return false;
        };
        (first.is_ascii_alphabetic() || first == '_' || first == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Full text-format conformance pass over a maximal snapshot (with
    /// ledger and shards): every sample's metric name must have been declared by
    /// an immediately preceding `# HELP`/`# TYPE` pair, names must match
    /// the grammar, and label values must parse as escaped quoted
    /// strings. Pins the format before an external scraper depends on
    /// the live `/metrics` endpoint.
    #[test]
    fn exposition_format_conformance() {
        let mut rec = WindowedRecorder::new(5.0);
        let mut ledger = AttributionLedger::new();
        let gen = Cause {
            id: CauseId(0),
            root: RootCause::LinkGen,
        };
        for e in [
            Event {
                time: 1.0,
                layer: Layer::Sim,
                kind: EventKind::MsgSent {
                    class: MsgClass::Hello,
                    count: 3,
                },
                cause: Some(gen),
            },
            Event {
                time: 2.0,
                layer: Layer::Sim,
                kind: EventKind::ClusterGauge { heads: 4 },
                cause: None,
            },
        ] {
            rec.absorb(&e);
            ledger.absorb(&e);
        }
        let snap = ShardSnapshot {
            shards: vec![ShardGaugeRow {
                shard: 0,
                owned: 10,
                ghosts: 2,
                migrations_in: 0,
                migrations_out: 0,
                boundary_links: 3,
            }],
            links_up: 4,
            links_degraded: 0,
            links_down: 0,
            max_ghost_staleness: 1,
        };
        let mut spans = SpanRecorder::new();
        spans.start_tick();
        let t = spans.open();
        let s = spans.open();
        spans.close(s, SpanLabel::ShardCompute, Some(1), None);
        spans.close(t, SpanLabel::Tick, None, None);
        let text = prometheus_text_full(&rec, Some(&ledger), Some(&snap), Some(&spans));
        assert!(text.contains("# TYPE manet_stage_seconds histogram"));

        let mut declared: Vec<(String, Option<String>)> = Vec::new(); // (name, type kind)
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(valid_metric_name(&name), "{name}");
                declared.push((name, None));
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                let last = declared.last_mut().expect("TYPE after HELP");
                assert_eq!(last.0, name, "TYPE names the metric its HELP declared");
                assert!(["counter", "gauge", "histogram"].contains(&kind), "{kind}");
                last.1 = Some(kind.to_string());
            } else {
                // A sample: name[{labels}] value
                let (series, value) = line.rsplit_once(' ').expect("sample shape: {line}");
                assert!(value.parse::<f64>().is_ok(), "{line}");
                let name = series.split('{').next().unwrap();
                assert!(valid_metric_name(name), "{name}");
                let (declared_name, kind) = declared.last().expect("samples follow a header pair");
                let kind = kind.as_deref().unwrap_or_else(|| {
                    panic!("HELP without TYPE before {line}");
                });
                if kind == "histogram" {
                    // Histogram samples use the declared family name with a
                    // _bucket/_sum/_count suffix.
                    let suffix = name
                        .strip_prefix(declared_name.as_str())
                        .unwrap_or_else(|| panic!("sample outside its family: {line}"));
                    assert!(
                        ["_bucket", "_sum", "_count"].contains(&suffix),
                        "bad histogram suffix in {line}"
                    );
                } else {
                    assert_eq!(declared_name, name, "sample under its own header block");
                }
                if let Some(labels) = series
                    .strip_prefix(name)
                    .and_then(|l| l.strip_prefix('{'))
                    .and_then(|l| l.strip_suffix('}'))
                {
                    for pair in labels.split(',') {
                        let (key, quoted) = pair.split_once('=').expect("label pair: {pair}");
                        assert!(valid_metric_name(key), "{key}");
                        let inner = quoted
                            .strip_prefix('"')
                            .and_then(|q| q.strip_suffix('"'))
                            .expect("quoted label value");
                        // Raw quotes/backslashes/newlines must be escaped.
                        let mut chars = inner.chars();
                        while let Some(c) = chars.next() {
                            assert!(c != '"' && c != '\n', "unescaped {c:?} in {line}");
                            if c == '\\' {
                                let next = chars.next().expect("dangling escape");
                                assert!(
                                    ['\\', '"', 'n'].contains(&next),
                                    "bad escape \\{next} in {line}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// The span family renders one cumulative-bucket series per
    /// (stage, shard) cell that actually received spans, with `shard="all"`
    /// for main-thread work, monotone `_bucket` counts ending at `+Inf`,
    /// and `_count` equal to the cell's span count.
    #[test]
    fn span_recorder_renders_stage_seconds_histograms() {
        let rec = WindowedRecorder::new(5.0);
        let mut spans = SpanRecorder::new();
        spans.start_tick();
        for shard in [None, Some(0u16), Some(1)] {
            for _ in 0..3 {
                let s = spans.open();
                spans.close(s, SpanLabel::ShardCompute, shard, None);
            }
        }
        let t = spans.open();
        spans.close(t, SpanLabel::Tick, None, None);

        let text = prometheus_text_full(&rec, None, None, Some(&spans));
        assert!(text.contains("# TYPE manet_stage_seconds histogram"));
        assert!(text.contains("manet_stage_seconds_count{phase=\"tick\",shard=\"all\"} 1"));
        assert!(text.contains("manet_stage_seconds_count{phase=\"shard_compute\",shard=\"all\"} 3"));
        assert!(text.contains("manet_stage_seconds_count{phase=\"shard_compute\",shard=\"0\"} 3"));
        assert!(text.contains("manet_stage_seconds_count{phase=\"shard_compute\",shard=\"1\"} 3"));
        assert!(text.contains("phase=\"shard_compute\",shard=\"1\",le=\"+Inf\"} 3"));
        // No series for cells that never saw a span.
        assert!(!text.contains("phase=\"ic_send\""));

        // Cumulative buckets are monotone non-decreasing within a series
        // and the +Inf bucket matches the count.
        let series = "phase=\"shard_compute\",shard=\"0\"";
        let mut last = 0u64;
        let mut inf = None;
        for line in text
            .lines()
            .filter(|l| l.starts_with("manet_stage_seconds_bucket") && l.contains(series))
        {
            let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= last, "non-monotone bucket in {line}");
            last = v;
            if line.contains("le=\"+Inf\"") {
                inf = Some(v);
            }
        }
        assert_eq!(inf, Some(3));

        // Without spans (or with an empty recorder) the family is absent.
        let empty = SpanRecorder::new();
        let text = prometheus_text_full(&rec, None, None, Some(&empty));
        assert!(!text.contains("manet_stage_seconds"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("run\\ \"7\"\n"), "run\\\\ \\\"7\\\"\\n");
    }
}
