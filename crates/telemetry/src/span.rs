//! The span plane: hierarchical wall-clock spans (tick → stage → shard →
//! sub-stage) with O(shards × stages) steady-state memory and a Chrome
//! trace-event exporter.
//!
//! The [`PhaseProfiler`](crate::PhaseProfiler) answers "where does the
//! tick go" with one flat histogram per phase; it cannot say *which
//! shard* is the straggler or how interconnect traffic interleaves with
//! the merge. A [`SpanRecorder`] keeps the same O(1)-memory discipline —
//! every closed span folds into a per-`(label, shard)` streaming
//! [`Histogram`] — and optionally retains the most recent spans verbatim
//! in a bounded ring (the [`FlightRecorder`](crate::FlightRecorder)
//! shape) for exact timelines.
//!
//! Spans are opened and closed through the [`Probe`](crate::Probe)
//! hooks, so the disabled path builds no spans, reads no clock, and
//! stays byte-identical to a probe-less run — the same zero-cost
//! contract the event plane honors.
//!
//! Two timebases are exported ([`chrome_trace_json`]):
//!
//! - [`SpanTimebase::Wall`] — measured microseconds since the recorder
//!   was created; what you load into Perfetto / `chrome://tracing`.
//! - [`SpanTimebase::Canonical`] — timestamps derived from the
//!   deterministic open/close sequence numbers instead of the clock, so
//!   the same seed produces a byte-identical dump (pinned by an
//!   integration test). Nesting is preserved: a child opens after and
//!   closes before its parent, so its synthetic interval is strictly
//!   inside the parent's.

use crate::cause::CauseId;
use crate::hist::Histogram;
use crate::profiler::Phase;
use manet_util::json::Value;
use std::time::{Duration, Instant};

/// What a span timed. `Phase` spans mirror the profiler's stages; the
/// extra variants cover work the flat profiler cannot attribute: the
/// whole tick, one shard's topology compute, and one directed
/// interconnect hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanLabel {
    /// One whole protocol-stack tick (the root of the hierarchy).
    Tick,
    /// One profiler stage (mobility, topology, hello, cluster, routing,
    /// shard_flush, shard_merge).
    Stage(Phase),
    /// One shard's local neighbor-row compute inside the topology stage
    /// (carries the shard index; runs on that shard's worker).
    ShardCompute,
    /// One directed interconnect send (ghost sync / migration staging)
    /// from the shard carried in the span's `shard` field.
    IcSend,
    /// One directed interconnect delivery into the shard carried in the
    /// span's `shard` field.
    IcDeliver,
    /// One worker slot's share of the scoped HELLO table sweep inside the
    /// hello stage (carries the slot index).
    ShardHello,
    /// One owner frame's cluster-maintenance scan inside the cluster
    /// stage (carries the frame/shard index).
    ShardCluster,
    /// One owner frame's route-snapshot scan inside the routing stage
    /// (carries the frame/shard index).
    ShardRoute,
}

impl SpanLabel {
    /// All labels, in hierarchy order. `Stage` appears once per
    /// [`Phase::ALL`] entry.
    pub const ALL: [SpanLabel; 14] = [
        SpanLabel::Tick,
        SpanLabel::Stage(Phase::Mobility),
        SpanLabel::Stage(Phase::Topology),
        SpanLabel::Stage(Phase::ShardFlush),
        SpanLabel::Stage(Phase::ShardMerge),
        SpanLabel::Stage(Phase::Hello),
        SpanLabel::Stage(Phase::Cluster),
        SpanLabel::Stage(Phase::Routing),
        SpanLabel::ShardCompute,
        SpanLabel::IcSend,
        SpanLabel::IcDeliver,
        SpanLabel::ShardHello,
        SpanLabel::ShardCluster,
        SpanLabel::ShardRoute,
    ];

    /// Number of distinct labels (dense-index domain size).
    pub const COUNT: usize = 14;

    /// Dense index into per-label storage.
    fn index(self) -> usize {
        match self {
            SpanLabel::Tick => 0,
            SpanLabel::Stage(p) => 1 + p.index(),
            SpanLabel::ShardCompute => 8,
            SpanLabel::IcSend => 9,
            SpanLabel::IcDeliver => 10,
            SpanLabel::ShardHello => 11,
            SpanLabel::ShardCluster => 12,
            SpanLabel::ShardRoute => 13,
        }
    }

    /// Stable lowercase name (used as the trace-event `name` and the
    /// Prometheus `phase` label).
    pub fn name(self) -> &'static str {
        match self {
            SpanLabel::Tick => "tick",
            SpanLabel::Stage(p) => p.name(),
            SpanLabel::ShardCompute => "shard_compute",
            SpanLabel::IcSend => "ic_send",
            SpanLabel::IcDeliver => "ic_deliver",
            SpanLabel::ShardHello => "shard_hello",
            SpanLabel::ShardCluster => "shard_cluster",
            SpanLabel::ShardRoute => "shard_route",
        }
    }
}

/// Opaque token returned by [`SpanRecorder::open`] (via the probe's
/// span hooks): the open timestamp plus the deterministic open sequence
/// number the canonical timebase is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStart {
    pub(crate) at: Instant,
    pub(crate) seq: u64,
}

impl SpanStart {
    /// A start token for a probe that profiles but does not record
    /// spans (the sequence number is never read).
    pub(crate) fn untracked() -> SpanStart {
        SpanStart {
            at: Instant::now(),
            seq: 0,
        }
    }

    /// The wall-clock open instant.
    pub fn at(&self) -> Instant {
        self.at
    }
}

/// One closed span as retained by the raw ring: what, when (relative to
/// the recorder's epoch), for how long, on which shard, and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawSpan {
    /// Tick counter at close time (1-based; 0 before the first tick span
    /// opens).
    pub tick: u64,
    /// What was timed.
    pub label: SpanLabel,
    /// Shard index for per-shard work; `None` for main-thread stages.
    pub shard: Option<u16>,
    /// Causal link into the attribution plane (e.g. the
    /// `InterconnectFault` cause of a lost sync), when one exists.
    pub cause: Option<CauseId>,
    /// Open time, seconds since the recorder's epoch.
    pub start_s: f64,
    /// Duration, seconds.
    pub dur_s: f64,
    /// Deterministic open order (1-based, recorder-global).
    pub open_seq: u64,
    /// Deterministic close order (recorder-global; > `open_seq`).
    pub close_seq: u64,
}

/// Bounded raw-span ring (same shape as the flight recorder's event
/// ring): preallocated, overwrites oldest once full.
#[derive(Debug, Clone)]
struct SpanRing {
    buf: Vec<RawSpan>,
    cap: usize,
    next: usize,
}

impl SpanRing {
    fn new(cap: usize) -> SpanRing {
        let cap = cap.max(1);
        SpanRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
        }
    }

    #[inline]
    fn record(&mut self, span: RawSpan) {
        if self.buf.len() < self.cap {
            self.buf.push(span);
        } else {
            self.buf[self.next] = span;
        }
        self.next = (self.next + 1) % self.cap;
    }

    fn iter(&self) -> impl Iterator<Item = &RawSpan> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

/// Streaming span aggregator: every closed span folds into a
/// per-`(label, shard)` [`Histogram`], so steady-state memory is
/// O(labels × shards) regardless of run length. An optional bounded
/// ring retains the most recent spans verbatim for exact timelines
/// ([`chrome_trace_json`]).
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    epoch: Instant,
    tick: u64,
    seq: u64,
    /// Shard slots allocated so far: slot 0 is main-thread work
    /// (`shard: None`), slot `s + 1` is shard `s`.
    slots: usize,
    /// Slot-major histogram matrix: `agg[slot * COUNT + label]`. Growing
    /// to a new shard appends one row; existing indices never move.
    agg: Vec<Histogram>,
    ring: Option<SpanRing>,
    recorded: u64,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    /// A recorder with histogram aggregation only (no raw ring).
    pub fn new() -> SpanRecorder {
        SpanRecorder {
            epoch: Instant::now(),
            tick: 0,
            seq: 0,
            slots: 1,
            agg: vec![Histogram::new(); SpanLabel::COUNT],
            ring: None,
            recorded: 0,
        }
    }

    /// Attaches a raw-span ring retaining the last `cap` spans (clamped
    /// to ≥ 1). Builder style.
    #[must_use]
    pub fn with_ring(mut self, cap: usize) -> SpanRecorder {
        self.ring = Some(SpanRing::new(cap));
        self
    }

    /// Current tick counter (incremented by [`SpanRecorder::start_tick`]).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the tick counter; called when a tick span opens.
    #[inline]
    pub fn start_tick(&mut self) {
        self.tick += 1;
    }

    /// Total spans closed over the recorder's lifetime.
    pub fn spans_recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether no span has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Number of shard slots with storage (1 + highest shard index seen;
    /// 1 when no per-shard span was recorded).
    pub fn shard_slots(&self) -> usize {
        self.slots
    }

    /// Spans retained in the raw ring, oldest first (empty without a
    /// ring).
    pub fn ring(&self) -> impl Iterator<Item = &RawSpan> {
        self.ring.iter().flat_map(|r| r.iter())
    }

    /// Number of spans currently retained in the raw ring.
    pub fn ring_len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.buf.len())
    }

    /// The aggregate histogram for `(label, shard)`; `None` when that
    /// cell never received a span. `shard: None` addresses main-thread
    /// work.
    pub fn hist(&self, label: SpanLabel, shard: Option<u16>) -> Option<&Histogram> {
        let slot = shard.map_or(0, |s| s as usize + 1);
        if slot >= self.slots {
            return None;
        }
        let h = &self.agg[slot * SpanLabel::COUNT + label.index()];
        (!h.is_empty()).then_some(h)
    }

    /// Opens a span: reads the clock once and takes the next sequence
    /// number.
    #[inline]
    pub fn open(&mut self) -> SpanStart {
        self.seq += 1;
        SpanStart {
            at: Instant::now(),
            seq: self.seq,
        }
    }

    /// Closes a span opened by [`SpanRecorder::open`], reading the clock
    /// for the duration.
    #[inline]
    pub fn close(
        &mut self,
        start: SpanStart,
        label: SpanLabel,
        shard: Option<u16>,
        cause: Option<CauseId>,
    ) {
        let dur = start.at.elapsed();
        self.close_with(start, label, shard, cause, dur);
    }

    /// Closes a span with an externally measured duration (used when the
    /// caller already read the clock, e.g. the probe's shared
    /// profiler/span path).
    #[inline]
    pub fn close_with(
        &mut self,
        start: SpanStart,
        label: SpanLabel,
        shard: Option<u16>,
        cause: Option<CauseId>,
        dur: Duration,
    ) {
        self.seq += 1;
        let close_seq = self.seq;
        self.commit(label, shard, cause, start.at, dur, start.seq, close_seq);
    }

    /// Records a span that was timed off-thread (e.g. a shard worker):
    /// both sequence numbers are assigned here, at the deterministic
    /// point the main thread folds the measurement in.
    #[inline]
    pub fn record_external(
        &mut self,
        label: SpanLabel,
        shard: Option<u16>,
        cause: Option<CauseId>,
        at: Instant,
        dur: Duration,
    ) {
        self.seq += 1;
        let open_seq = self.seq;
        self.seq += 1;
        let close_seq = self.seq;
        self.commit(label, shard, cause, at, dur, open_seq, close_seq);
    }

    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        label: SpanLabel,
        shard: Option<u16>,
        cause: Option<CauseId>,
        at: Instant,
        dur: Duration,
        open_seq: u64,
        close_seq: u64,
    ) {
        let slot = shard.map_or(0, |s| s as usize + 1);
        if slot >= self.slots {
            // One-time growth per newly seen shard; steady state never
            // reallocates.
            self.agg
                .resize((slot + 1) * SpanLabel::COUNT, Histogram::new());
            self.slots = slot + 1;
        }
        let dur_s = dur.as_secs_f64();
        self.agg[slot * SpanLabel::COUNT + label.index()].record(dur_s);
        self.recorded += 1;
        if let Some(ring) = self.ring.as_mut() {
            ring.record(RawSpan {
                tick: self.tick,
                label,
                shard,
                cause,
                start_s: at.saturating_duration_since(self.epoch).as_secs_f64(),
                dur_s,
                open_seq,
                close_seq,
            });
        }
    }
}

/// Which timestamps a [`chrome_trace_json`] export carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanTimebase {
    /// Measured wall-clock microseconds since the recorder's epoch — the
    /// profiling view.
    #[default]
    Wall,
    /// Synthetic timestamps from the deterministic open/close sequence
    /// numbers (`ts = 8·open_seq`, `dur = 8·(close_seq − open_seq) + 4`):
    /// same seed ⇒ byte-identical file. Durations are fictitious but
    /// nesting and ordering are exact.
    Canonical,
}

/// Renders the recorder's raw ring as a Chrome trace-event JSON document
/// (`ph: "X"` complete events, `pid` 1, `tid` 0 for the main thread and
/// `shard + 1` per shard), loadable in Perfetto / `chrome://tracing` and
/// parseable by `manet_util::json::Value::parse`.
///
/// Each event's `args` carry the tick and, when present, the span's
/// causal link (`cause`). Thread-name metadata events map `tid`s back to
/// "main" / "shard N".
pub fn chrome_trace_json(rec: &SpanRecorder, timebase: SpanTimebase) -> String {
    let tid_of = |shard: Option<u16>| -> u64 { shard.map_or(0, |s| s as u64 + 1) };
    let mut tids: Vec<u64> = rec.ring().map(|s| tid_of(s.shard)).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut events = Vec::new();
    for &tid in &tids {
        let name = if tid == 0 {
            "main".to_string()
        } else {
            format!("shard {}", tid - 1)
        };
        events.push(Value::Obj(vec![
            ("name".into(), Value::from("thread_name")),
            ("ph".into(), Value::from("M")),
            ("pid".into(), Value::from(1u64)),
            ("tid".into(), Value::from(tid)),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::from(name))]),
            ),
        ]));
    }
    for span in rec.ring() {
        let (ts, dur) = match timebase {
            SpanTimebase::Wall => (span.start_s * 1e6, span.dur_s * 1e6),
            SpanTimebase::Canonical => (
                (span.open_seq * 8) as f64,
                ((span.close_seq - span.open_seq) * 8 + 4) as f64,
            ),
        };
        let mut args = vec![("tick".into(), Value::from(span.tick))];
        if let Some(CauseId(id)) = span.cause {
            args.push(("cause".into(), Value::from(id)));
        }
        events.push(Value::Obj(vec![
            ("name".into(), Value::from(span.label.name())),
            ("cat".into(), Value::from("tick")),
            ("ph".into(), Value::from("X")),
            ("pid".into(), Value::from(1u64)),
            ("tid".into(), Value::from(tid_of(span.shard))),
            ("ts".into(), Value::from(ts)),
            ("dur".into(), Value::from(dur)),
            ("args".into(), Value::Obj(args)),
        ]));
    }
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(events)),
        ("displayTimeUnit".into(), Value::from("ms")),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_have_dense_unique_indices_and_names() {
        let mut seen = [false; SpanLabel::COUNT];
        for label in SpanLabel::ALL {
            let i = label.index();
            assert!(i < SpanLabel::COUNT, "{label:?}");
            assert!(!seen[i], "duplicate index for {label:?}");
            seen[i] = true;
            assert!(!label.name().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
        // Names are unique too (they become trace-event names).
        let mut names: Vec<_> = SpanLabel::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanLabel::COUNT);
    }

    #[test]
    fn open_close_aggregates_per_label_and_shard() {
        let mut rec = SpanRecorder::new();
        assert!(rec.is_empty());
        let s = rec.open();
        rec.close(s, SpanLabel::Stage(Phase::Topology), None, None);
        rec.record_external(
            SpanLabel::ShardCompute,
            Some(2),
            None,
            Instant::now(),
            Duration::from_micros(500),
        );
        assert_eq!(rec.spans_recorded(), 2);
        assert_eq!(rec.shard_slots(), 4, "slots grow to shard index + 2");
        let h = rec.hist(SpanLabel::ShardCompute, Some(2)).unwrap();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 5e-4).abs() < 1e-9);
        assert!(rec.hist(SpanLabel::ShardCompute, Some(1)).is_none());
        assert!(rec.hist(SpanLabel::Stage(Phase::Topology), None).is_some());
        assert!(rec.hist(SpanLabel::Tick, None).is_none());
        // No ring attached: nothing retained.
        assert_eq!(rec.ring_len(), 0);
        assert_eq!(rec.ring().count(), 0);
    }

    #[test]
    fn ring_wraps_keeping_the_newest_spans() {
        let mut rec = SpanRecorder::new().with_ring(3);
        for i in 0..5u64 {
            rec.start_tick();
            rec.record_external(
                SpanLabel::Tick,
                None,
                None,
                Instant::now(),
                Duration::from_micros(i),
            );
        }
        assert_eq!(rec.ring_len(), 3);
        let ticks: Vec<u64> = rec.ring().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![3, 4, 5], "oldest-first, newest retained");
        assert_eq!(rec.spans_recorded(), 5);
    }

    #[test]
    fn sequence_numbers_are_strictly_ordered() {
        let mut rec = SpanRecorder::new().with_ring(16);
        let outer = rec.open();
        let inner = rec.open();
        rec.close(inner, SpanLabel::Stage(Phase::Mobility), None, None);
        rec.close(outer, SpanLabel::Tick, None, None);
        let spans: Vec<RawSpan> = rec.ring().copied().collect();
        assert_eq!(spans.len(), 2);
        let inner_s = spans.iter().find(|s| s.label != SpanLabel::Tick).unwrap();
        let outer_s = spans.iter().find(|s| s.label == SpanLabel::Tick).unwrap();
        // The child opens after and closes before the parent, so its
        // canonical interval nests strictly inside the parent's.
        assert!(outer_s.open_seq < inner_s.open_seq);
        assert!(inner_s.close_seq < outer_s.close_seq);
        for s in &spans {
            assert!(s.open_seq < s.close_seq);
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_the_json_parser() {
        let mut rec = SpanRecorder::new().with_ring(8);
        rec.start_tick();
        rec.record_external(
            SpanLabel::ShardCompute,
            Some(1),
            Some(CauseId(42)),
            Instant::now(),
            Duration::from_micros(250),
        );
        let s = rec.open();
        rec.close(s, SpanLabel::Tick, None, None);
        let text = chrome_trace_json(&rec, SpanTimebase::Wall);
        let doc = Value::parse(&text).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Value::Arr(evs)) => evs,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // 2 thread_name metadata events (tid 0 and tid 2) + 2 spans.
        assert_eq!(events.len(), 4);
        let span_evs: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(span_evs.len(), 2);
        let shard_ev = span_evs
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("shard_compute"))
            .unwrap();
        assert_eq!(shard_ev.get("tid").and_then(Value::as_u64), Some(2));
        assert_eq!(
            shard_ev
                .get("args")
                .and_then(|a| a.get("cause"))
                .and_then(Value::as_u64),
            Some(42)
        );
        assert!(shard_ev.get("dur").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn canonical_timebase_is_clock_free_and_nested() {
        let mut rec = SpanRecorder::new().with_ring(8);
        rec.start_tick();
        let outer = rec.open();
        let inner = rec.open();
        rec.close(inner, SpanLabel::Stage(Phase::Hello), None, None);
        rec.close(outer, SpanLabel::Tick, None, None);
        let text = chrome_trace_json(&rec, SpanTimebase::Canonical);
        let doc = Value::parse(&text).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Value::Arr(evs)) => evs,
            _ => unreachable!(),
        };
        let interval = |name: &str| -> (f64, f64) {
            let e = events
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .unwrap();
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            let dur = e.get("dur").and_then(Value::as_f64).unwrap();
            (ts, ts + dur)
        };
        let (t0, t1) = interval("tick");
        let (h0, h1) = interval("hello");
        assert!(t0 < h0 && h1 < t1, "child nests strictly inside parent");
    }
}
