//! Tick-phase wall-clock profiler.
//!
//! Each simulation tick decomposes into phases (mobility integration,
//! topology rebuild, HELLO exchange, cluster maintenance, route update);
//! the profiler accumulates one wall-clock sample per phase per tick and
//! summarizes min / mean / p99 / max at run end. Samples are wall-clock
//! seconds — profiling is about *where the host CPU goes*, orthogonal to
//! simulated time.

use manet_util::table::{fmt_sig, Table};

/// A timed tick phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Mobility-model position integration.
    Mobility,
    /// Geometric topology rebuild + link diffing.
    Topology,
    /// HELLO beacon exchange and neighbor-table upkeep.
    Hello,
    /// Cluster maintenance (including repair under faults).
    Cluster,
    /// Intra-cluster route update.
    Routing,
}

impl Phase {
    /// All phases, in tick execution order.
    pub const ALL: [Phase; 5] = [
        Phase::Mobility,
        Phase::Topology,
        Phase::Hello,
        Phase::Cluster,
        Phase::Routing,
    ];

    /// Dense index into per-phase storage.
    fn index(self) -> usize {
        match self {
            Phase::Mobility => 0,
            Phase::Topology => 1,
            Phase::Hello => 2,
            Phase::Cluster => 3,
            Phase::Routing => 4,
        }
    }

    /// Stable lowercase name (used in JSONL traces and reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mobility => "mobility",
            Phase::Topology => "topology",
            Phase::Hello => "hello",
            Phase::Cluster => "cluster",
            Phase::Routing => "routing",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Accumulates per-phase wall-clock samples (seconds).
///
/// Samples are kept in full so the report can compute exact order
/// statistics; at one sample per phase per tick this is a few hundred
/// kilobytes for even very long runs.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    samples: [Vec<f64>; 5],
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Records one wall-clock sample (seconds) for `phase`.
    pub fn record(&mut self, phase: Phase, secs: f64) {
        self.samples[phase.index()].push(secs);
    }

    /// Number of samples recorded for `phase`.
    pub fn count(&self, phase: Phase) -> usize {
        self.samples[phase.index()].len()
    }

    /// Summarizes all phases that received at least one sample.
    pub fn report(&self) -> ProfileReport {
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let samples = &self.samples[phase.index()];
            if let Some(summary) = PhaseSummary::from_samples(samples) {
                phases.push((phase, summary));
            }
        }
        ProfileReport { phases }
    }
}

/// Order statistics for one phase's wall-clock samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples, seconds.
    pub total: f64,
    /// Fastest sample, seconds.
    pub min: f64,
    /// Arithmetic mean, seconds.
    pub mean: f64,
    /// 99th percentile (nearest-rank), seconds.
    pub p99: f64,
    /// Slowest sample, seconds.
    pub max: f64,
}

impl PhaseSummary {
    /// Summarizes a sample set; `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<PhaseSummary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite phase sample"));
        let total: f64 = sorted.iter().sum();
        // Nearest-rank percentile: the ceil(q·n)-th smallest sample.
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
        Some(PhaseSummary {
            count: n as u64,
            total,
            min: sorted[0],
            mean: total / n as f64,
            p99: sorted[rank - 1],
            max: sorted[n - 1],
        })
    }
}

/// End-of-run profile: one summary per phase that ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// `(phase, summary)` pairs in tick execution order.
    pub phases: Vec<(Phase, PhaseSummary)>,
}

impl ProfileReport {
    /// Whether no phase recorded any sample.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The summary for `phase`, if it ran.
    pub fn get(&self, phase: Phase) -> Option<&PhaseSummary> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, s)| s)
    }

    /// Total wall-clock seconds across all phases.
    pub fn total_secs(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s.total).sum()
    }

    /// Renders the per-phase timing table (microseconds).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new([
            "phase", "ticks", "total_ms", "min_us", "mean_us", "p99_us", "max_us",
        ]);
        for (phase, s) in &self.phases {
            table.row([
                phase.name().to_string(),
                s.count.to_string(),
                fmt_sig(s.total * 1e3, 4),
                fmt_sig(s.min * 1e6, 4),
                fmt_sig(s.mean * 1e6, 4),
                fmt_sig(s.p99 * 1e6, 4),
                fmt_sig(s.max * 1e6, 4),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = PhaseSummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // Nearest rank: ceil(0.99 * 100) = 99th smallest = 99.0.
        assert_eq!(s.p99, 99.0);
        assert!((s.total - 5050.0).abs() < 1e-9);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(PhaseSummary::from_samples(&[]), None);
        let single = PhaseSummary::from_samples(&[0.25]).unwrap();
        assert_eq!(single.count, 1);
        assert_eq!(single.min, 0.25);
        assert_eq!(single.p99, 0.25);
        assert_eq!(single.max, 0.25);
    }

    #[test]
    fn report_orders_by_execution_and_skips_empty() {
        let mut prof = PhaseProfiler::new();
        prof.record(Phase::Routing, 2e-6);
        prof.record(Phase::Mobility, 1e-6);
        prof.record(Phase::Mobility, 3e-6);
        let report = prof.report();
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].0, Phase::Mobility);
        assert_eq!(report.phases[1].0, Phase::Routing);
        assert_eq!(report.get(Phase::Mobility).unwrap().count, 2);
        assert_eq!(report.get(Phase::Hello), None);
        assert!((report.total_secs() - 6e-6).abs() < 1e-15);
        let table = report.to_table();
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("warp"), None);
    }
}
