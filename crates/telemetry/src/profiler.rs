//! Tick-phase wall-clock profiler.
//!
//! Each simulation tick decomposes into phases (mobility integration,
//! topology rebuild, HELLO exchange, cluster maintenance, route update;
//! sharded runs also time the shard plane's interconnect flush and merge
//! stages); the profiler accumulates one wall-clock sample per phase per
//! tick and summarizes min / mean / p99 / max at run end. Samples are
//! wall-clock seconds — profiling is about *where the host CPU goes*,
//! orthogonal to simulated time.
//!
//! Storage is a fixed-size streaming [`Histogram`] per phase, so the
//! profiler's memory is O(1) no matter how long the run is — count, sum,
//! min, and max stay exact; only p99 is approximated, interpolated
//! within one log2 bucket of the exact order statistic (between 0.5×
//! and 2× it — pinned by the regression test below against the exact
//! nearest-rank reference).

use crate::hist::Histogram;
use manet_util::table::{fmt_sig, Table};

/// A timed tick phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Mobility-model position integration.
    Mobility,
    /// Geometric topology rebuild + link diffing.
    Topology,
    /// Shard-plane owner/ghost exchange through the interconnect — a
    /// sub-phase of `Topology` (its time is included in `Topology`'s),
    /// recorded only on sharded runs.
    ShardFlush,
    /// Shard-plane merge + reconciliation sweep — a sub-phase of
    /// `Topology`, recorded only on sharded runs.
    ShardMerge,
    /// HELLO beacon exchange and neighbor-table upkeep.
    Hello,
    /// Cluster maintenance (including repair under faults).
    Cluster,
    /// Intra-cluster route update.
    Routing,
}

impl Phase {
    /// All phases, in tick execution order (the shard sub-phases nest
    /// inside `Topology` and appear right after it).
    pub const ALL: [Phase; 7] = [
        Phase::Mobility,
        Phase::Topology,
        Phase::ShardFlush,
        Phase::ShardMerge,
        Phase::Hello,
        Phase::Cluster,
        Phase::Routing,
    ];

    /// The five top-level phases every tick runs (no shard sub-phases):
    /// these partition the tick, so their totals sum to the tick wall
    /// time without double counting.
    pub const TICK: [Phase; 5] = [
        Phase::Mobility,
        Phase::Topology,
        Phase::Hello,
        Phase::Cluster,
        Phase::Routing,
    ];

    /// Dense index into per-phase storage (crate-visible: the span plane
    /// reuses it to pack `SpanLabel::Stage` into its own dense domain).
    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Mobility => 0,
            Phase::Topology => 1,
            Phase::ShardFlush => 2,
            Phase::ShardMerge => 3,
            Phase::Hello => 4,
            Phase::Cluster => 5,
            Phase::Routing => 6,
        }
    }

    /// Stable lowercase name (used in JSONL traces and reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mobility => "mobility",
            Phase::Topology => "topology",
            Phase::ShardFlush => "shard_flush",
            Phase::ShardMerge => "shard_merge",
            Phase::Hello => "hello",
            Phase::Cluster => "cluster",
            Phase::Routing => "routing",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Accumulates per-phase wall-clock samples (seconds).
///
/// Each phase is a fixed-capacity streaming [`Histogram`]: recording is
/// O(1) and allocation-free, and the profiler's footprint is a
/// compile-time constant regardless of run length — safe to leave
/// attached to a long-running server (the previous per-sample `Vec`s
/// grew without bound).
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    hists: [Histogram; 7],
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Records one wall-clock sample (seconds) for `phase`. O(1),
    /// allocation-free.
    #[inline]
    pub fn record(&mut self, phase: Phase, secs: f64) {
        self.hists[phase.index()].record(secs);
    }

    /// Number of samples recorded for `phase`.
    pub fn count(&self, phase: Phase) -> usize {
        self.hists[phase.index()].count() as usize
    }

    /// The streaming histogram behind `phase` (for quantiles beyond the
    /// summary's p99).
    pub fn histogram(&self, phase: Phase) -> &Histogram {
        &self.hists[phase.index()]
    }

    /// Folds another profiler's samples into this one (bucket-wise; see
    /// [`Histogram::merge`]).
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Summarizes all phases that received at least one sample.
    pub fn report(&self) -> ProfileReport {
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            if let Some(summary) = PhaseSummary::from_histogram(&self.hists[phase.index()]) {
                phases.push((phase, summary));
            }
        }
        ProfileReport { phases }
    }
}

/// Order statistics for one phase's wall-clock samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples, seconds.
    pub total: f64,
    /// Fastest sample, seconds.
    pub min: f64,
    /// Arithmetic mean, seconds.
    pub mean: f64,
    /// 99th percentile (nearest-rank), seconds. From a histogram this is
    /// bucket-interpolated: within one log2 bucket of the exact value.
    pub p99: f64,
    /// Slowest sample, seconds.
    pub max: f64,
}

impl PhaseSummary {
    /// Summarizes a raw sample set exactly; `None` when empty. This is
    /// the exact nearest-rank reference the histogram-backed path is
    /// tested against.
    pub fn from_samples(samples: &[f64]) -> Option<PhaseSummary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite phase sample"));
        let total: f64 = sorted.iter().sum();
        // Nearest-rank percentile: the ceil(q·n)-th smallest sample.
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
        Some(PhaseSummary {
            count: n as u64,
            total,
            min: sorted[0],
            mean: total / n as f64,
            p99: sorted[rank - 1],
            max: sorted[n - 1],
        })
    }

    /// Summarizes a streaming histogram; `None` when empty. Everything
    /// except `p99` is exact.
    pub fn from_histogram(hist: &Histogram) -> Option<PhaseSummary> {
        Some(PhaseSummary {
            count: hist.count(),
            total: hist.sum(),
            min: hist.min()?,
            mean: hist.mean()?,
            p99: hist.p99()?,
            max: hist.max()?,
        })
    }
}

/// End-of-run profile: one summary per phase that ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// `(phase, summary)` pairs in tick execution order.
    pub phases: Vec<(Phase, PhaseSummary)>,
}

impl ProfileReport {
    /// Whether no phase recorded any sample.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The summary for `phase`, if it ran.
    pub fn get(&self, phase: Phase) -> Option<&PhaseSummary> {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, s)| s)
    }

    /// Total wall-clock seconds across the top-level tick phases (the
    /// shard sub-phases nest inside `Topology` and are excluded so the
    /// total is not double-counted).
    pub fn total_secs(&self) -> f64 {
        self.phases
            .iter()
            .filter(|(p, _)| Phase::TICK.contains(p))
            .map(|(_, s)| s.total)
            .sum()
    }

    /// Renders the per-phase timing table (microseconds).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new([
            "phase", "ticks", "total_ms", "min_us", "mean_us", "p99_us", "max_us",
        ]);
        for (phase, s) in &self.phases {
            table.row([
                phase.name().to_string(),
                s.count.to_string(),
                fmt_sig(s.total * 1e3, 4),
                fmt_sig(s.min * 1e6, 4),
                fmt_sig(s.mean * 1e6, 4),
                fmt_sig(s.p99 * 1e6, 4),
                fmt_sig(s.max * 1e6, 4),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = PhaseSummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // Nearest rank: ceil(0.99 * 100) = 99th smallest = 99.0.
        assert_eq!(s.p99, 99.0);
        assert!((s.total - 5050.0).abs() < 1e-9);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(PhaseSummary::from_samples(&[]), None);
        assert_eq!(PhaseSummary::from_histogram(&Histogram::new()), None);
        let single = PhaseSummary::from_samples(&[0.25]).unwrap();
        assert_eq!(single.count, 1);
        assert_eq!(single.min, 0.25);
        assert_eq!(single.p99, 0.25);
        assert_eq!(single.max, 0.25);
    }

    /// The histogram-backed profiler keeps count/total/min/mean/max exact
    /// and its p99 within one log2 bucket of the exact nearest-rank value
    /// computed from the raw samples.
    #[test]
    fn histogram_summary_tracks_exact_reference_within_one_bucket() {
        // Latency-like heavy tail across several decades of seconds.
        let samples: Vec<f64> = (1..=500)
            .map(|i| 2e-6 + 1e-7 * (i as f64).powf(2.1))
            .collect();
        let exact = PhaseSummary::from_samples(&samples).unwrap();
        let mut prof = PhaseProfiler::new();
        for &v in &samples {
            prof.record(Phase::Topology, v);
        }
        let report = prof.report();
        let s = report.get(Phase::Topology).unwrap();
        assert_eq!(s.count, exact.count);
        assert_eq!(s.min, exact.min);
        assert_eq!(s.max, exact.max);
        assert!((s.total - exact.total).abs() < 1e-12);
        assert!((s.mean - exact.mean).abs() < 1e-15);
        assert!(
            s.p99 >= exact.p99 * 0.5 && s.p99 <= exact.p99 * 2.0,
            "p99 {} must be within one log2 bucket of exact {}",
            s.p99,
            exact.p99
        );
        // The interpolated quantile reports an interior value, not the
        // max endpoint (the old edge-clamping wart).
        assert!(s.p99 < s.max, "p99 must stay below max for spread samples");
    }

    /// The O(1)-memory contract: the profiler's footprint is fixed at
    /// construction no matter how many samples are recorded (the old
    /// per-sample `Vec`s grew linearly with run length).
    #[test]
    fn profiler_memory_is_constant_in_run_length() {
        let mut prof = PhaseProfiler::new();
        let size = std::mem::size_of_val(&prof);
        for i in 0..200_000u64 {
            prof.record(Phase::Hello, 1e-6 + (i % 251) as f64 * 1e-8);
        }
        assert_eq!(std::mem::size_of_val(&prof), size);
        assert_eq!(size, std::mem::size_of::<PhaseProfiler>());
        assert_eq!(prof.count(Phase::Hello), 200_000);
    }

    #[test]
    fn merge_folds_per_phase_histograms() {
        let mut a = PhaseProfiler::new();
        let mut b = PhaseProfiler::new();
        a.record(Phase::Mobility, 1e-6);
        b.record(Phase::Mobility, 3e-6);
        b.record(Phase::Routing, 2e-6);
        a.merge(&b);
        assert_eq!(a.count(Phase::Mobility), 2);
        assert_eq!(a.count(Phase::Routing), 1);
        assert_eq!(a.histogram(Phase::Mobility).max(), Some(3e-6));
    }

    #[test]
    fn report_orders_by_execution_and_skips_empty() {
        let mut prof = PhaseProfiler::new();
        prof.record(Phase::Routing, 2e-6);
        prof.record(Phase::Mobility, 1e-6);
        prof.record(Phase::Mobility, 3e-6);
        let report = prof.report();
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].0, Phase::Mobility);
        assert_eq!(report.phases[1].0, Phase::Routing);
        assert_eq!(report.get(Phase::Mobility).unwrap().count, 2);
        assert_eq!(report.get(Phase::Hello), None);
        assert!((report.total_secs() - 6e-6).abs() < 1e-15);
        let table = report.to_table();
        assert_eq!(table.len(), 2);
    }

    /// Shard sub-phases render in the report but do not double-count in
    /// the top-level total.
    #[test]
    fn shard_sub_phases_are_excluded_from_the_total() {
        let mut prof = PhaseProfiler::new();
        prof.record(Phase::Topology, 10e-6);
        prof.record(Phase::ShardFlush, 4e-6);
        prof.record(Phase::ShardMerge, 2e-6);
        let report = prof.report();
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.phases[1].0, Phase::ShardFlush);
        assert!((report.total_secs() - 10e-6).abs() < 1e-15);
        assert_eq!(report.get(Phase::ShardMerge).unwrap().count, 1);
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("warp"), None);
        for phase in Phase::TICK {
            assert!(Phase::ALL.contains(&phase));
        }
    }
}
