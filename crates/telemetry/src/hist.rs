//! Fixed-capacity streaming histograms for wall-clock latencies.
//!
//! [`Histogram`] is the telemetry plane's answer to "keep a latency
//! distribution forever without growing": 64 log2-spaced buckets plus
//! exact count / sum / min / max, all inline in the struct — recording is
//! O(1), allocation-free, and the memory footprint is a compile-time
//! constant regardless of how many samples arrive. That makes it safe for
//! the long-running server path where the old per-sample `Vec`s inside
//! the profiler were an unbounded leak.
//!
//! Quantiles are approximate: a query interpolates by rank position
//! inside the bucket holding the nearest-rank sample, with the bucket's
//! span clipped to the observed `[min, max]` range. Because buckets are
//! powers of two, the answer is always within one log2 bucket of the
//! exact order statistic (between 0.5× and 2× the true value) — pinned
//! by a regression test in `profiler.rs` against the exact nearest-rank
//! reference — and an interior quantile of a spread distribution never
//! collapses onto the max endpoint (the old edge-clamping answer did
//! whenever the top bucket held more than `1 − q` of the samples).

/// Number of log2 buckets (compile-time capacity of a [`Histogram`]).
pub const HIST_BUCKETS: usize = 64;

/// Binary exponent covered by the first regular bucket: bucket 1 spans
/// `[2^MIN_EXP, 2^(MIN_EXP+1))` seconds. With 62 regular buckets the
/// histogram resolves ~9e-13 s .. ~4.4e6 s; bucket 0 catches underflow
/// (zero, negatives, subnormals) and bucket 63 catches overflow.
const MIN_EXP: i64 = -40;

/// A zero-alloc streaming histogram over non-negative `f64` samples
/// (seconds), with exact count/sum/min/max and log2-bucketed quantiles.
///
/// The struct is plain data: `record` touches no heap, `merge` adds two
/// histograms bucket-wise, and `size_of::<Histogram>()` bounds the memory
/// per tracked distribution forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a sample: 0 for anything not strictly positive
    /// and normal (zero, negative, subnormal), 63 for overflow, else the
    /// sample's binary exponent shifted into range.
    fn bucket(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let e = ((v.to_bits() >> 52) & 0x7ff) as i64;
        if e == 0 {
            return 0; // subnormal: below every regular bucket
        }
        (e - 1023 - MIN_EXP + 1).clamp(0, HIST_BUCKETS as i64 - 1) as usize
    }

    /// Upper edge of bucket `b` in seconds (`2^(b + MIN_EXP)`).
    fn upper_edge(b: usize) -> f64 {
        f64::exp2((b as i64 + MIN_EXP) as f64)
    }

    /// Records one sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.counts[Self::bucket(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (exact); `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (exact); `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (exact); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Nearest-rank quantile, interpolated by rank position inside the
    /// containing log2 bucket (bucket span clipped to the observed
    /// `[min, max]`). `None` when empty; `q` is clamped to `[0, 1]`.
    ///
    /// The result stays within one log2 bucket of the exact nearest-rank
    /// value (between 0.5× and 2× it), and — unlike the former
    /// edge-clamping answer — an interior rank reports an interior
    /// value: p99 of a spread distribution stays strictly below the max
    /// even when the top bucket holds more than 1% of the samples.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme order statistics are tracked exactly — no need to
        // approximate them from the buckets.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum;
            cum += c;
            if cum >= rank {
                // Bucket 0 has no meaningful edges; report the exact min.
                if b == 0 {
                    return Some(self.min);
                }
                // The rank-th sample is one of `c` samples inside this
                // bucket's span (clipped to the exact endpoints, which
                // tightens the extreme buckets); interpolate linearly by
                // its rank position within the bucket.
                let upper = Self::upper_edge(b);
                let lo = (upper * 0.5).max(self.min);
                let hi = upper.min(self.max);
                let pos = (rank - before) as f64 / c as f64;
                return Some((lo + pos * (hi - lo)).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Non-empty log2 buckets as `(upper_edge_seconds, count)` pairs in
    /// ascending edge order. The Prometheus exporter turns these into
    /// cumulative `le` buckets; bucket 0 (underflow: zero/negative/
    /// subnormal samples) reports the smallest representable edge.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (Self::upper_edge(b), c))
    }

    /// Folds `other` into `self` (bucket-wise addition; min/max/sum/count
    /// combine exactly). Merging then querying equals querying a
    /// histogram that recorded both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile over raw samples, the reference the
    /// bucketed answer is compared against.
    fn exact_quantile(samples: &[f64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn exact_statistics_match_the_sample_stream() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [3e-6, 1e-6, 2e-6, 8e-6] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1e-6));
        assert_eq!(h.max(), Some(8e-6));
        assert!((h.sum() - 14e-6).abs() < 1e-18);
        assert!((h.mean().unwrap() - 3.5e-6).abs() < 1e-18);
    }

    #[test]
    fn quantiles_stay_within_one_log2_bucket_of_exact() {
        // A skewed latency-like distribution spanning several decades.
        let samples: Vec<f64> = (1..=1000).map(|i| 1e-6 * (i as f64).powf(1.7)).collect();
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&samples, q);
            let approx = h.quantile(q).unwrap();
            // Interpolation keeps the answer inside the exact value's
            // log2 bucket: between 0.5× and 2× the true order statistic.
            assert!(
                approx >= exact * 0.5 && approx <= exact * 2.0,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        // Extremes are exact, not bucketed.
        assert_eq!(h.quantile(0.0), Some(samples[0]));
        assert_eq!(h.quantile(1.0).unwrap(), *samples.last().unwrap());
    }

    /// Regression for the small-n quantile wart: with a linear spread the
    /// top log2 bucket holds far more than 1% of the samples, and the old
    /// edge-clamping quantile answered `max` for p99 (the bucket's upper
    /// edge, clamped). Interpolation must report an interior value.
    #[test]
    fn interior_quantiles_stay_strictly_below_the_max() {
        let samples: Vec<f64> = (1..=300).map(|i| 1e-6 * i as f64).collect();
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let p99 = h.quantile(0.99).unwrap();
        let max = h.max().unwrap();
        assert!(p99 < max, "p99 {p99} must not collapse onto max {max}");
        let exact = exact_quantile(&samples, 0.99);
        assert!(
            p99 >= exact * 0.5 && p99 <= exact * 2.0,
            "p99 {p99} vs exact {exact}"
        );
        // Quantiles remain monotone in q.
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
    }

    /// Seeded property: merging two histograms answers every quantile
    /// exactly as if one histogram had recorded the concatenated stream,
    /// and recording after a merge keeps the exact min/max endpoints.
    #[test]
    fn merge_matches_concatenated_stream_under_random_streams() {
        let mut rng = manet_util::Rng::seed_from_u64(0xC0FFEE);
        for case in 0..20u64 {
            let n_a = 1 + rng.usize_below(200);
            let n_b = 1 + rng.usize_below(200);
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            let mut both = Histogram::new();
            // Log-uniform samples spanning ~9 decades of seconds.
            let draw = |rng: &mut manet_util::Rng| 10f64.powf(rng.f64_range(-9.0..0.0));
            for _ in 0..n_a {
                let v = draw(&mut rng);
                a.record(v);
                both.record(v);
            }
            for _ in 0..n_b {
                let v = draw(&mut rng);
                b.record(v);
                both.record(v);
            }
            a.merge(&b);
            // Counts and endpoints are exact; the sum differs only by
            // float-addition order (merge adds the two partial sums).
            assert_eq!(a.count(), both.count(), "case {case}");
            assert_eq!(a.min(), both.min(), "case {case}");
            assert_eq!(a.max(), both.max(), "case {case}");
            assert!(
                (a.sum() - both.sum()).abs() <= 1e-12 * both.sum().abs(),
                "case {case}: sums diverged beyond rounding"
            );
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(
                    a.quantile(q),
                    both.quantile(q),
                    "case {case}: quantile q={q} diverged after merge"
                );
            }
            // Recording after the merge keeps endpoints exact: push one
            // sample below and one above everything seen so far.
            let old_min = a.min().unwrap();
            let old_max = a.max().unwrap();
            a.record(old_min * 0.25);
            a.record(old_max * 4.0);
            assert_eq!(a.min(), Some(old_min * 0.25));
            assert_eq!(a.max(), Some(old_max * 4.0));
            assert_eq!(a.quantile(0.0), Some(old_min * 0.25));
            assert_eq!(a.quantile(1.0), Some(old_max * 4.0));
        }
    }

    #[test]
    fn buckets_iterate_non_empty_cells_in_edge_order() {
        let mut h = Histogram::new();
        for v in [1e-6, 1.5e-6, 3e-3, 0.5] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        // 1e-6 and 1.5e-6 share one log2 bucket.
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].1, 2);
    }

    #[test]
    fn degenerate_and_out_of_range_samples_land_safely() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-1.0); // clock went backwards: underflow bucket
        h.record(f64::MIN_POSITIVE / 2.0); // subnormal
        h.record(1e9); // beyond the top regular bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(-1.0));
        assert_eq!(h.max(), Some(1e9));
        // Quantiles stay inside the observed range even for the
        // overflow/underflow buckets.
        let p = h.quantile(0.999).unwrap();
        assert!((-1.0..=1e9).contains(&p));
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let (a_samples, b_samples): (Vec<f64>, Vec<f64>) = (
            (1..=50).map(|i| 1e-5 * i as f64).collect(),
            (1..=80).map(|i| 3e-4 * i as f64).collect(),
        );
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &a_samples {
            a.record(v);
            both.record(v);
        }
        for &v in &b_samples {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 130);
    }

    #[test]
    fn footprint_is_a_compile_time_constant() {
        // The O(1)-memory contract: the struct holds no heap data, so its
        // size bounds the cost per tracked distribution forever.
        let mut h = Histogram::new();
        let size = std::mem::size_of_val(&h);
        for i in 0..100_000 {
            h.record(1e-6 * (i % 977) as f64);
        }
        assert_eq!(std::mem::size_of_val(&h), size);
        assert_eq!(h.count(), 100_000);
        assert_eq!(size, std::mem::size_of::<Histogram>());
    }
}
