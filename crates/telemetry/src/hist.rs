//! Fixed-capacity streaming histograms for wall-clock latencies.
//!
//! [`Histogram`] is the telemetry plane's answer to "keep a latency
//! distribution forever without growing": 64 log2-spaced buckets plus
//! exact count / sum / min / max, all inline in the struct — recording is
//! O(1), allocation-free, and the memory footprint is a compile-time
//! constant regardless of how many samples arrive. That makes it safe for
//! the long-running server path where the old per-sample `Vec`s inside
//! the profiler were an unbounded leak.
//!
//! Quantiles are approximate: a query returns the upper edge of the
//! bucket holding the nearest-rank sample, clamped to the observed
//! `[min, max]` range. Because buckets are powers of two, the answer is
//! always within one log2 bucket of the exact order statistic (at most
//! 2× the true value, never below it) — pinned by a regression test in
//! `profiler.rs` against the exact nearest-rank reference.

/// Number of log2 buckets (compile-time capacity of a [`Histogram`]).
pub const HIST_BUCKETS: usize = 64;

/// Binary exponent covered by the first regular bucket: bucket 1 spans
/// `[2^MIN_EXP, 2^(MIN_EXP+1))` seconds. With 62 regular buckets the
/// histogram resolves ~9e-13 s .. ~4.4e6 s; bucket 0 catches underflow
/// (zero, negatives, subnormals) and bucket 63 catches overflow.
const MIN_EXP: i64 = -40;

/// A zero-alloc streaming histogram over non-negative `f64` samples
/// (seconds), with exact count/sum/min/max and log2-bucketed quantiles.
///
/// The struct is plain data: `record` touches no heap, `merge` adds two
/// histograms bucket-wise, and `size_of::<Histogram>()` bounds the memory
/// per tracked distribution forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a sample: 0 for anything not strictly positive
    /// and normal (zero, negative, subnormal), 63 for overflow, else the
    /// sample's binary exponent shifted into range.
    fn bucket(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let e = ((v.to_bits() >> 52) & 0x7ff) as i64;
        if e == 0 {
            return 0; // subnormal: below every regular bucket
        }
        (e - 1023 - MIN_EXP + 1).clamp(0, HIST_BUCKETS as i64 - 1) as usize
    }

    /// Upper edge of bucket `b` in seconds (`2^(b + MIN_EXP)`).
    fn upper_edge(b: usize) -> f64 {
        f64::exp2((b as i64 + MIN_EXP) as f64)
    }

    /// Records one sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.counts[Self::bucket(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (exact); `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (exact); `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (exact); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Nearest-rank quantile, approximated to the containing log2
    /// bucket's upper edge and clamped to the observed `[min, max]`.
    /// `None` when empty; `q` is clamped to `[0, 1]`.
    ///
    /// The result never undershoots the exact nearest-rank value and
    /// overshoots by at most one bucket (a factor of 2).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme order statistics are tracked exactly — no need to
        // approximate them from the buckets.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Bucket 0 has no meaningful edge; report the exact min.
                let edge = if b == 0 {
                    self.min
                } else {
                    Self::upper_edge(b)
                };
                return Some(edge.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Folds `other` into `self` (bucket-wise addition; min/max/sum/count
    /// combine exactly). Merging then querying equals querying a
    /// histogram that recorded both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile over raw samples, the reference the
    /// bucketed answer is compared against.
    fn exact_quantile(samples: &[f64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn exact_statistics_match_the_sample_stream() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [3e-6, 1e-6, 2e-6, 8e-6] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1e-6));
        assert_eq!(h.max(), Some(8e-6));
        assert!((h.sum() - 14e-6).abs() < 1e-18);
        assert!((h.mean().unwrap() - 3.5e-6).abs() < 1e-18);
    }

    #[test]
    fn quantiles_stay_within_one_log2_bucket_of_exact() {
        // A skewed latency-like distribution spanning several decades.
        let samples: Vec<f64> = (1..=1000).map(|i| 1e-6 * (i as f64).powf(1.7)).collect();
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&samples, q);
            let approx = h.quantile(q).unwrap();
            assert!(
                approx >= exact && approx <= exact * 2.0,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        // Extremes are exact, not bucketed.
        assert_eq!(h.quantile(0.0), Some(samples[0]));
        assert_eq!(h.quantile(1.0).unwrap(), *samples.last().unwrap());
    }

    #[test]
    fn degenerate_and_out_of_range_samples_land_safely() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-1.0); // clock went backwards: underflow bucket
        h.record(f64::MIN_POSITIVE / 2.0); // subnormal
        h.record(1e9); // beyond the top regular bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(-1.0));
        assert_eq!(h.max(), Some(1e9));
        // Quantiles stay inside the observed range even for the
        // overflow/underflow buckets.
        let p = h.quantile(0.999).unwrap();
        assert!((-1.0..=1e9).contains(&p));
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let (a_samples, b_samples): (Vec<f64>, Vec<f64>) = (
            (1..=50).map(|i| 1e-5 * i as f64).collect(),
            (1..=80).map(|i| 3e-4 * i as f64).collect(),
        );
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &a_samples {
            a.record(v);
            both.record(v);
        }
        for &v in &b_samples {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 130);
    }

    #[test]
    fn footprint_is_a_compile_time_constant() {
        // The O(1)-memory contract: the struct holds no heap data, so its
        // size bounds the cost per tracked distribution forever.
        let mut h = Histogram::new();
        let size = std::mem::size_of_val(&h);
        for i in 0..100_000 {
            h.record(1e-6 * (i % 977) as f64);
        }
        assert_eq!(std::mem::size_of_val(&h), size);
        assert_eq!(h.count(), 100_000);
        assert_eq!(size, std::mem::size_of::<Histogram>());
    }
}
