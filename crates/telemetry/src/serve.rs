//! The live exporter: a zero-dependency HTTP endpoint over
//! `std::net::TcpListener` serving the telemetry plane while a run is in
//! flight.
//!
//! The design keeps the simulation hot path untouched: the tick loop
//! renders a [`TelemetrySnapshot`] once per tumbling window (not per
//! tick) and hands it to a [`Publisher`], which swaps an
//! `Arc<TelemetrySnapshot>` behind a mutex — the serving thread clones
//! the `Arc` out under the lock and formats responses from the immutable
//! snapshot, so a slow scraper can never stall the simulation and the
//! lock is held only for pointer swaps. With no server running nothing
//! is published and the run is bit-identical to an unserved one.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the latest Prometheus text-exposition snapshot
//!   (the same format `--metrics-out` writes at end of run).
//! * `GET /health` — plain-text `key value` lines: current tick, sim
//!   time, tick rate, seconds since the last published window, and the
//!   audit-violation count.
//! * `GET /flight` — the flight recorder's current ring as JSONL (empty
//!   body when no flight recorder is armed).
//! * `GET /quit` — asks the hosting process to stop serving (used by
//!   `scripts/verify.sh` to end the post-run hold deterministically).
//!
//! The server answers one request per connection (`Connection: close`),
//! which every scraper and `curl` handles. The minimal HTTP plumbing —
//! [`read_request`] / [`write_response`] over an [`HttpRequest`] — is
//! public so sibling endpoints (the `manet-jobs` server) speak the exact
//! same dialect: `HTTP/1.1` status lines, explicit `Content-Length`, one
//! request per connection, unknown paths answered with a proper `404`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on an accepted request body (a scenario spec is well under
/// a kilobyte; anything larger is a misdirected upload, not a spec).
pub const MAX_REQUEST_BODY: usize = 1 << 20;

/// One parsed HTTP request: the request line plus the body, when a
/// `Content-Length` header announced one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path, as sent (no query-string splitting — none of the
    /// served endpoints take parameters).
    pub path: String,
    /// Request body (empty unless `Content-Length` was present).
    pub body: String,
}

/// Reads one HTTP request — request line, headers, and a
/// `Content-Length`-delimited body — from a buffered stream.
///
/// # Errors
///
/// Returns `InvalidData` on a malformed request line, an unparseable or
/// oversized `Content-Length`, or a non-UTF-8 body; propagates transport
/// errors (including read timeouts) as-is.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<HttpRequest> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(bad("malformed request line"));
    };
    let (method, path) = (method.to_string(), path.to_string());
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("unparseable Content-Length"))?;
                if content_length > MAX_REQUEST_BODY {
                    return Err(bad("request body too large"));
                }
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    Ok(HttpRequest { method, path, body })
}

/// Writes one `HTTP/1.1` response with an explicit `Content-Length` and
/// `Connection: close` — the shared response shape of every plane
/// endpoint. `status` is the full status phrase (`"200 OK"`,
/// `"404 Not Found"`, …).
///
/// # Errors
///
/// Propagates transport errors (including write timeouts).
pub fn write_response<W: Write>(
    stream: &mut W,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// One published view of a running simulation, rendered by the tick loop
/// once per tumbling window and served immutably until the next publish.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Prometheus text exposition (see `prometheus_text_with_shards`).
    pub metrics: String,
    /// Ticks completed so far.
    pub tick: u64,
    /// Simulation time at publish, seconds.
    pub sim_time: f64,
    /// Wall-clock tick throughput since the run started, ticks/second.
    pub ticks_per_sec: f64,
    /// Audit violations recorded so far (0 when auditing is off).
    pub audit_violations: u64,
    /// Flight-recorder ring as JSONL (empty when no recorder is armed).
    pub flight: String,
}

/// State shared between the run loop (via [`Publisher`]) and the serving
/// thread.
#[derive(Debug)]
struct Shared {
    /// The current snapshot plus the wall-clock instant it was published.
    snapshot: Mutex<(Arc<TelemetrySnapshot>, Option<Instant>)>,
    /// Set by shutdown to end the accept loop.
    stop: AtomicBool,
    /// Set by `GET /quit`; the hosting process polls it to end a hold.
    quit: AtomicBool,
}

/// The run loop's handle for publishing snapshots; cheap to clone, safe
/// to call from any thread. Publishing is a pointer swap under a mutex —
/// O(1) in the snapshot size and independent of any connected scraper.
#[derive(Debug, Clone)]
pub struct Publisher {
    shared: Arc<Shared>,
}

impl Publisher {
    /// Swaps in a freshly rendered snapshot.
    pub fn publish(&self, snapshot: TelemetrySnapshot) {
        let mut cell = self.shared.snapshot.lock().expect("snapshot lock");
        *cell = (Arc::new(snapshot), Some(Instant::now()));
    }

    /// Whether a scraper requested `GET /quit`.
    pub fn quit_requested(&self) -> bool {
        self.shared.quit.load(Ordering::Relaxed)
    }
}

/// The live metrics endpoint: a background thread accepting plain-HTTP
/// scrapes of the latest published snapshot. Dropping the server (or
/// calling [`MetricsServer::shutdown`]) stops the thread and closes the
/// listener; the join is bounded because shutdown wakes the accept loop
/// with a loopback connection.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks an ephemeral
    /// port — read the result from [`MetricsServer::local_addr`]) and
    /// starts the serving thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission, parse).
    pub fn serve<A: ToSocketAddrs>(addr: A) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            snapshot: Mutex::new((Arc::new(TelemetrySnapshot::default()), None)),
            stop: AtomicBool::new(false),
            quit: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("manet-metrics".into())
            .spawn(move || accept_loop(listener, &thread_shared))
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            shared,
            handle: Some(handle),
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable publishing handle for the run loop.
    pub fn publisher(&self) -> Publisher {
        Publisher {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Whether a scraper requested `GET /quit`.
    pub fn quit_requested(&self) -> bool {
        self.shared.quit.load(Ordering::Relaxed)
    }

    /// Blocks up to `max`, returning early (true) when `GET /quit`
    /// arrives — the post-run hold `--serve-hold` uses.
    pub fn wait_for_quit(&self, max: Duration) -> bool {
        let deadline = Instant::now() + max;
        while Instant::now() < deadline {
            if self.quit_requested() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        self.quit_requested()
    }

    /// Stops the serving thread and joins it. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::Relaxed) {
            return; // the shutdown wake-up connection
        }
        let _ = handle_connection(stream, shared);
    }
}

/// Reads one request and writes one response. Errors are returned only
/// to be discarded — a broken scraper must never affect the run.
fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let request = read_request(&mut reader)?;
    let (snapshot, published_at) = {
        let cell = shared.snapshot.lock().expect("snapshot lock");
        (Arc::clone(&cell.0), cell.1)
    };
    let (status, body) = match request.path.as_str() {
        "/metrics" => ("200 OK", snapshot.metrics.clone()),
        "/health" => ("200 OK", health_body(&snapshot, published_at)),
        "/flight" => ("200 OK", snapshot.flight.clone()),
        "/quit" => {
            shared.quit.store(true, Ordering::Relaxed);
            ("200 OK", "quitting\n".to_string())
        }
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write_response(
        &mut stream,
        status,
        "text/plain; version=0.0.4; charset=utf-8",
        &body,
    )
}

/// Renders the `/health` body: `key value` lines, one per fact.
fn health_body(snapshot: &TelemetrySnapshot, published_at: Option<Instant>) -> String {
    let age = published_at.map_or(-1.0, |t| t.elapsed().as_secs_f64());
    format!(
        "status {}\ntick {}\nsim_time {:.3}\nticks_per_sec {:.2}\nlast_tick_age_secs {:.3}\naudit_violations {}\n",
        if published_at.is_some() { "ok" } else { "starting" },
        snapshot.tick,
        snapshot.sim_time,
        snapshot.ticks_per_sec,
        age,
        snapshot.audit_violations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// One GET against the server, returning (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response.lines().next().unwrap_or_default().to_string();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_published_snapshots_and_shuts_down_cleanly() {
        let mut server = MetricsServer::serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        // Before any publish: /health reports starting, /metrics empty.
        let (status, body) = get(addr, "/health");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("status starting"), "{body}");
        assert!(body.contains("last_tick_age_secs -1.000"), "{body}");

        let publisher = server.publisher();
        publisher.publish(TelemetrySnapshot {
            metrics: "# TYPE manet_msgs_total counter\nmanet_msgs_total{class=\"HELLO\"} 42\n"
                .into(),
            tick: 480,
            sim_time: 120.0,
            ticks_per_sec: 96.5,
            audit_violations: 1,
            flight: "{\"type\":\"meta\",\"label\":\"x\"}\n".into(),
        });

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"));
        assert!(body.contains("manet_msgs_total{class=\"HELLO\"} 42"));

        let (_, body) = get(addr, "/health");
        assert!(body.contains("status ok"), "{body}");
        assert!(body.contains("tick 480"));
        assert!(body.contains("ticks_per_sec 96.50"));
        assert!(body.contains("audit_violations 1"));

        let (_, body) = get(addr, "/flight");
        assert!(body.contains("\"type\":\"meta\""));

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        assert!(!server.quit_requested());
        let (status, body) = get(addr, "/quit");
        assert!(status.contains("200"));
        assert!(body.contains("quitting"));
        assert!(server.quit_requested());
        assert!(publisher.quit_requested());
        assert!(server.wait_for_quit(Duration::from_millis(10)));

        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may briefly accept on a closing socket; a second
                // attempt after the listener is joined must fail.
                std::thread::sleep(Duration::from_millis(50));
                TcpStream::connect(addr).is_err()
            },
            "listener must be closed after shutdown"
        );
    }

    /// The satellite fix pinned: unknown paths answer with a full
    /// `HTTP/1.1 404` status line and `Connection: close`, so scrapers
    /// and load balancers see a well-formed refusal instead of an
    /// under-specified `HTTP/1.0` one.
    #[test]
    fn unknown_paths_get_a_proper_http11_404() {
        let server = MetricsServer::serve("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(
            stream,
            "GET /definitely/not/here HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(
            response.starts_with("HTTP/1.1 404 Not Found\r\n"),
            "{response}"
        );
        assert!(response.contains("Connection: close\r\n"), "{response}");
        assert!(response.ends_with("not found\n"), "{response}");
    }

    #[test]
    fn read_request_parses_method_path_and_body() {
        let raw = "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(&mut io::Cursor::new(raw)).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "hello world");

        let raw = "GET /health HTTP/1.1\r\n\r\n";
        let req = read_request(&mut io::Cursor::new(raw)).expect("parse");
        assert_eq!((req.method.as_str(), req.body.as_str()), ("GET", ""));
    }

    #[test]
    fn read_request_rejects_malformed_input() {
        for raw in [
            "\r\n",                                                    // no request line
            "GET\r\n\r\n",                                             // no path
            "POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n",     // bad length
            "POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", // oversized
        ] {
            let err = read_request(&mut io::Cursor::new(raw)).expect_err(raw);
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
        // A truncated body is a transport error, not InvalidData.
        let raw = "POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut io::Cursor::new(raw)).is_err());
    }

    #[test]
    fn publisher_swap_is_last_write_wins() {
        let server = MetricsServer::serve("127.0.0.1:0").expect("bind");
        let publisher = server.publisher();
        for tick in 1..=5u64 {
            publisher.publish(TelemetrySnapshot {
                tick,
                ..TelemetrySnapshot::default()
            });
        }
        let (_, body) = get(server.local_addr(), "/health");
        assert!(body.contains("tick 5"), "{body}");
    }
}
