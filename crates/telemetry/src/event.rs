//! Structured events, the [`Subscriber`] sink trait, and the [`Probe`]
//! handle layers use to emit them.
//!
//! The design mirrors the fault plane's `FaultHooks` pattern: every
//! instrumented code path takes a `&mut Probe`, whose disabled form
//! ([`Probe::off`]) contains two `None`s. The `#[inline]` emit/phase hooks
//! then collapse to a branch on a `None` that the optimizer removes, so an
//! untraced run is bit-identical to a build where telemetry was never
//! attached (guarded by the counters-parity integration test).

use crate::cause::{Cause, CauseId, CauseTracker, RootCause};
use crate::profiler::{Phase, PhaseProfiler};
use crate::span::{SpanLabel, SpanRecorder, SpanStart};
use std::time::{Duration, Instant};

/// Identifier of a node (mirrors `manet_sim::NodeId`; the telemetry crate
/// sits below the simulator in the dependency graph and cannot import it).
pub type NodeId = u32;

/// The protocol layer an event originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// The simulation world: links, churn, world-driven HELLO accounting.
    Sim,
    /// The HELLO protocol proper (`manet-sim::hello`).
    Hello,
    /// Cluster maintenance and repair (`manet-cluster`).
    Cluster,
    /// Intra-cluster routing (`manet-routing`).
    Routing,
}

impl Layer {
    /// All layers, in display order.
    pub const ALL: [Layer; 4] = [Layer::Sim, Layer::Hello, Layer::Cluster, Layer::Routing];

    /// Stable lowercase name (used in JSONL traces).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Sim => "sim",
            Layer::Hello => "hello",
            Layer::Cluster => "cluster",
            Layer::Routing => "routing",
        }
    }

    /// Inverse of [`Layer::name`].
    pub fn from_name(name: &str) -> Option<Layer> {
        Layer::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// Control-message category, mirroring `manet_sim::MessageKind` one-to-one
/// (the simulator provides the `From<MessageKind>` conversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Neighbor-discovery beacon.
    Hello,
    /// Cluster-maintenance message.
    Cluster,
    /// Proactive intra-cluster routing update.
    Route,
    /// Reactive inter-cluster route request.
    RouteRequest,
    /// Reactive inter-cluster route reply.
    RouteReply,
    /// Full-table dump of the flat proactive baseline.
    TableDump,
    /// Backoff-scheduled resend of a lost CLUSTER message.
    Retransmit,
    /// Fault-repair traffic.
    Repair,
}

impl MsgClass {
    /// All classes, in `MessageKind` index order.
    pub const ALL: [MsgClass; 8] = [
        MsgClass::Hello,
        MsgClass::Cluster,
        MsgClass::Route,
        MsgClass::RouteRequest,
        MsgClass::RouteReply,
        MsgClass::TableDump,
        MsgClass::Retransmit,
        MsgClass::Repair,
    ];

    /// Dense index (identical to `MessageKind::index` on the sim side).
    pub fn index(self) -> usize {
        match self {
            MsgClass::Hello => 0,
            MsgClass::Cluster => 1,
            MsgClass::Route => 2,
            MsgClass::RouteRequest => 3,
            MsgClass::RouteReply => 4,
            MsgClass::TableDump => 5,
            MsgClass::Retransmit => 6,
            MsgClass::Repair => 7,
        }
    }

    /// Stable uppercase name matching `MessageKind`'s `Display`.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Hello => "HELLO",
            MsgClass::Cluster => "CLUSTER",
            MsgClass::Route => "ROUTE",
            MsgClass::RouteRequest => "RREQ",
            MsgClass::RouteReply => "RREP",
            MsgClass::TableDump => "TABLE",
            MsgClass::Retransmit => "RETX",
            MsgClass::Repair => "REPAIR",
        }
    }

    /// Inverse of [`MsgClass::name`].
    pub fn from_name(name: &str) -> Option<MsgClass> {
        MsgClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// What happened. Counts are batched per tick where the source naturally
/// produces batches (`MsgSent`/`MsgLost`) and unitary where identity
/// matters (role changes, churn, links).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A link formed between `a < b`.
    LinkUp {
        /// Lower endpoint.
        a: NodeId,
        /// Higher endpoint.
        b: NodeId,
    },
    /// A link broke between `a < b`.
    LinkDown {
        /// Lower endpoint.
        a: NodeId,
        /// Higher endpoint.
        b: NodeId,
    },
    /// A node crashed (churn schedule).
    NodeCrashed {
        /// The node that went down.
        node: NodeId,
    },
    /// A node recovered (churn schedule).
    NodeRecovered {
        /// The node that came back up.
        node: NodeId,
    },
    /// `count` control messages of `class` were transmitted (attempted —
    /// overhead is paid at the sender whether or not the channel delivers).
    MsgSent {
        /// Message category.
        class: MsgClass,
        /// Number of messages.
        count: u64,
    },
    /// `count` deliveries of `class` were dropped by the fault plane.
    MsgLost {
        /// Message category.
        class: MsgClass,
        /// Number of lost deliveries.
        count: u64,
    },
    /// A node became a cluster-head (self-promotion during maintenance;
    /// initial formation is not traced, matching the paper's accounting).
    HeadElected {
        /// The promoted node.
        node: NodeId,
    },
    /// A head resigned after a head–head contact and re-homed.
    HeadResigned {
        /// The resigning head.
        node: NodeId,
        /// The head it affiliated with.
        new_head: NodeId,
    },
    /// A member switched clusters.
    MemberReaffiliated {
        /// The re-homed member.
        member: NodeId,
        /// Its new head.
        head: NodeId,
    },
    /// A member lost its head (link break, resignation, or crash) and is
    /// orphaned until re-homed — the anchor of a `HeadLoss` root cause.
    HeadLost {
        /// The orphaned member.
        member: NodeId,
        /// The head it lost.
        head: NodeId,
    },
    /// A cluster started `rounds` ROUTE broadcast round(s).
    RouteRoundStarted {
        /// The cluster's head.
        head: NodeId,
        /// Cluster size (messages per round).
        size: u64,
        /// Rounds charged this pass.
        rounds: u64,
    },
    /// A lost CLUSTER send entered backoff: the node will retry after
    /// `wait_ticks` maintenance ticks.
    RetxScheduled {
        /// The backing-off sender.
        node: NodeId,
        /// Ticks until the retry gate opens.
        wait_ticks: u64,
    },
    /// Periodic gauge: current number of cluster-heads.
    ClusterGauge {
        /// Head count at sample time.
        heads: u64,
    },
    /// A shard-interconnect batch from `src` to `dst` (ghost sync or an
    /// owner migration) was dropped by the interconnect channel.
    InterconnectLost {
        /// Sending shard (row-major index).
        src: u16,
        /// Receiving shard.
        dst: u16,
        /// Entries in the lost batch (1 for a migration).
        count: u64,
    },
    /// A shard's interconnect endpoints froze (stall schedule): it stops
    /// sending and receiving shard messages for `ticks` ticks.
    InterconnectStalled {
        /// The stalled shard.
        shard: u16,
        /// Stall duration in ticks.
        ticks: u64,
    },
    /// The ghost view of `src` held by `dst` exceeded the staleness bound
    /// and was conservatively dropped (boundary links to that peer vanish
    /// until the link recovers).
    GhostStale {
        /// Shard whose ghosts went stale.
        src: u16,
        /// Shard holding the stale view.
        dst: u16,
        /// Age of the dropped view in ticks.
        staleness: u64,
        /// Ghost entries dropped.
        dropped: u64,
    },
    /// A shard link delivered again after one or more missed syncs; the
    /// receiver resynchronized its ghost view from the fresh batch.
    InterconnectRecovered {
        /// Sending shard.
        src: u16,
        /// Receiving shard.
        dst: u16,
        /// Ghost entries in the resynchronized view.
        resync: u64,
    },
}

impl EventKind {
    /// Stable snake_case name (used in JSONL traces).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::LinkUp { .. } => "link_up",
            EventKind::LinkDown { .. } => "link_down",
            EventKind::NodeCrashed { .. } => "node_crashed",
            EventKind::NodeRecovered { .. } => "node_recovered",
            EventKind::MsgSent { .. } => "msg_sent",
            EventKind::MsgLost { .. } => "msg_lost",
            EventKind::HeadElected { .. } => "head_elected",
            EventKind::HeadResigned { .. } => "head_resigned",
            EventKind::MemberReaffiliated { .. } => "member_reaffiliated",
            EventKind::HeadLost { .. } => "head_lost",
            EventKind::RouteRoundStarted { .. } => "route_round_started",
            EventKind::RetxScheduled { .. } => "retx_scheduled",
            EventKind::ClusterGauge { .. } => "cluster_gauge",
            EventKind::InterconnectLost { .. } => "interconnect_lost",
            EventKind::InterconnectStalled { .. } => "interconnect_stalled",
            EventKind::GhostStale { .. } => "ghost_stale",
            EventKind::InterconnectRecovered { .. } => "interconnect_recovered",
        }
    }
}

/// One structured telemetry event: when, from which layer, what, and
/// (with attribution enabled) why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time, seconds.
    pub time: f64,
    /// Originating layer.
    pub layer: Layer,
    /// Payload.
    pub kind: EventKind,
    /// Root cause, when a [`CauseTracker`] is attached; `None` otherwise.
    pub cause: Option<Cause>,
}

/// A sink for telemetry events.
///
/// Implementations must tolerate events arriving out of strict time order
/// within one tick (layers are driven sequentially at the same sim time).
pub trait Subscriber {
    /// Receives one event.
    fn event(&mut self, event: &Event);
}

/// The static no-op sink: receives and discards.
///
/// Attaching a `NoopSubscriber` must leave every simulation observable
/// (counters, roles, positions, RNG state) bit-identical to a run with no
/// subscriber at all — the telemetry plane's zero-cost contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    #[inline]
    fn event(&mut self, _event: &Event) {}
}

/// The handle instrumented code paths thread through the stack: an optional
/// event sink, an optional tick-phase profiler, an optional cause tracker
/// for root-cause attribution, and an optional span recorder for the
/// hierarchical wall-clock timeline.
///
/// [`Probe::off`] is the zero-cost disabled form; every hook is `#[inline]`
/// and reduces to a `None` check.
#[derive(Debug, Default)]
pub struct Probe<'a> {
    sub: Option<&'a mut dyn Subscriber>,
    prof: Option<&'a mut PhaseProfiler>,
    causes: Option<&'a mut CauseTracker>,
    spans: Option<&'a mut SpanRecorder>,
}

impl std::fmt::Debug for dyn Subscriber + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Subscriber")
    }
}

impl<'a> Probe<'a> {
    /// The disabled probe: no subscriber, no profiler, no attribution,
    /// no spans.
    #[inline]
    pub fn off() -> Probe<'static> {
        Probe {
            sub: None,
            prof: None,
            causes: None,
            spans: None,
        }
    }

    /// A probe from optional parts (no attribution; see
    /// [`Probe::with_causes`]).
    pub fn new(
        sub: Option<&'a mut dyn Subscriber>,
        prof: Option<&'a mut PhaseProfiler>,
    ) -> Probe<'a> {
        Probe {
            sub,
            prof,
            causes: None,
            spans: None,
        }
    }

    /// A probe from optional parts including a cause tracker.
    pub fn with_causes(
        sub: Option<&'a mut dyn Subscriber>,
        prof: Option<&'a mut PhaseProfiler>,
        causes: Option<&'a mut CauseTracker>,
    ) -> Probe<'a> {
        Probe {
            sub,
            prof,
            causes,
            spans: None,
        }
    }

    /// A tracing-only probe (no profiling, no attribution).
    pub fn subscriber(sub: &'a mut dyn Subscriber) -> Probe<'a> {
        Probe {
            sub: Some(sub),
            prof: None,
            causes: None,
            spans: None,
        }
    }

    /// Attaches (or detaches) a span recorder, builder style. The span
    /// plane is orthogonal to the other probe parts: a probe can record
    /// spans without a profiler and vice versa.
    #[must_use]
    pub fn with_spans(mut self, spans: Option<&'a mut SpanRecorder>) -> Probe<'a> {
        self.spans = spans;
        self
    }

    /// Whether a subscriber is attached.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.sub.is_some()
    }

    /// Whether a profiler is attached.
    #[inline]
    pub fn is_profiling(&self) -> bool {
        self.prof.is_some()
    }

    /// Whether a cause tracker is attached (attribution enabled).
    #[inline]
    pub fn is_attributing(&self) -> bool {
        self.causes.is_some()
    }

    /// Whether a span recorder is attached.
    #[inline]
    pub fn is_spanning(&self) -> bool {
        self.spans.is_some()
    }

    /// The attached cause tracker, if any.
    #[inline]
    pub fn causes(&mut self) -> Option<&mut CauseTracker> {
        self.causes.as_deref_mut()
    }

    /// Allocates a fresh root cause when attribution is enabled (`None`
    /// otherwise, so disabled paths pay one branch).
    #[inline]
    pub fn root(&mut self, root: RootCause) -> Option<Cause> {
        self.causes.as_deref_mut().map(|t| t.allocate(root))
    }

    /// Emits one uncaused event (no-op without a subscriber).
    #[inline]
    pub fn emit(&mut self, time: f64, layer: Layer, kind: EventKind) {
        self.emit_caused(time, layer, kind, None);
    }

    /// Emits one event carrying an optional cause (no-op without a
    /// subscriber).
    #[inline]
    pub fn emit_caused(&mut self, time: f64, layer: Layer, kind: EventKind, cause: Option<Cause>) {
        if let Some(sub) = self.sub.as_deref_mut() {
            sub.event(&Event {
                time,
                layer,
                kind,
                cause,
            });
        }
    }

    /// Runs `f`, charging its wall-clock time to `phase` when a profiler
    /// or span recorder is attached. Use
    /// [`Probe::phase_start`]/[`Probe::phase_end`] instead when the timed
    /// region itself needs the probe.
    #[inline]
    pub fn phase<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t0 = self.phase_start();
        let out = f();
        self.phase_end(phase, t0);
        out
    }

    /// Starts timing a phase whose body needs `&mut self` (returns `None`
    /// when neither a profiler nor a span recorder is attached, so the
    /// disabled path never reads the clock).
    #[inline]
    pub fn phase_start(&mut self) -> Option<SpanStart> {
        if let Some(spans) = self.spans.as_deref_mut() {
            return Some(spans.open());
        }
        if self.prof.is_some() {
            return Some(SpanStart::untracked());
        }
        None
    }

    /// Ends a timing started by [`Probe::phase_start`]: the elapsed time
    /// is recorded into the profiler (flat per-phase histogram) and
    /// closed as a `Stage` span — each from the same single clock read.
    #[inline]
    pub fn phase_end(&mut self, phase: Phase, start: Option<SpanStart>) {
        let Some(t0) = start else { return };
        let dur = t0.at.elapsed();
        if let Some(prof) = self.prof.as_deref_mut() {
            prof.record(phase, dur.as_secs_f64());
        }
        if let Some(spans) = self.spans.as_deref_mut() {
            spans.close_with(t0, SpanLabel::Stage(phase), None, None, dur);
        }
    }

    /// Opens the root tick span (and advances the recorder's tick
    /// counter). `None` without a span recorder — the tick span exists
    /// only on the span plane, so a profiler-only probe pays nothing.
    #[inline]
    pub fn tick_start(&mut self) -> Option<SpanStart> {
        self.spans.as_deref_mut().map(|s| {
            s.start_tick();
            s.open()
        })
    }

    /// Closes the root tick span opened by [`Probe::tick_start`].
    #[inline]
    pub fn tick_end(&mut self, start: Option<SpanStart>) {
        if let (Some(spans), Some(t0)) = (self.spans.as_deref_mut(), start) {
            spans.close(t0, SpanLabel::Tick, None, None);
        }
    }

    /// Opens a leaf span (interconnect hops and other sub-stages).
    /// `None` without a span recorder, so the disabled path never reads
    /// the clock.
    #[inline]
    pub fn span_open(&mut self) -> Option<SpanStart> {
        self.spans.as_deref_mut().map(|s| s.open())
    }

    /// Closes a leaf span opened by [`Probe::span_open`], tagging it with
    /// a shard and an optional causal link into the attribution plane.
    #[inline]
    pub fn span_close(
        &mut self,
        start: Option<SpanStart>,
        label: SpanLabel,
        shard: Option<u16>,
        cause: Option<CauseId>,
    ) {
        if let (Some(spans), Some(t0)) = (self.spans.as_deref_mut(), start) {
            spans.close(t0, label, shard, cause);
        }
    }

    /// Folds in a span measured off-thread (e.g. one shard worker's
    /// compute time, recorded by the main thread after the join so
    /// sequence numbers stay deterministic and worker-count invariant).
    #[inline]
    pub fn span_sample(
        &mut self,
        label: SpanLabel,
        shard: Option<u16>,
        cause: Option<CauseId>,
        at: Instant,
        dur: Duration,
    ) {
        if let Some(spans) = self.spans.as_deref_mut() {
            spans.record_external(label, shard, cause, at, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects events for assertions.
    #[derive(Default)]
    struct Collect(Vec<Event>);

    impl Subscriber for Collect {
        fn event(&mut self, e: &Event) {
            self.0.push(*e);
        }
    }

    #[test]
    fn off_probe_is_inert() {
        let mut p = Probe::off();
        assert!(!p.is_tracing());
        assert!(!p.is_profiling());
        p.emit(1.0, Layer::Sim, EventKind::ClusterGauge { heads: 3 });
        assert_eq!(p.phase_start(), None);
        let x = p.phase(Phase::Mobility, || 41 + 1);
        assert_eq!(x, 42);
    }

    #[test]
    fn emit_reaches_the_subscriber() {
        let mut sink = Collect::default();
        {
            let mut p = Probe::subscriber(&mut sink);
            assert!(p.is_tracing());
            p.emit(0.5, Layer::Cluster, EventKind::HeadElected { node: 7 });
            p.emit(
                0.5,
                Layer::Routing,
                EventKind::RouteRoundStarted {
                    head: 2,
                    size: 5,
                    rounds: 1,
                },
            );
        }
        assert_eq!(sink.0.len(), 2);
        assert_eq!(sink.0[0].layer, Layer::Cluster);
        assert_eq!(sink.0[0].kind, EventKind::HeadElected { node: 7 });
        assert_eq!(sink.0[1].time, 0.5);
    }

    #[test]
    fn phase_records_into_the_profiler() {
        let mut prof = PhaseProfiler::new();
        {
            let mut p = Probe::new(None, Some(&mut prof));
            assert!(p.is_profiling());
            let out = p.phase(Phase::Topology, || "done");
            assert_eq!(out, "done");
            let t0 = p.phase_start();
            assert!(t0.is_some());
            p.phase_end(Phase::Cluster, t0);
        }
        assert_eq!(prof.count(Phase::Topology), 1);
        assert_eq!(prof.count(Phase::Cluster), 1);
        assert_eq!(prof.count(Phase::Mobility), 0);
    }

    /// Spans ride the same phase hooks as the profiler: one probe with
    /// both attached feeds both from a single clock read, and the span
    /// recorder also sees tick/leaf/off-thread spans the profiler never
    /// does.
    #[test]
    fn phase_hooks_feed_spans_and_profiler_together() {
        let mut prof = PhaseProfiler::new();
        let mut spans = crate::span::SpanRecorder::new();
        {
            let mut p = Probe::new(None, Some(&mut prof)).with_spans(Some(&mut spans));
            assert!(p.is_spanning());
            let tick = p.tick_start();
            assert!(tick.is_some());
            let t0 = p.phase_start();
            p.phase_end(Phase::Topology, t0);
            let s = p.span_open();
            p.span_close(s, SpanLabel::IcSend, Some(1), Some(CauseId(9)));
            p.span_sample(
                SpanLabel::ShardCompute,
                Some(0),
                None,
                Instant::now(),
                Duration::from_micros(10),
            );
            p.tick_end(tick);
        }
        assert_eq!(prof.count(Phase::Topology), 1);
        assert_eq!(spans.spans_recorded(), 4);
        assert_eq!(spans.tick(), 1);
        assert!(spans.hist(SpanLabel::Tick, None).is_some());
        assert!(spans.hist(SpanLabel::IcSend, Some(1)).is_some());
        assert!(spans.hist(SpanLabel::ShardCompute, Some(0)).is_some());
        // A spans-only probe still times phases (no profiler attached).
        let mut spans2 = crate::span::SpanRecorder::new();
        {
            let mut p = Probe::new(None, None).with_spans(Some(&mut spans2));
            assert!(!p.is_profiling());
            let t0 = p.phase_start();
            assert!(t0.is_some());
            p.phase_end(Phase::Hello, t0);
        }
        assert_eq!(
            spans2
                .hist(SpanLabel::Stage(Phase::Hello), None)
                .unwrap()
                .count(),
            1
        );
        // The disabled probe opens nothing.
        let mut p = Probe::off();
        assert!(!p.is_spanning());
        assert_eq!(p.tick_start(), None);
        assert_eq!(p.span_open(), None);
    }

    #[test]
    fn caused_emits_carry_the_allocated_root() {
        let mut sink = Collect::default();
        let mut tracker = CauseTracker::new();
        {
            let mut p = Probe::with_causes(Some(&mut sink), None, Some(&mut tracker));
            assert!(p.is_attributing());
            let cause = p.root(RootCause::HeadContact);
            assert!(cause.is_some());
            p.emit_caused(
                1.0,
                Layer::Cluster,
                EventKind::HeadResigned {
                    node: 3,
                    new_head: 1,
                },
                cause,
            );
            p.emit(1.0, Layer::Sim, EventKind::ClusterGauge { heads: 2 });
        }
        assert_eq!(tracker.allocated(), 1);
        assert_eq!(
            sink.0[0].cause.map(|c| c.root),
            Some(RootCause::HeadContact)
        );
        assert_eq!(sink.0[1].cause, None);
        // A probe without a tracker never allocates.
        let mut p = Probe::off();
        assert!(!p.is_attributing());
        assert_eq!(p.root(RootCause::LinkGen), None);
        assert!(p.causes().is_none());
    }

    #[test]
    fn names_round_trip() {
        for layer in Layer::ALL {
            assert_eq!(Layer::from_name(layer.name()), Some(layer));
        }
        for class in MsgClass::ALL {
            assert_eq!(MsgClass::from_name(class.name()), Some(class));
        }
        assert_eq!(Layer::from_name("nope"), None);
        assert_eq!(MsgClass::from_name("nope"), None);
        assert_eq!(EventKind::LinkUp { a: 0, b: 1 }.name(), "link_up");
    }

    #[test]
    fn class_indices_are_dense_and_ordered() {
        for (i, class) in MsgClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }
}
