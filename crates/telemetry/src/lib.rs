//! Telemetry plane for the clustered-MANET stack.
//!
//! The paper's claims are about *rates over time* — per-node HELLO /
//! CLUSTER / ROUTE frequencies as functions of `N`, `v`, `r`, `P` — but
//! end-of-run `Counters` totals hide transients: warmup convergence,
//! post-churn repair storms, election cascades. This crate adds the
//! missing observability without perturbing the simulation:
//!
//! * [`event`] — structured [`Event`]s (`LinkUp`/`LinkDown`,
//!   `HeadElected`/`HeadResigned`, `MemberReaffiliated`,
//!   `RouteRoundStarted`, `RetxScheduled`, `NodeCrashed`/`NodeRecovered`,
//!   batched `MsgSent`/`MsgLost`) carrying sim-time, node ids, and the
//!   originating [`Layer`]; the [`Subscriber`] sink trait; and the
//!   [`Probe`] handle instrumented code paths thread through the stack.
//!   [`Probe::off`] is the zero-cost disabled form — all hooks are
//!   `#[inline]` branches on `None`, so an untraced run is bit-identical
//!   to a build with telemetry never attached (mirroring the fault
//!   plane's `FaultHooks` pattern).
//! * [`window`] — a [`WindowedRecorder`]: fixed-width tumbling windows
//!   over sim time yielding per-class rate series, cluster-count and
//!   head-change series, link-churn series, and warmup detection (first
//!   window within tolerance of the steady-state rate).
//! * [`hist`] — fixed-capacity, zero-alloc, log2-bucketed streaming
//!   [`Histogram`]s (record / merge / p50–p999 quantiles) whose memory
//!   footprint is a compile-time constant — the storage behind the
//!   profiler and safe for unbounded-length server runs.
//! * [`profiler`] — a tick-phase wall-clock [`PhaseProfiler`] (mobility /
//!   topology / shard flush + merge / HELLO / cluster / routing) backed
//!   by streaming histograms, with per-phase min / mean / p99 / max
//!   summaries.
//! * [`sink`] — JSONL persistence ([`JsonlSink`], [`read_trace`]) and the
//!   [`TraceOut`] fan-out used by traced harness runs.
//! * [`cause`] — the root-cause taxonomy ([`RootCause`], [`CauseId`]) and
//!   the [`CauseTracker`] that threads "why" through the layers: every
//!   event optionally carries the [`Cause`] that triggered it, so a trace
//!   can be folded into the paper's per-event overhead decomposition.
//! * [`attribution`] — the streaming [`AttributionLedger`]: messages and
//!   bytes per `RootCause` × `MsgClass`, measured per-event unit costs,
//!   and a causal-chain index queryable by [`CauseId`].
//! * [`audit`] — windowed runtime invariant monitors ([`AuditMonitor`]):
//!   head separation and live-head persistence with grace windows, repair
//!   drain, and exact trace ↔ counter reconciliation, reported as
//!   structured [`AuditViolation`]s instead of panics.
//! * [`export`] — a Prometheus text-exposition snapshot exporter
//!   ([`prometheus_text`]) over recorder totals and the ledger.
//! * [`serve`] — the live exporter: a zero-dependency HTTP
//!   [`MetricsServer`] on `std::net::TcpListener` serving `/metrics`,
//!   `/health`, and `/flight` from [`TelemetrySnapshot`]s the tick loop
//!   publishes once per tumbling window via an `Arc` swap — scrapers can
//!   never block the hot path.
//! * [`flight`] — the [`FlightRecorder`]: a bounded ring over the live
//!   event stream, dumped as replayable JSONL (same codec as [`sink`])
//!   when an audit violation fires — chaos post-mortems without paying
//!   for full tracing.
//! * [`span`] — the span plane: hierarchical wall-clock spans
//!   (tick → stage → shard → interconnect hop) recorded through the
//!   probe's phase hooks, aggregated per `(label, shard)` into streaming
//!   histograms by a [`SpanRecorder`] with an optional bounded raw ring,
//!   and exported as Chrome trace-event JSON ([`chrome_trace_json`]) for
//!   Perfetto / `chrome://tracing`.
//!
//! The crate depends only on `manet-util` (for the in-house JSON layer),
//! keeping the workspace hermetic, and sits *below* the simulator in the
//! dependency graph: it defines its own [`MsgClass`] mirror of the sim's
//! `MessageKind`, and the sim provides the `From` conversion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod audit;
pub mod cause;
pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod profiler;
pub mod serve;
pub mod sink;
pub mod span;
pub mod window;

pub use attribution::{is_root_anchor, root_weight, AttributionLedger, ChainEntry};
pub use audit::{AuditConfig, AuditMonitor, AuditReport, AuditSample, AuditViolation};
pub use cause::{Cause, CauseId, CauseTracker, RootCause};
pub use event::{Event, EventKind, Layer, MsgClass, NodeId, NoopSubscriber, Probe, Subscriber};
pub use export::{
    escape_label_value, prometheus_text, prometheus_text_full, prometheus_text_with_shards,
    ShardGaugeRow, ShardSnapshot,
};
pub use flight::{FlightRecorder, FlightTrigger};
pub use hist::{Histogram, HIST_BUCKETS};
pub use profiler::{Phase, PhaseProfiler, PhaseSummary, ProfileReport};
pub use serve::{
    read_request, write_response, HttpRequest, MetricsServer, Publisher, TelemetrySnapshot,
    MAX_REQUEST_BODY,
};
pub use sink::{read_trace, JsonlSink, Trace, TraceMeta, TraceOut};
pub use span::{chrome_trace_json, RawSpan, SpanLabel, SpanRecorder, SpanStart, SpanTimebase};
pub use window::{WindowStats, WindowedRecorder};
