//! Root-cause taxonomy and the per-run cause tracker.
//!
//! The paper's closed forms predict control overhead *per root event*:
//! HELLO cost per link generation, CLUSTER cost per head-loss and
//! head–head contact, ROUTE cost per intra-cluster link change. To measure
//! those quantities directly, every traced [`Event`](crate::Event) may
//! carry a [`Cause`] — a monotonically allocated [`CauseId`] tagged with
//! the [`RootCause`] that ultimately triggered it. The id is allocated at
//! the *detection site* (link event, churn, head contact, channel loss)
//! and threaded through derived protocol reactions, so a trace can be
//! folded into "messages per root cause" by the
//! [`AttributionLedger`](crate::AttributionLedger).
//!
//! Attribution is opt-in: a probe without a [`CauseTracker`] emits every
//! event with `cause: None` and the instrumented paths stay bit-identical
//! to PR 2's telemetry plane.

use crate::event::NodeId;
use std::collections::BTreeMap;

/// The kinds of root events the paper's analysis decomposes overhead by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RootCause {
    /// A new link formed (drives event-driven HELLO beacons).
    LinkGen,
    /// A link broke (drives member–head break maintenance).
    LinkBreak,
    /// A member lost its head (resignation or break observed at the
    /// member) and must re-home or self-promote.
    HeadLoss,
    /// Two heads came within contact range; the loser resigns.
    HeadContact,
    /// An intra-cluster link change charged a ROUTE broadcast round.
    IntraClusterChange,
    /// A node crashed or recovered (fault-plane churn schedule).
    Churn,
    /// The lossy channel dropped a delivery (drives retries/re-syncs).
    ChannelLoss,
    /// The shard interconnect failed: a ghost/migration batch was lost, a
    /// shard stalled, or a ghost view aged past its staleness bound.
    InterconnectFault,
}

impl RootCause {
    /// All root causes, in display order.
    pub const ALL: [RootCause; 8] = [
        RootCause::LinkGen,
        RootCause::LinkBreak,
        RootCause::HeadLoss,
        RootCause::HeadContact,
        RootCause::IntraClusterChange,
        RootCause::Churn,
        RootCause::ChannelLoss,
        RootCause::InterconnectFault,
    ];

    /// Dense index into [`RootCause::ALL`].
    pub fn index(self) -> usize {
        match self {
            RootCause::LinkGen => 0,
            RootCause::LinkBreak => 1,
            RootCause::HeadLoss => 2,
            RootCause::HeadContact => 3,
            RootCause::IntraClusterChange => 4,
            RootCause::Churn => 5,
            RootCause::ChannelLoss => 6,
            RootCause::InterconnectFault => 7,
        }
    }

    /// Stable snake_case name (used in JSONL traces and the exporter).
    pub fn name(self) -> &'static str {
        match self {
            RootCause::LinkGen => "link_gen",
            RootCause::LinkBreak => "link_break",
            RootCause::HeadLoss => "head_loss",
            RootCause::HeadContact => "head_contact",
            RootCause::IntraClusterChange => "intra_cluster_change",
            RootCause::Churn => "churn",
            RootCause::ChannelLoss => "channel_loss",
            RootCause::InterconnectFault => "interconnect_fault",
        }
    }

    /// Inverse of [`RootCause::name`].
    pub fn from_name(name: &str) -> Option<RootCause> {
        RootCause::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Monotonic per-run identifier of one root event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CauseId(pub u64);

/// A root event reference carried by derived [`Event`](crate::Event)s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cause {
    /// The root event's per-run id.
    pub id: CauseId,
    /// What kind of root event it was.
    pub root: RootCause,
}

/// Allocates [`CauseId`]s and remembers short-lived causal state that must
/// cross layer boundaries within (or across) ticks:
///
/// - `node_causes`: the churn cause of a node that crashed/recovered this
///   tick, so the link events and orphanings it provokes chain to the
///   churn root instead of opening fresh `LinkBreak` roots;
/// - `resignations`: the head-contact cause of a resigned head, so members
///   orphaned by the resignation (possibly only re-homed on a later sweep)
///   charge their CLUSTER messages to the contact that caused them.
#[derive(Debug, Clone, Default)]
pub struct CauseTracker {
    next: u64,
    node_causes: BTreeMap<NodeId, (f64, Cause)>,
    resignations: BTreeMap<NodeId, Cause>,
}

impl CauseTracker {
    /// A fresh tracker (ids start at 0).
    pub fn new() -> Self {
        CauseTracker::default()
    }

    /// Allocates a new root cause id.
    pub fn allocate(&mut self, root: RootCause) -> Cause {
        let id = CauseId(self.next);
        self.next += 1;
        Cause { id, root }
    }

    /// Number of ids allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Records that `node` crashed/recovered at `time` under `cause`, so
    /// same-tick derived events can chain to it.
    pub fn note_churn(&mut self, node: NodeId, time: f64, cause: Cause) {
        self.node_causes.insert(node, (time, cause));
    }

    /// The churn cause of `node` if it churned exactly at `time`.
    pub fn churn_cause(&self, node: NodeId, time: f64) -> Option<Cause> {
        self.node_causes
            .get(&node)
            .filter(|(t, _)| *t == time)
            .map(|(_, c)| *c)
    }

    /// Records the head-contact cause behind `head`'s resignation; kept
    /// until [`CauseTracker::clear_resignation`] because orphaned members
    /// may only be re-homed on a later maintenance pass.
    pub fn note_resignation(&mut self, head: NodeId, cause: Cause) {
        self.resignations.insert(head, cause);
    }

    /// The pending resignation cause of `head`, if any.
    pub fn resignation_cause(&self, head: NodeId) -> Option<Cause> {
        self.resignations.get(&head).copied()
    }

    /// Drops the pending resignation cause of `head` (e.g. when it becomes
    /// a head again).
    pub fn clear_resignation(&mut self, head: NodeId) {
        self.resignations.remove(&head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_indices_are_dense() {
        for (i, root) in RootCause::ALL.into_iter().enumerate() {
            assert_eq!(root.index(), i);
            assert_eq!(RootCause::from_name(root.name()), Some(root));
        }
        assert_eq!(RootCause::from_name("nope"), None);
    }

    #[test]
    fn tracker_allocates_monotonically() {
        let mut t = CauseTracker::new();
        let a = t.allocate(RootCause::LinkGen);
        let b = t.allocate(RootCause::Churn);
        assert_eq!(a.id, CauseId(0));
        assert_eq!(b.id, CauseId(1));
        assert_eq!(t.allocated(), 2);
        assert_eq!(a.root, RootCause::LinkGen);
    }

    #[test]
    fn churn_causes_match_only_at_the_same_time() {
        let mut t = CauseTracker::new();
        let c = t.allocate(RootCause::Churn);
        t.note_churn(4, 1.25, c);
        assert_eq!(t.churn_cause(4, 1.25), Some(c));
        assert_eq!(t.churn_cause(4, 1.5), None);
        assert_eq!(t.churn_cause(5, 1.25), None);
    }

    #[test]
    fn resignation_causes_persist_until_cleared() {
        let mut t = CauseTracker::new();
        let c = t.allocate(RootCause::HeadContact);
        t.note_resignation(9, c);
        assert_eq!(t.resignation_cause(9), Some(c));
        t.clear_resignation(9);
        assert_eq!(t.resignation_cause(9), None);
    }
}
