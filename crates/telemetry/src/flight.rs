//! The flight recorder: a bounded ring buffer over the live event stream,
//! dumped as replayable JSONL when something goes wrong.
//!
//! Full `--trace-out` tracing of a chaos run is expensive — every event
//! of every tick hits the JSONL sink. The [`FlightRecorder`] is the cheap
//! alternative: it retains only the most recent `K` [`Event`]s (with
//! their causal-chain tags) in a preallocated ring, costing one copy per
//! event and zero allocations in the steady state. When an
//! [`AuditMonitor`](crate::AuditMonitor) violation or a `SimError` fires,
//! the run loop dumps the ring via [`FlightRecorder::dump_to`] — a black
//! box of the last moments before the failure, in the exact trace-file
//! format [`read_trace`](crate::read_trace) and `trace_report` already
//! understand, so a dump replays like any other trace.
//!
//! Dumps are deterministic: the ring's contents are a pure function of
//! the (seeded) event stream, so the same seed produces a byte-identical
//! dump file — pinned by the chaos-determinism integration test.

use crate::event::{Event, Subscriber};
use crate::sink::{event_to_value, TraceMeta};
use std::io::{self, Write};
use std::path::Path;

/// A fixed-capacity ring buffer retaining the last `K` traced events.
///
/// Implements [`Subscriber`], so it can sit anywhere a trace sink does —
/// traced runs tee every event into it alongside the windowed recorder.
/// Recording is O(1) and allocation-free after construction ([`Event`] is
/// `Copy`).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    /// The ring storage; grows to `cap` once, then entries are overwritten
    /// in place.
    buf: Vec<Event>,
    /// Ring capacity (`K`).
    cap: usize,
    /// Index the next event will be written at (the ring head).
    next: usize,
    /// Total events observed (≥ `len`, counts the overwritten ones too).
    seen: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (clamped to ≥ 1).
    /// Storage is preallocated here, so recording never allocates.
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            seen: 0,
        }
    }

    /// The ring capacity `K`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently retained (`min(seen, K)`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events observed over the recorder's lifetime, including
    /// those already overwritten.
    pub fn events_seen(&self) -> u64 {
        self.seen
    }

    /// Records one event, overwriting the oldest once the ring is full.
    #[inline]
    pub fn record(&mut self, event: &Event) {
        if self.buf.len() < self.cap {
            self.buf.push(*event);
        } else {
            self.buf[self.next] = *event;
        }
        self.next = (self.next + 1) % self.cap;
        self.seen += 1;
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let split = if self.buf.len() < self.cap {
            0 // not yet wrapped: the buffer is already oldest-first
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Renders the ring as a JSONL trace: one meta line whose label is
    /// `"{label}#flight:{reason}"`, then the retained events oldest
    /// first. The output parses with [`read_trace`](crate::read_trace)
    /// and replays like any full trace.
    pub fn dump_string(&self, meta: &TraceMeta, reason: &str) -> String {
        let mut flight_meta = meta.clone();
        flight_meta.label = format!("{}#flight:{reason}", meta.label);
        let mut out = String::new();
        out.push_str(&flight_meta.to_value().to_string());
        out.push('\n');
        for event in self.iter() {
            out.push_str(&event_to_value(event).to_string());
            out.push('\n');
        }
        out
    }

    /// Writes [`FlightRecorder::dump_string`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn dump_to<P: AsRef<Path>>(
        &self,
        path: P,
        meta: &TraceMeta,
        reason: &str,
    ) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.dump_string(meta, reason).as_bytes())?;
        f.flush()
    }
}

impl Subscriber for FlightRecorder {
    #[inline]
    fn event(&mut self, event: &Event) {
        self.record(event);
    }
}

/// Edge detector for the flight-dump trigger: fires exactly once, the
/// first time the observed audit-violation count rises. The run loop
/// polls it each tick with the monitor's live count; keeping the
/// trigger's state machine here (instead of inline in the loop) makes
/// the fire-once contract unit-testable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightTrigger {
    fired: bool,
}

impl FlightTrigger {
    /// An armed trigger.
    pub fn new() -> FlightTrigger {
        FlightTrigger::default()
    }

    /// Whether the trigger already fired (at most one dump per run).
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Reports the current violation count; returns `true` exactly once,
    /// on the first call that sees a nonzero count.
    pub fn check(&mut self, violations: u64) -> bool {
        if self.fired || violations == 0 {
            return false;
        }
        self.fired = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Layer};
    use crate::sink::read_trace;

    fn gauge(time: f64, heads: u64) -> Event {
        Event {
            time,
            layer: Layer::Sim,
            kind: EventKind::ClusterGauge { heads },
            cause: None,
        }
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_the_newest() {
        let mut fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for i in 0..7u64 {
            fr.record(&gauge(i as f64, i));
        }
        assert_eq!(fr.capacity(), 3);
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.events_seen(), 7);
        let kept: Vec<u64> = fr
            .iter()
            .map(|e| match e.kind {
                EventKind::ClusterGauge { heads } => heads,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![4, 5, 6], "oldest-first, newest retained");
    }

    #[test]
    fn partial_ring_dumps_in_arrival_order() {
        let mut fr = FlightRecorder::new(10);
        for i in 0..4u64 {
            fr.record(&gauge(i as f64, i));
        }
        let times: Vec<f64> = fr.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn recording_does_not_allocate_after_construction() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..100u64 {
            fr.record(&gauge(i as f64, i));
        }
        // The ring vector never exceeds its preallocated capacity.
        assert_eq!(fr.buf.capacity(), 8);
        assert_eq!(fr.len(), 8);
    }

    #[test]
    fn dump_round_trips_through_read_trace() {
        let mut fr = FlightRecorder::new(4);
        let events = [
            gauge(1.0, 5),
            Event {
                time: 1.5,
                layer: Layer::Sim,
                kind: EventKind::LinkUp { a: 2, b: 9 },
                cause: None,
            },
            gauge(2.0, 6),
        ];
        for e in &events {
            fr.record(e);
        }
        let meta = TraceMeta {
            label: "unit".into(),
            nodes: 10,
            window: 5.0,
            dt: 0.25,
            duration: 30.0,
            seed: 7,
        };
        let dir = std::env::temp_dir().join("manet_flight_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/flight.jsonl");
        fr.dump_to(&path, &meta, "unit-test").unwrap();
        let trace = read_trace(&path).unwrap();
        let m = trace.meta.clone().expect("dump carries a meta line");
        assert_eq!(m.label, "unit#flight:unit-test");
        assert_eq!(m.seed, 7);
        assert_eq!(trace.events, events.to_vec());
        // Replayable like any trace.
        let rec = trace.replay(5.0);
        assert_eq!(rec.events_seen(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trigger_fires_exactly_once_on_first_violation() {
        let mut t = FlightTrigger::new();
        assert!(!t.check(0));
        assert!(!t.check(0));
        assert!(!t.fired());
        assert!(t.check(2), "first nonzero count fires");
        assert!(t.fired());
        assert!(!t.check(3), "later increases stay quiet");
        assert!(!t.check(0));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        fr.record(&gauge(0.0, 1));
        fr.record(&gauge(1.0, 2));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.iter().next().unwrap().time, 1.0);
    }
}
