//! The root-cause overhead ledger: folds a caused event stream into
//! "messages per root event" — the quantity the paper's closed forms
//! actually predict.
//!
//! Every root cause has a well-defined *anchor* event kind (the root event
//! itself, e.g. `LinkUp` for [`RootCause::LinkGen`]); derived events carry
//! the anchor's [`CauseId`]. The ledger aggregates attributed messages per
//! `RootCause` × [`MsgClass`], counts anchors (weighted, so one
//! `RouteRoundStarted` charging `rounds` rounds counts as `rounds` link
//! changes), and keeps a causal-chain index from each [`CauseId`] to its
//! chain's summary — making "CLUSTER msgs per head contact" a single
//! division ([`AttributionLedger::unit_cost`]).
//!
//! Message charging mirrors the engine contracts established in PR 2:
//! every committed role change (`HeadResigned` / `MemberReaffiliated` /
//! `HeadElected`) is exactly one CLUSTER message, and one
//! `RouteRoundStarted { size, rounds }` is `rounds · size` ROUTE messages.
//! Caused `MsgSent` events (per-link event-driven HELLO) charge their
//! count directly. Uncaused `MsgSent` events land in a separate bucket:
//! in a standard traced run the per-tick CLUSTER/ROUTE rollups are
//! *duplicates* of the per-event charges above (a useful cross-check, see
//! `attribution_report`), while uncaused HELLO counts are periodic
//! beacons with no single root event.

use crate::cause::{CauseId, RootCause};
use crate::event::{Event, EventKind, MsgClass, Subscriber};
use std::collections::BTreeMap;

/// Whether `kind` is the anchor (the recorded root event itself) of a
/// chain with root cause `root`. Shared by the ledger and the
/// completeness tests: every allocated `CauseId` must eventually appear on
/// exactly one anchor event.
pub fn is_root_anchor(kind: &EventKind, root: RootCause) -> bool {
    match root {
        RootCause::LinkGen => matches!(kind, EventKind::LinkUp { .. }),
        RootCause::LinkBreak => matches!(kind, EventKind::LinkDown { .. }),
        RootCause::HeadLoss => matches!(kind, EventKind::HeadLost { .. }),
        RootCause::HeadContact => matches!(kind, EventKind::HeadResigned { .. }),
        RootCause::IntraClusterChange => matches!(kind, EventKind::RouteRoundStarted { .. }),
        RootCause::Churn => matches!(
            kind,
            EventKind::NodeCrashed { .. } | EventKind::NodeRecovered { .. }
        ),
        RootCause::ChannelLoss => matches!(
            kind,
            EventKind::MsgLost { .. } | EventKind::RetxScheduled { .. }
        ),
        // Every interconnect event is a detection site: each allocates its
        // own root at the moment the fault (or recovery) is observed, so
        // none can leave an unanchored chain behind.
        RootCause::InterconnectFault => matches!(
            kind,
            EventKind::InterconnectLost { .. }
                | EventKind::InterconnectStalled { .. }
                | EventKind::GhostStale { .. }
                | EventKind::InterconnectRecovered { .. }
        ),
    }
}

/// The number of root events one anchor stands for: a
/// `RouteRoundStarted` charging `rounds` rounds represents `rounds`
/// intra-cluster link changes, a batched `MsgLost` represents `count`
/// channel losses, and every other anchor is one event.
pub fn root_weight(kind: &EventKind) -> u64 {
    match *kind {
        EventKind::RouteRoundStarted { rounds, .. } => rounds,
        EventKind::MsgLost { count, .. } => count,
        _ => 1,
    }
}

/// Number of distinct root-cause kinds ([`RootCause::ALL`]'s length),
/// the row dimension of the ledger's per-root tables.
const ROOTS: usize = RootCause::ALL.len();

/// Summary of one causal chain (all events sharing a [`CauseId`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainEntry {
    /// The chain's root cause.
    pub root: RootCause,
    /// Total anchor weight seen (0 until the anchor event arrives).
    pub weight: u64,
    /// Time of the first event carrying this id.
    pub first_time: f64,
    /// Number of events carrying this id (anchor included).
    pub derived: u64,
    /// Control messages charged to this chain.
    pub msgs: u64,
}

/// Per-class message sizes (bytes), indexed by [`MsgClass::index`].
///
/// Defaults mirror `manet_sim::MessageSizes`: 16 B HELLO, 24 B CLUSTER,
/// 12 B per ROUTE/RREQ/RREP/TABLE entry, 24 B RETX/REPAIR.
pub const DEFAULT_CLASS_SIZES: [u64; 8] = [16, 24, 12, 12, 12, 12, 24, 24];

/// Streaming aggregation of attributed overhead: messages and bytes per
/// [`RootCause`] × [`MsgClass`], anchor counts, and a causal-chain index.
#[derive(Debug, Clone)]
pub struct AttributionLedger {
    msgs: [[u64; 8]; ROOTS],
    lost: [[u64; 8]; ROOTS],
    uncaused: [u64; 8],
    anchors: [u64; ROOTS],
    weights: [u64; ROOTS],
    derived: [u64; ROOTS],
    sizes: [u64; 8],
    chains: BTreeMap<CauseId, ChainEntry>,
    events_seen: u64,
}

impl Default for AttributionLedger {
    fn default() -> Self {
        AttributionLedger::new()
    }
}

impl AttributionLedger {
    /// An empty ledger with [`DEFAULT_CLASS_SIZES`].
    pub fn new() -> Self {
        AttributionLedger::with_sizes(DEFAULT_CLASS_SIZES)
    }

    /// An empty ledger with a custom per-class size table.
    pub fn with_sizes(sizes: [u64; 8]) -> Self {
        AttributionLedger {
            msgs: [[0; 8]; ROOTS],
            lost: [[0; 8]; ROOTS],
            uncaused: [0; 8],
            anchors: [0; ROOTS],
            weights: [0; ROOTS],
            derived: [0; ROOTS],
            sizes,
            chains: BTreeMap::new(),
            events_seen: 0,
        }
    }

    /// Builds a ledger by replaying recorded events (e.g. a read trace).
    pub fn replay<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut ledger = AttributionLedger::new();
        for e in events {
            ledger.absorb(e);
        }
        ledger
    }

    /// Folds one event into the ledger (also the [`Subscriber`] body).
    pub fn absorb(&mut self, event: &Event) {
        self.events_seen += 1;
        let Some(cause) = event.cause else {
            if let EventKind::MsgSent { class, count } = event.kind {
                self.uncaused[class.index()] += count;
            }
            return;
        };
        let r = cause.root.index();
        self.derived[r] += 1;
        let entry = self.chains.entry(cause.id).or_insert(ChainEntry {
            root: cause.root,
            weight: 0,
            first_time: event.time,
            derived: 0,
            msgs: 0,
        });
        entry.derived += 1;
        if is_root_anchor(&event.kind, cause.root) {
            let w = root_weight(&event.kind);
            entry.weight += w;
            self.weights[r] += w;
            self.anchors[r] += 1;
        }
        let charged = match event.kind {
            EventKind::MsgSent { class, count } => Some((class, count)),
            EventKind::HeadResigned { .. }
            | EventKind::MemberReaffiliated { .. }
            | EventKind::HeadElected { .. } => Some((MsgClass::Cluster, 1)),
            EventKind::RouteRoundStarted { size, rounds, .. } => {
                Some((MsgClass::Route, rounds * size))
            }
            _ => None,
        };
        if let Some((class, count)) = charged {
            self.msgs[r][class.index()] += count;
            entry.msgs += count;
        }
        if let EventKind::MsgLost { class, count } = event.kind {
            self.lost[r][class.index()] += count;
        }
    }

    /// Total events absorbed (caused or not).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Attributed messages of `class` charged to `root`.
    pub fn msgs(&self, root: RootCause, class: MsgClass) -> u64 {
        self.msgs[root.index()][class.index()]
    }

    /// Attributed bytes of `class` charged to `root` (via the size table).
    pub fn bytes(&self, root: RootCause, class: MsgClass) -> u64 {
        self.msgs(root, class) * self.sizes[class.index()]
    }

    /// Lost deliveries of `class` charged to `root`.
    pub fn lost(&self, root: RootCause, class: MsgClass) -> u64 {
        self.lost[root.index()][class.index()]
    }

    /// Attributed messages of `class` summed over all roots.
    pub fn attributed_total(&self, class: MsgClass) -> u64 {
        RootCause::ALL.iter().map(|&r| self.msgs(r, class)).sum()
    }

    /// Messages of `class` seen on *uncaused* `MsgSent` events (periodic
    /// beacons, per-tick rollups — see the module docs).
    pub fn uncaused_msgs(&self, class: MsgClass) -> u64 {
        self.uncaused[class.index()]
    }

    /// Number of anchor events recorded for `root`.
    pub fn root_events(&self, root: RootCause) -> u64 {
        self.anchors[root.index()]
    }

    /// Total anchor weight for `root` (= root-event count, with batched
    /// anchors expanded per [`root_weight`]).
    pub fn root_weight_total(&self, root: RootCause) -> u64 {
        self.weights[root.index()]
    }

    /// Events (anchors included) carrying a cause with root `root`.
    pub fn derived_events(&self, root: RootCause) -> u64 {
        self.derived[root.index()]
    }

    /// Measured per-event unit cost: attributed `class` messages per root
    /// event of `root`. `None` when no anchor has been recorded.
    pub fn unit_cost(&self, root: RootCause, class: MsgClass) -> Option<f64> {
        let w = self.root_weight_total(root);
        if w == 0 {
            None
        } else {
            Some(self.msgs(root, class) as f64 / w as f64)
        }
    }

    /// The causal-chain index: every [`CauseId`] seen, with its summary.
    pub fn chains(&self) -> &BTreeMap<CauseId, ChainEntry> {
        &self.chains
    }

    /// One chain's summary.
    pub fn chain(&self, id: CauseId) -> Option<&ChainEntry> {
        self.chains.get(&id)
    }

    /// Chains that never received their anchor event — must be empty for a
    /// complete trace (checked by the attribution completeness tests).
    pub fn unanchored_chains(&self) -> Vec<CauseId> {
        self.chains
            .iter()
            .filter(|(_, e)| e.weight == 0)
            .map(|(&id, _)| id)
            .collect()
    }
}

impl Subscriber for AttributionLedger {
    fn event(&mut self, event: &Event) {
        self.absorb(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause::{Cause, CauseTracker};
    use crate::event::Layer;

    fn caused(time: f64, layer: Layer, kind: EventKind, cause: Cause) -> Event {
        Event {
            time,
            layer,
            kind,
            cause: Some(cause),
        }
    }

    #[test]
    fn anchors_cover_every_root_exactly_once() {
        // Each root has at least one anchor kind, and no anchor kind
        // anchors two different roots.
        let kinds = [
            EventKind::LinkUp { a: 0, b: 1 },
            EventKind::LinkDown { a: 0, b: 1 },
            EventKind::HeadLost { member: 0, head: 1 },
            EventKind::HeadResigned {
                node: 0,
                new_head: 1,
            },
            EventKind::RouteRoundStarted {
                head: 0,
                size: 3,
                rounds: 1,
            },
            EventKind::NodeCrashed { node: 0 },
            EventKind::MsgLost {
                class: MsgClass::Hello,
                count: 1,
            },
            EventKind::InterconnectLost {
                src: 0,
                dst: 1,
                count: 1,
            },
        ];
        for root in RootCause::ALL {
            assert_eq!(
                kinds.iter().filter(|k| is_root_anchor(k, root)).count(),
                1,
                "{root:?}"
            );
        }
        for kind in &kinds {
            assert_eq!(
                RootCause::ALL
                    .into_iter()
                    .filter(|&r| is_root_anchor(kind, r))
                    .count(),
                1,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn head_contact_chain_yields_cluster_unit_cost() {
        let mut t = CauseTracker::new();
        let contact = t.allocate(RootCause::HeadContact);
        let mut ledger = AttributionLedger::new();
        // Anchor: the resignation (1 CLUSTER msg). Derived: two members of
        // the losing head re-home (1 CLUSTER msg each).
        ledger.absorb(&caused(
            1.0,
            Layer::Cluster,
            EventKind::HeadResigned {
                node: 5,
                new_head: 2,
            },
            contact,
        ));
        for member in [6, 7] {
            ledger.absorb(&caused(
                1.0,
                Layer::Cluster,
                EventKind::HeadLost { member, head: 5 },
                contact,
            ));
            ledger.absorb(&caused(
                1.0,
                Layer::Cluster,
                EventKind::MemberReaffiliated { member, head: 2 },
                contact,
            ));
        }
        assert_eq!(ledger.msgs(RootCause::HeadContact, MsgClass::Cluster), 3);
        assert_eq!(ledger.root_events(RootCause::HeadContact), 1);
        assert_eq!(
            ledger.unit_cost(RootCause::HeadContact, MsgClass::Cluster),
            Some(3.0)
        );
        assert_eq!(
            ledger.bytes(RootCause::HeadContact, MsgClass::Cluster),
            3 * 24
        );
        let entry = ledger.chain(contact.id).unwrap();
        assert_eq!(entry.derived, 5);
        assert_eq!(entry.msgs, 3);
        assert_eq!(entry.weight, 1);
        assert!(ledger.unanchored_chains().is_empty());
    }

    #[test]
    fn route_rounds_charge_rounds_times_size_per_weighted_anchor() {
        let mut t = CauseTracker::new();
        let mut ledger = AttributionLedger::new();
        let change = t.allocate(RootCause::IntraClusterChange);
        ledger.absorb(&caused(
            2.0,
            Layer::Routing,
            EventKind::RouteRoundStarted {
                head: 3,
                size: 7,
                rounds: 2,
            },
            change,
        ));
        assert_eq!(
            ledger.msgs(RootCause::IntraClusterChange, MsgClass::Route),
            14
        );
        assert_eq!(ledger.root_weight_total(RootCause::IntraClusterChange), 2);
        assert_eq!(
            ledger.unit_cost(RootCause::IntraClusterChange, MsgClass::Route),
            Some(7.0)
        );
    }

    #[test]
    fn uncaused_and_unanchored_bookkeeping() {
        let mut t = CauseTracker::new();
        let mut ledger = AttributionLedger::new();
        ledger.absorb(&Event {
            time: 0.5,
            layer: Layer::Sim,
            kind: EventKind::MsgSent {
                class: MsgClass::Hello,
                count: 9,
            },
            cause: None,
        });
        assert_eq!(ledger.uncaused_msgs(MsgClass::Hello), 9);
        assert_eq!(ledger.attributed_total(MsgClass::Hello), 0);
        // A derived event whose anchor never arrives is flagged.
        let orphaned = t.allocate(RootCause::HeadLoss);
        ledger.absorb(&caused(
            1.0,
            Layer::Cluster,
            EventKind::MemberReaffiliated { member: 1, head: 2 },
            orphaned,
        ));
        assert_eq!(ledger.unanchored_chains(), vec![orphaned.id]);
        assert_eq!(
            ledger.unit_cost(RootCause::HeadLoss, MsgClass::Cluster),
            None
        );
        assert_eq!(ledger.events_seen(), 2);
        // Losses charge the lost table, not msgs.
        let loss = t.allocate(RootCause::ChannelLoss);
        ledger.absorb(&caused(
            1.5,
            Layer::Hello,
            EventKind::MsgLost {
                class: MsgClass::Hello,
                count: 4,
            },
            loss,
        ));
        assert_eq!(ledger.lost(RootCause::ChannelLoss, MsgClass::Hello), 4);
        assert_eq!(ledger.root_weight_total(RootCause::ChannelLoss), 4);
        assert_eq!(ledger.msgs(RootCause::ChannelLoss, MsgClass::Hello), 0);
    }

    #[test]
    fn per_link_hello_sends_yield_the_paper_unit_cost() {
        let mut t = CauseTracker::new();
        let mut ledger = AttributionLedger::new();
        for i in 0..5u32 {
            let gen = t.allocate(RootCause::LinkGen);
            ledger.absorb(&caused(
                1.0,
                Layer::Sim,
                EventKind::LinkUp { a: i, b: i + 1 },
                gen,
            ));
            ledger.absorb(&caused(
                1.0,
                Layer::Sim,
                EventKind::MsgSent {
                    class: MsgClass::Hello,
                    count: 2,
                },
                gen,
            ));
        }
        // Event-driven HELLO: two beacons per link generation.
        assert_eq!(
            ledger.unit_cost(RootCause::LinkGen, MsgClass::Hello),
            Some(2.0)
        );
        assert_eq!(ledger.chains().len(), 5);
    }
}
