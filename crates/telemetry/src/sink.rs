//! JSONL trace persistence: serializing events, run metadata, and profiles
//! to line-delimited JSON, and reading whole traces back.
//!
//! A trace file is one JSON object per line, discriminated by `"type"`:
//!
//! ```text
//! {"type":"meta","label":"fig2_vs_velocity","nodes":400,...}
//! {"type":"event","t":0.25,"layer":"sim","kind":"link_up","a":3,"b":17}
//! {"type":"event","t":0.25,"layer":"sim","kind":"msg_sent","class":"HELLO","count":4}
//! ...
//! {"type":"profile","phases":[{"phase":"mobility","count":1600,...},...]}
//! ```
//!
//! The encoder lives here; the JSON layer itself is `manet_util::json`.

use crate::cause::{Cause, CauseId, RootCause};
use crate::event::{Event, EventKind, Layer, MsgClass, Subscriber};
use crate::profiler::{Phase, PhaseSummary, ProfileReport};
use crate::window::WindowedRecorder;
use manet_util::json::Value;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Run-level metadata written as the first line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Human label for the run (usually the experiment binary name).
    pub label: String,
    /// Node count.
    pub nodes: u64,
    /// Recorder window width, sim seconds.
    pub window: f64,
    /// Simulation tick, seconds.
    pub dt: f64,
    /// Traced duration, sim seconds.
    pub duration: f64,
    /// RNG seed of the traced run.
    pub seed: u64,
}

impl TraceMeta {
    /// Encodes as the `{"type":"meta",...}` line payload.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("type".into(), Value::from("meta")),
            ("label".into(), Value::from(self.label.as_str())),
            ("nodes".into(), Value::from(self.nodes)),
            ("window".into(), Value::from(self.window)),
            ("dt".into(), Value::from(self.dt)),
            ("duration".into(), Value::from(self.duration)),
            ("seed".into(), Value::from(self.seed)),
        ])
    }

    /// Decodes a meta line payload.
    pub fn from_value(v: &Value) -> Option<TraceMeta> {
        Some(TraceMeta {
            label: v.get("label")?.as_str()?.to_string(),
            nodes: v.get("nodes")?.as_u64()?,
            window: v.get("window")?.as_f64()?,
            dt: v.get("dt")?.as_f64()?,
            duration: v.get("duration")?.as_f64()?,
            seed: v.get("seed")?.as_u64()?,
        })
    }
}

/// Encodes one event as its `{"type":"event",...}` line payload.
pub fn event_to_value(event: &Event) -> Value {
    let mut pairs = vec![
        ("type".into(), Value::from("event")),
        ("t".into(), Value::from(event.time)),
        ("layer".into(), Value::from(event.layer.name())),
        ("kind".into(), Value::from(event.kind.name())),
    ];
    let node = |pairs: &mut Vec<(String, Value)>, key: &str, id: u32| {
        pairs.push((key.to_string(), Value::from(u64::from(id))));
    };
    match event.kind {
        EventKind::LinkUp { a, b } | EventKind::LinkDown { a, b } => {
            node(&mut pairs, "a", a);
            node(&mut pairs, "b", b);
        }
        EventKind::NodeCrashed { node: n }
        | EventKind::NodeRecovered { node: n }
        | EventKind::HeadElected { node: n } => node(&mut pairs, "node", n),
        EventKind::MsgSent { class, count } | EventKind::MsgLost { class, count } => {
            pairs.push(("class".into(), Value::from(class.name())));
            pairs.push(("count".into(), Value::from(count)));
        }
        EventKind::HeadResigned { node: n, new_head } => {
            node(&mut pairs, "node", n);
            node(&mut pairs, "new_head", new_head);
        }
        EventKind::MemberReaffiliated { member, head } | EventKind::HeadLost { member, head } => {
            node(&mut pairs, "member", member);
            node(&mut pairs, "head", head);
        }
        EventKind::RouteRoundStarted { head, size, rounds } => {
            node(&mut pairs, "head", head);
            pairs.push(("size".into(), Value::from(size)));
            pairs.push(("rounds".into(), Value::from(rounds)));
        }
        EventKind::RetxScheduled {
            node: n,
            wait_ticks,
        } => {
            node(&mut pairs, "node", n);
            pairs.push(("wait_ticks".into(), Value::from(wait_ticks)));
        }
        EventKind::ClusterGauge { heads } => {
            pairs.push(("heads".into(), Value::from(heads)));
        }
        EventKind::InterconnectLost { src, dst, count } => {
            pairs.push(("src".into(), Value::from(u64::from(src))));
            pairs.push(("dst".into(), Value::from(u64::from(dst))));
            pairs.push(("count".into(), Value::from(count)));
        }
        EventKind::InterconnectStalled { shard, ticks } => {
            pairs.push(("shard".into(), Value::from(u64::from(shard))));
            pairs.push(("ticks".into(), Value::from(ticks)));
        }
        EventKind::GhostStale {
            src,
            dst,
            staleness,
            dropped,
        } => {
            pairs.push(("src".into(), Value::from(u64::from(src))));
            pairs.push(("dst".into(), Value::from(u64::from(dst))));
            pairs.push(("staleness".into(), Value::from(staleness)));
            pairs.push(("dropped".into(), Value::from(dropped)));
        }
        EventKind::InterconnectRecovered { src, dst, resync } => {
            pairs.push(("src".into(), Value::from(u64::from(src))));
            pairs.push(("dst".into(), Value::from(u64::from(dst))));
            pairs.push(("resync".into(), Value::from(resync)));
        }
    }
    if let Some(cause) = event.cause {
        pairs.push(("cause".into(), Value::from(cause.id.0)));
        pairs.push(("root".into(), Value::from(cause.root.name())));
    }
    Value::Obj(pairs)
}

/// Decodes an event line payload (`None` on any shape mismatch).
pub fn event_from_value(v: &Value) -> Option<Event> {
    let time = v.get("t")?.as_f64()?;
    let layer = Layer::from_name(v.get("layer")?.as_str()?)?;
    let node_field = |key: &str| -> Option<u32> { u32::try_from(v.get(key)?.as_u64()?).ok() };
    let shard_field = |key: &str| -> Option<u16> { u16::try_from(v.get(key)?.as_u64()?).ok() };
    let class_field = || MsgClass::from_name(v.get("class")?.as_str()?);
    let kind = match v.get("kind")?.as_str()? {
        "link_up" => EventKind::LinkUp {
            a: node_field("a")?,
            b: node_field("b")?,
        },
        "link_down" => EventKind::LinkDown {
            a: node_field("a")?,
            b: node_field("b")?,
        },
        "node_crashed" => EventKind::NodeCrashed {
            node: node_field("node")?,
        },
        "node_recovered" => EventKind::NodeRecovered {
            node: node_field("node")?,
        },
        "msg_sent" => EventKind::MsgSent {
            class: class_field()?,
            count: v.get("count")?.as_u64()?,
        },
        "msg_lost" => EventKind::MsgLost {
            class: class_field()?,
            count: v.get("count")?.as_u64()?,
        },
        "head_elected" => EventKind::HeadElected {
            node: node_field("node")?,
        },
        "head_resigned" => EventKind::HeadResigned {
            node: node_field("node")?,
            new_head: node_field("new_head")?,
        },
        "member_reaffiliated" => EventKind::MemberReaffiliated {
            member: node_field("member")?,
            head: node_field("head")?,
        },
        "head_lost" => EventKind::HeadLost {
            member: node_field("member")?,
            head: node_field("head")?,
        },
        "route_round_started" => EventKind::RouteRoundStarted {
            head: node_field("head")?,
            size: v.get("size")?.as_u64()?,
            rounds: v.get("rounds")?.as_u64()?,
        },
        "retx_scheduled" => EventKind::RetxScheduled {
            node: node_field("node")?,
            wait_ticks: v.get("wait_ticks")?.as_u64()?,
        },
        "cluster_gauge" => EventKind::ClusterGauge {
            heads: v.get("heads")?.as_u64()?,
        },
        "interconnect_lost" => EventKind::InterconnectLost {
            src: shard_field("src")?,
            dst: shard_field("dst")?,
            count: v.get("count")?.as_u64()?,
        },
        "interconnect_stalled" => EventKind::InterconnectStalled {
            shard: shard_field("shard")?,
            ticks: v.get("ticks")?.as_u64()?,
        },
        "ghost_stale" => EventKind::GhostStale {
            src: shard_field("src")?,
            dst: shard_field("dst")?,
            staleness: v.get("staleness")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
        },
        "interconnect_recovered" => EventKind::InterconnectRecovered {
            src: shard_field("src")?,
            dst: shard_field("dst")?,
            resync: v.get("resync")?.as_u64()?,
        },
        _ => return None,
    };
    // Cause tagging is optional; both fields must be present together (so
    // pre-attribution traces, which carry neither, still parse).
    let cause = match (v.get("cause"), v.get("root")) {
        (Some(id), Some(root)) => Some(Cause {
            id: CauseId(id.as_u64()?),
            root: RootCause::from_name(root.as_str()?)?,
        }),
        (None, None) => None,
        _ => return None,
    };
    Some(Event {
        time,
        layer,
        kind,
        cause,
    })
}

/// Encodes a profile as its `{"type":"profile",...}` line payload.
pub fn profile_to_value(report: &ProfileReport) -> Value {
    let phases = report
        .phases
        .iter()
        .map(|(phase, s)| {
            Value::Obj(vec![
                ("phase".into(), Value::from(phase.name())),
                ("count".into(), Value::from(s.count)),
                ("total".into(), Value::from(s.total)),
                ("min".into(), Value::from(s.min)),
                ("mean".into(), Value::from(s.mean)),
                ("p99".into(), Value::from(s.p99)),
                ("max".into(), Value::from(s.max)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("type".into(), Value::from("profile")),
        ("phases".into(), Value::Arr(phases)),
    ])
}

/// Decodes a profile line payload.
pub fn profile_from_value(v: &Value) -> Option<ProfileReport> {
    let mut phases = Vec::new();
    for entry in v.get("phases")?.as_array()? {
        let phase = Phase::from_name(entry.get("phase")?.as_str()?)?;
        phases.push((
            phase,
            PhaseSummary {
                count: entry.get("count")?.as_u64()?,
                total: entry.get("total")?.as_f64()?,
                min: entry.get("min")?.as_f64()?,
                mean: entry.get("mean")?.as_f64()?,
                p99: entry.get("p99")?.as_f64()?,
                max: entry.get("max")?.as_f64()?,
            },
        ));
    }
    Some(ProfileReport { phases })
}

/// A [`Subscriber`] that appends one JSON line per event to a writer.
///
/// `Subscriber::event` cannot return an error, so the first I/O failure is
/// latched and reported by [`JsonlSink::finish`]; later writes are skipped.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (truncates) `path` as a buffered JSONL sink, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink<BufWriter<File>>> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            error: None,
        }
    }

    fn write_line(&mut self, v: &Value) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{v}") {
            self.error = Some(e);
        }
    }

    /// Writes the run-metadata line (call once, first).
    pub fn write_meta(&mut self, meta: &TraceMeta) {
        self.write_line(&meta.to_value());
    }

    /// Writes the end-of-run profile line.
    pub fn write_profile(&mut self, report: &ProfileReport) {
        self.write_line(&profile_to_value(report));
    }

    /// Flushes and returns the first latched I/O error, if any.
    ///
    /// # Errors
    ///
    /// Returns the first write failure, or the flush failure.
    pub fn finish(self) -> io::Result<()> {
        self.finish_into().map(|_| ())
    }

    /// Like [`JsonlSink::finish`], but hands the flushed writer back —
    /// the in-memory (`Vec<u8>`) sinks the jobs plane captures traces
    /// into need the buffer after the run.
    ///
    /// # Errors
    ///
    /// Returns the first write failure, or the flush failure.
    pub fn finish_into(mut self) -> io::Result<W> {
        match self.error.take() {
            Some(e) => Err(e),
            None => {
                self.writer.flush()?;
                Ok(self.writer)
            }
        }
    }
}

impl<W: Write> Subscriber for JsonlSink<W> {
    fn event(&mut self, event: &Event) {
        self.write_line(&event_to_value(event));
    }
}

/// Fan-out subscriber for traced runs: always feeds a [`WindowedRecorder`],
/// optionally tees every event to a [`JsonlSink`].
#[derive(Debug)]
pub struct TraceOut<W: Write> {
    /// The in-memory windowed aggregation.
    pub recorder: WindowedRecorder,
    /// The optional on-disk tee.
    pub sink: Option<JsonlSink<W>>,
}

impl<W: Write> TraceOut<W> {
    /// A fan-out with the given recorder window width and optional sink.
    pub fn new(window_width: f64, sink: Option<JsonlSink<W>>) -> TraceOut<W> {
        TraceOut {
            recorder: WindowedRecorder::new(window_width),
            sink,
        }
    }

    /// Writes meta through to the sink (recorder has no use for it).
    pub fn write_meta(&mut self, meta: &TraceMeta) {
        if let Some(sink) = &mut self.sink {
            sink.write_meta(meta);
        }
    }

    /// Writes the profile line and closes the sink.
    ///
    /// # Errors
    ///
    /// Returns the sink's first latched I/O error.
    pub fn finish(self, report: &ProfileReport) -> io::Result<()> {
        self.finish_into(report).map(|_| ())
    }

    /// Like [`TraceOut::finish`], but hands the sink's flushed writer
    /// back (`None` when no sink was attached).
    ///
    /// # Errors
    ///
    /// Returns the sink's first latched I/O error.
    pub fn finish_into(self, report: &ProfileReport) -> io::Result<Option<W>> {
        match self.sink {
            Some(mut sink) => {
                if !report.is_empty() {
                    sink.write_profile(report);
                }
                sink.finish_into().map(Some)
            }
            None => Ok(None),
        }
    }
}

impl<W: Write> Subscriber for TraceOut<W> {
    fn event(&mut self, event: &Event) {
        self.recorder.absorb(event);
        if let Some(sink) = &mut self.sink {
            sink.event(event);
        }
    }
}

/// A trace read back from disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The meta line, if present.
    pub meta: Option<TraceMeta>,
    /// All event lines, in file order.
    pub events: Vec<Event>,
    /// The profile line, if present.
    pub profile: Option<ProfileReport>,
}

impl Trace {
    /// Replays all events into a fresh recorder of the given window width.
    pub fn replay(&self, window_width: f64) -> WindowedRecorder {
        let mut rec = WindowedRecorder::new(window_width);
        for e in &self.events {
            rec.absorb(e);
        }
        rec
    }
}

/// Reads a JSONL trace file written by [`JsonlSink`].
///
/// # Errors
///
/// Returns `InvalidData` (with the 1-based line number) for unparsable
/// JSON, unknown line types, or malformed payloads; propagates I/O errors.
pub fn read_trace<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
    let reader = BufReader::new(File::open(path)?);
    let mut trace = Trace::default();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {lineno}: {what}"),
            )
        };
        let v = Value::parse(&line).map_err(|e| bad(&e.to_string()))?;
        match v.get("type").and_then(Value::as_str) {
            Some("meta") => {
                trace.meta =
                    Some(TraceMeta::from_value(&v).ok_or_else(|| bad("malformed meta line"))?);
            }
            Some("event") => {
                trace
                    .events
                    .push(event_from_value(&v).ok_or_else(|| bad("malformed event line"))?);
            }
            Some("profile") => {
                trace.profile =
                    Some(profile_from_value(&v).ok_or_else(|| bad("malformed profile line"))?);
            }
            _ => return Err(bad("unknown line type")),
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, layer: Layer, kind: EventKind) -> Event {
        Event {
            time,
            layer,
            kind,
            cause: None,
        }
    }

    fn caused(mut event: Event, id: u64, root: RootCause) -> Event {
        event.cause = Some(Cause {
            id: CauseId(id),
            root,
        });
        event
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(0.25, Layer::Sim, EventKind::LinkUp { a: 3, b: 17 }),
            ev(0.25, Layer::Sim, EventKind::LinkDown { a: 1, b: 2 }),
            ev(
                0.5,
                Layer::Sim,
                EventKind::MsgSent {
                    class: MsgClass::Hello,
                    count: 12,
                },
            ),
            ev(
                0.5,
                Layer::Hello,
                EventKind::MsgLost {
                    class: MsgClass::Hello,
                    count: 2,
                },
            ),
            ev(0.75, Layer::Sim, EventKind::NodeCrashed { node: 9 }),
            ev(1.0, Layer::Sim, EventKind::NodeRecovered { node: 9 }),
            ev(1.25, Layer::Cluster, EventKind::HeadElected { node: 4 }),
            caused(
                ev(
                    1.25,
                    Layer::Cluster,
                    EventKind::HeadResigned {
                        node: 6,
                        new_head: 4,
                    },
                ),
                3,
                RootCause::HeadContact,
            ),
            ev(
                1.25,
                Layer::Cluster,
                EventKind::MemberReaffiliated { member: 8, head: 4 },
            ),
            caused(
                ev(
                    1.25,
                    Layer::Cluster,
                    EventKind::HeadLost { member: 8, head: 6 },
                ),
                4,
                RootCause::HeadLoss,
            ),
            ev(
                1.5,
                Layer::Routing,
                EventKind::RouteRoundStarted {
                    head: 4,
                    size: 7,
                    rounds: 2,
                },
            ),
            ev(
                1.5,
                Layer::Cluster,
                EventKind::RetxScheduled {
                    node: 6,
                    wait_ticks: 8,
                },
            ),
            ev(2.0, Layer::Cluster, EventKind::ClusterGauge { heads: 40 }),
            caused(
                ev(
                    2.25,
                    Layer::Sim,
                    EventKind::InterconnectLost {
                        src: 0,
                        dst: 1,
                        count: 5,
                    },
                ),
                5,
                RootCause::InterconnectFault,
            ),
            ev(
                2.25,
                Layer::Sim,
                EventKind::InterconnectStalled { shard: 2, ticks: 3 },
            ),
            ev(
                2.5,
                Layer::Sim,
                EventKind::GhostStale {
                    src: 1,
                    dst: 0,
                    staleness: 5,
                    dropped: 4,
                },
            ),
            ev(
                2.75,
                Layer::Sim,
                EventKind::InterconnectRecovered {
                    src: 0,
                    dst: 1,
                    resync: 6,
                },
            ),
        ]
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        for event in sample_events() {
            let v = event_to_value(&event);
            let text = v.to_string();
            let parsed = Value::parse(&text).unwrap();
            assert_eq!(event_from_value(&parsed), Some(event), "{text}");
        }
    }

    #[test]
    fn cause_tags_must_come_in_pairs() {
        let v = Value::parse(
            "{\"type\":\"event\",\"t\":1,\"layer\":\"sim\",\"kind\":\"link_up\",\"a\":0,\"b\":1,\"cause\":5}",
        )
        .unwrap();
        assert_eq!(event_from_value(&v), None);
    }

    #[test]
    fn meta_and_profile_round_trip() {
        let meta = TraceMeta {
            label: "fig2".into(),
            nodes: 400,
            window: 5.0,
            dt: 0.25,
            duration: 125.0,
            seed: 11,
        };
        assert_eq!(TraceMeta::from_value(&meta.to_value()), Some(meta.clone()));

        let mut prof = crate::profiler::PhaseProfiler::new();
        prof.record(Phase::Mobility, 1e-5);
        prof.record(Phase::Routing, 2e-5);
        prof.record(Phase::Routing, 4e-5);
        let report = prof.report();
        let back = profile_from_value(&profile_to_value(&report)).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn file_round_trip_and_replay() {
        let dir = std::env::temp_dir().join("manet_telemetry_sink_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/trace.jsonl");

        let meta = TraceMeta {
            label: "unit".into(),
            nodes: 10,
            window: 1.0,
            dt: 0.25,
            duration: 3.0,
            seed: 7,
        };
        let mut prof = crate::profiler::PhaseProfiler::new();
        prof.record(Phase::Hello, 5e-6);
        let report = prof.report();

        let sink = JsonlSink::create(&path).unwrap();
        let mut out = TraceOut::new(1.0, Some(sink));
        out.write_meta(&meta);
        for e in sample_events() {
            out.event(&e);
        }
        let recorder_totals = out.recorder.total_msgs(MsgClass::Hello);
        out.finish(&report).unwrap();

        let trace = read_trace(&path).unwrap();
        assert_eq!(trace.meta, Some(meta));
        assert_eq!(trace.events, sample_events());
        assert_eq!(trace.profile, Some(report));

        let replayed = trace.replay(1.0);
        assert_eq!(replayed.total_msgs(MsgClass::Hello), recorder_totals);
        assert_eq!(replayed.windows()[1].head_elections, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_trace_rejects_garbage() {
        let dir = std::env::temp_dir().join("manet_telemetry_sink_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let bad_json = dir.join("bad.jsonl");
        std::fs::write(&bad_json, "{not json\n").unwrap();
        let e = read_trace(&bad_json).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("line 1"));

        let bad_kind = dir.join("kind.jsonl");
        std::fs::write(
            &bad_kind,
            "{\"type\":\"event\",\"t\":1,\"layer\":\"sim\",\"kind\":\"warp\"}\n",
        )
        .unwrap();
        assert!(read_trace(&bad_kind).is_err());

        let bad_type = dir.join("type.jsonl");
        std::fs::write(&bad_type, "{\"type\":\"mystery\"}\n").unwrap();
        assert!(read_trace(&bad_type).is_err());

        // Blank lines are tolerated.
        let blanks = dir.join("blanks.jsonl");
        std::fs::write(&blanks, "\n\n").unwrap();
        assert_eq!(read_trace(&blanks).unwrap(), Trace::default());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
