//! A flat DSDV-like proactive routing baseline.
//!
//! The paper's opening argument (and the Gupta–Kumar capacity bound it
//! cites) is that flat proactive routing does not scale: every node
//! maintains a route to every other node, so control traffic grows with
//! `N` even at constant density. This module implements that baseline so
//! the `flat_vs_clustered` experiment can reproduce the comparison:
//!
//! * **periodic full dumps** — every `full_dump_interval` seconds each node
//!   broadcasts its entire table (`N` entries);
//! * **triggered updates** — each link change prompts both endpoints to
//!   broadcast an incremental update (one entry per route whose next hop
//!   died; lower-bounded here as one entry per endpoint per event).

use manet_sim::{LinkEvent, NodeId, Topology};
use std::collections::VecDeque;

/// Traffic produced by one DSDV accounting step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DsdvOutcome {
    /// Full-table broadcast messages sent this step.
    pub full_dump_messages: u64,
    /// Table entries carried by those dumps.
    pub full_dump_entries: u64,
    /// Triggered incremental update messages sent this step.
    pub triggered_messages: u64,
}

impl DsdvOutcome {
    /// Total messages (dumps + triggered).
    pub fn total_messages(&self) -> u64 {
        self.full_dump_messages + self.triggered_messages
    }

    /// Accumulates another step into this one.
    pub fn absorb(&mut self, other: DsdvOutcome) {
        self.full_dump_messages += other.full_dump_messages;
        self.full_dump_entries += other.full_dump_entries;
        self.triggered_messages += other.triggered_messages;
    }
}

/// The flat proactive baseline's accounting state.
#[derive(Debug, Clone)]
pub struct Dsdv {
    full_dump_interval: f64,
    accum: f64,
}

impl Dsdv {
    /// Creates a baseline with the given full-dump period (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless the interval is strictly positive and finite.
    pub fn new(full_dump_interval: f64) -> Self {
        assert!(
            full_dump_interval > 0.0 && full_dump_interval.is_finite(),
            "full_dump_interval must be positive and finite"
        );
        Dsdv {
            full_dump_interval,
            accum: 0.0,
        }
    }

    /// Accounts `dt` seconds of protocol operation given the tick's link
    /// events.
    pub fn step(&mut self, dt: f64, topology: &Topology, events: &[LinkEvent]) -> DsdvOutcome {
        let n = topology.len() as u64;
        let mut out = DsdvOutcome::default();
        self.accum += dt;
        while self.accum >= self.full_dump_interval {
            self.accum -= self.full_dump_interval;
            out.full_dump_messages += n;
            out.full_dump_entries += n * n;
        }
        // Both endpoints of each change broadcast a triggered update.
        out.triggered_messages += 2 * events.len() as u64;
        out
    }

    /// Computes flat shortest-path next-hop tables by BFS from every node
    /// (the table DSDV converges to on a quiescent topology).
    pub fn converged_tables(topology: &Topology) -> Vec<Vec<Option<NodeId>>> {
        let n = topology.len();
        let mut tables = vec![vec![None; n]; n];
        for src in 0..n as NodeId {
            let mut parent: Vec<Option<NodeId>> = vec![None; n];
            let mut visited = vec![false; n];
            visited[src as usize] = true;
            let mut q = VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                for &w in topology.neighbors(u) {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        parent[w as usize] = Some(u);
                        q.push_back(w);
                    }
                }
            }
            for dst in 0..n as NodeId {
                if dst == src || !visited[dst as usize] {
                    continue;
                }
                let mut hop = dst;
                while let Some(p) = parent[hop as usize] {
                    if p == src {
                        break;
                    }
                    hop = p;
                }
                tables[src as usize][dst as usize] = Some(hop);
            }
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_geom::{Metric, SquareRegion, Vec2};
    use manet_sim::{LinkEventKind, Topology};

    fn path_topo(k: usize) -> Topology {
        let pts: Vec<Vec2> = (0..k).map(|i| Vec2::new(i as f64, 0.0)).collect();
        Topology::compute(&pts, SquareRegion::new(1000.0), 1.1, Metric::Euclidean)
    }

    #[test]
    fn periodic_dumps_fire_on_schedule() {
        let t = path_topo(10);
        let mut d = Dsdv::new(5.0);
        let mut total = DsdvOutcome::default();
        for _ in 0..50 {
            total.absorb(d.step(1.0, &t, &[]));
        }
        // 50 s / 5 s = 10 dump rounds of 10 messages × 100 entries.
        assert_eq!(total.full_dump_messages, 100);
        assert_eq!(total.full_dump_entries, 1000);
        assert_eq!(total.triggered_messages, 0);
        assert_eq!(total.total_messages(), 100);
    }

    #[test]
    fn triggered_updates_count_two_per_event() {
        let t = path_topo(4);
        let mut d = Dsdv::new(1e9);
        let events = [
            LinkEvent {
                kind: LinkEventKind::Broken,
                a: 0,
                b: 1,
            },
            LinkEvent {
                kind: LinkEventKind::Generated,
                a: 2,
                b: 3,
            },
        ];
        let o = d.step(0.1, &t, &events);
        assert_eq!(o.triggered_messages, 4);
        assert_eq!(o.full_dump_messages, 0);
    }

    #[test]
    fn dump_traffic_scales_quadratically_with_n_in_entries() {
        let mut d5 = Dsdv::new(1.0);
        let mut d10 = Dsdv::new(1.0);
        let o5 = d5.step(1.0, &path_topo(5), &[]);
        let o10 = d10.step(1.0, &path_topo(10), &[]);
        assert_eq!(o5.full_dump_entries, 25);
        assert_eq!(o10.full_dump_entries, 100);
    }

    #[test]
    fn converged_tables_give_shortest_paths_on_a_path() {
        let t = path_topo(5);
        let tables = Dsdv::converged_tables(&t);
        assert_eq!(tables[0][4], Some(1));
        assert_eq!(tables[1][4], Some(2));
        assert_eq!(tables[4][0], Some(3));
        assert_eq!(tables[2][2], None);
    }

    #[test]
    fn converged_tables_handle_partitions() {
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(100.0, 0.0),
        ];
        let t = Topology::compute(&pts, SquareRegion::new(1000.0), 1.5, Metric::Euclidean);
        let tables = Dsdv::converged_tables(&t);
        assert_eq!(tables[0][1], Some(1));
        assert_eq!(tables[0][2], None);
        assert_eq!(tables[2][0], None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        Dsdv::new(0.0);
    }
}
